#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "extract/object.h"

namespace somr::wikigen {

/// The generator-side content of one logical object. `header` holds table
/// column headers (empty for lists; property keys are in rows for
/// infoboxes). Rows follow the same convention as
/// extract::ObjectInstance: table rows / (key,value) pairs / single-item
/// rows.
struct LogicalContent {
  extract::ObjectType type = extract::ObjectType::kTable;
  std::string caption;                 // table caption / infobox name
  std::vector<std::string> header;     // table column headers
  std::vector<std::vector<std::string>> rows;

  /// Volatility profile: objects representing dynamic real-world facts
  /// (award lists, standings) grow and shrink; static reference objects
  /// only see cell corrections. Drives the paper's Sec. V-A shape where
  /// 62% of tables never change size.
  bool dynamic_size = false;

  /// Identity-bearing column (team name, release title) that edits never
  /// rewrite — real entities keep their names while their attributes
  /// churn. -1 when no single column carries identity.
  int key_column = -1;

  bool Empty() const { return rows.empty(); }
  bool operator==(const LogicalContent&) const = default;
};

/// The editable state of one page: an ordered sequence of items
/// (headings, paragraphs, object slots). Object content is stored by uid
/// so that delete + restore cycles preserve identity — this is the
/// ground truth the matcher is evaluated against.
struct LogicalPage {
  enum class ItemKind { kHeading, kParagraph, kObject };

  struct Item {
    ItemKind kind = ItemKind::kParagraph;
    int heading_level = 2;   // kHeading
    std::string text;        // kHeading title / kParagraph text
    int64_t uid = -1;        // kObject
  };

  std::string title;
  std::vector<Item> items;
  std::unordered_map<int64_t, LogicalContent> contents;  // present objects

  /// Index in `items` of the object with `uid`, or -1.
  int FindObjectItem(int64_t uid) const;

  /// The uids of all present objects of `type`, in page order. Their
  /// index in this vector is their position rank.
  std::vector<int64_t> PresentUids(extract::ObjectType type) const;

  /// All present object uids in page order, any type.
  std::vector<int64_t> AllPresentUids() const;

  /// Removes the object item and returns its content.
  LogicalContent RemoveObject(int64_t uid);

  /// Inserts an object with `content` at item index `item_index`
  /// (clamped).
  void InsertObject(int64_t uid, LogicalContent content, size_t item_index);
};

}  // namespace somr::wikigen
