#pragma once

#include <string>

#include "common/rng.h"

namespace somr::wikigen {

/// Random natural-language building blocks for the synthetic corpus. All
/// functions are pure draws from fixed word pools, so that generated
/// content is deterministic per seed, plausible, and — importantly for
/// matching difficulty — *overlapping*: different objects on a page share
/// many tokens (award categories, country names, years), as on real
/// Wikipedia pages (Example 1 of the paper).
class Vocab {
 public:
  explicit Vocab(Rng& rng) : rng_(rng) {}

  /// A person name, e.g. "Maria Keller".
  std::string PersonName();

  /// A place name, e.g. "Port Aurelia".
  std::string PlaceName();

  /// An award/event name, e.g. "Golden Meridian Award".
  std::string AwardName();

  /// An award category, e.g. "Best Supporting Actor". Drawn from a small
  /// pool so categories collide across tables, as in the paper.
  std::string AwardCategory();

  /// "Won" / "Nominated" / "Pending".
  std::string AwardResult();

  /// A film/album/work title, e.g. "The Silent Harbor".
  std::string WorkTitle();

  /// A year in [1960, 2019] as a string.
  std::string Year();

  /// A short noun phrase, `words` words long.
  std::string NounPhrase(int words);

  /// A filler sentence for paragraphs and list items.
  std::string Sentence();

  /// A wiki-link to a random entity: "[[Target]]" or "[[Target|label]]".
  std::string WikiLink();

  /// A column header for a generic table.
  std::string ColumnHeader();

  /// A value appropriate for the given header (years for "Year", numbers
  /// for "Population", names otherwise).
  std::string ValueFor(const std::string& header);

  /// An infobox property key from a fixed pool.
  std::string InfoboxKey();

  /// Random contributor username.
  std::string UserName();

  /// Gibberish used by the vandalism edit operation.
  std::string VandalismText();

 private:
  Rng& rng_;
};

}  // namespace somr::wikigen
