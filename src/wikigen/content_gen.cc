#include "wikigen/content_gen.h"

#include <algorithm>
#include <unordered_set>

namespace somr::wikigen {

LogicalContent ContentGenerator::NewTable() {
  LogicalContent table;
  table.type = extract::ObjectType::kTable;
  // Paper Sec. V-A: ~62% of tables never change size; award and
  // discography tables are inherently dynamic (they grow with releases
  // and ceremonies); standings tables keep their size but churn values.
  double p_dynamic = 0.3;
  if (theme_ == PageTheme::kAwards) p_dynamic = 0.6;
  if (theme_ == PageTheme::kDiscography) p_dynamic = 0.5;
  if (theme_ == PageTheme::kSports) p_dynamic = 0.15;
  table.dynamic_size = rng_.Bernoulli(p_dynamic);
  if (theme_ == PageTheme::kSports) {
    // Standings: one row per team, heavily updated numeric cells. Every
    // standings table on the page shares the schema — like award tables,
    // a deliberately hard case.
    table.caption = vocab_.NounPhrase(1) + " group " +
                    std::string(1, static_cast<char>(
                                       'A' + rng_.UniformInt(0, 5)));
    table.header = {"Pos", "Team", "Played", "Won", "Lost", "Points",
                    "Qualification"};
    table.key_column = 1;  // team names never change mid-season
    int teams = static_cast<int>(rng_.UniformInt(4, 10));
    for (int t = 0; t < teams; ++t) {
      table.rows.push_back(NewTableRow(table));
      table.rows.back()[0] = std::to_string(t + 1);
      table.rows.back()[1] = UniqueTeamName();
      // Qualification notes reference concrete places/rounds, giving the
      // table textual identity, as real standings do.
      table.rows.back()[6] =
          t == 0 ? "Promoted to " + vocab_.PlaceName() + " division"
          : t < 3 ? "Playoff round at " + vocab_.PlaceName()
                  : "";
    }
    return table;
  }
  if (theme_ == PageTheme::kDiscography) {
    table.caption = rng_.Bernoulli(0.5) ? "Studio albums" : "Singles";
    table.header = {"Year", "Title", "Label", "Peak"};
    table.key_column = 1;  // release titles are fixed once published
    int releases = static_cast<int>(rng_.UniformInt(2, 9));
    int year = static_cast<int>(rng_.UniformInt(1975, 2005));
    for (int r = 0; r < releases; ++r) {
      table.rows.push_back({std::to_string(year), vocab_.WorkTitle(),
                            vocab_.PlaceName() + " Records",
                            std::to_string(rng_.UniformInt(1, 100))});
      year += static_cast<int>(rng_.UniformInt(1, 4));
    }
    return table;
  }
  if (theme_ == PageTheme::kAwards) {
    // Same schema for every table on the page — the paper's hard case.
    table.caption = vocab_.AwardName();
    table.header = {"Year", "Category", "Work", "Result"};
    int rows = static_cast<int>(rng_.UniformInt(2, 8));
    int year = static_cast<int>(rng_.UniformInt(1985, 2010));
    for (int r = 0; r < rows; ++r) {
      table.rows.push_back({std::to_string(year),
                            vocab_.AwardCategory(), vocab_.WorkTitle(),
                            vocab_.AwardResult()});
      year += static_cast<int>(rng_.UniformInt(1, 3));
    }
    return table;
  }
  // Settlement / generic: sampled schema.
  if (rng_.Bernoulli(0.4)) table.caption = vocab_.NounPhrase(2);
  int cols = static_cast<int>(rng_.UniformInt(2, 6));
  std::unordered_set<std::string> used;
  while (static_cast<int>(table.header.size()) < cols) {
    std::string h = vocab_.ColumnHeader();
    if (used.insert(h).second) table.header.push_back(std::move(h));
  }
  int rows = static_cast<int>(rng_.UniformInt(2, 10));
  for (int r = 0; r < rows; ++r) {
    table.rows.push_back(NewTableRow(table));
  }
  return table;
}

LogicalContent ContentGenerator::NewInfobox() {
  LogicalContent infobox;
  infobox.type = extract::ObjectType::kInfobox;
  infobox.dynamic_size = rng_.Bernoulli(0.4);  // 37% change schema (V-A)
  infobox.caption = theme_ == PageTheme::kSettlement
                        ? "Infobox settlement"
                        : (rng_.Bernoulli(0.5) ? "Infobox person"
                                               : "Infobox venue");
  int props = static_cast<int>(rng_.UniformInt(4, 10));
  std::unordered_set<std::string> used;
  infobox.rows.push_back(
      {"name", theme_ == PageTheme::kSettlement ? vocab_.PlaceName()
                                                : vocab_.PersonName()});
  used.insert("name");
  while (static_cast<int>(infobox.rows.size()) < props) {
    std::string key = vocab_.InfoboxKey();
    if (!used.insert(key).second) continue;
    infobox.rows.push_back({key, vocab_.ValueFor(key)});
  }
  return infobox;
}

LogicalContent ContentGenerator::NewList() {
  LogicalContent list;
  list.type = extract::ObjectType::kList;
  list.dynamic_size = rng_.Bernoulli(0.3);  // 27% change item count (V-A)
  int items = static_cast<int>(rng_.UniformInt(3, 12));
  for (int i = 0; i < items; ++i) {
    list.rows.push_back({NewListItem()});
  }
  return list;
}

LogicalContent ContentGenerator::NewOfType(extract::ObjectType type) {
  switch (type) {
    case extract::ObjectType::kTable:
      return NewTable();
    case extract::ObjectType::kInfobox:
      return NewInfobox();
    case extract::ObjectType::kList:
      return NewList();
  }
  return NewTable();
}

std::string ContentGenerator::UniqueTeamName() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string name = vocab_.PlaceName();
    if (used_team_names_.insert(name).second) return name;
  }
  // Pool exhausted (pathological page): disambiguate numerically.
  std::string name = vocab_.PlaceName() + " " +
                     std::to_string(used_team_names_.size());
  used_team_names_.insert(name);
  return name;
}

std::vector<std::string> ContentGenerator::NewTableRow(
    const LogicalContent& table) {
  std::vector<std::string> row;
  row.reserve(table.header.size());
  for (size_t c = 0; c < table.header.size(); ++c) {
    row.push_back(CellValue(table, c));
  }
  return row;
}

std::string ContentGenerator::NewListItem() {
  double u = rng_.UniformDouble();
  if (u < 0.4) return vocab_.WikiLink() + " — " + vocab_.NounPhrase(2);
  if (u < 0.7) return vocab_.Sentence();
  return vocab_.WorkTitle() + " (" + vocab_.Year() + ")";
}

std::vector<std::string> ContentGenerator::NewInfoboxProperty(
    const LogicalContent& infobox) {
  std::unordered_set<std::string> used;
  for (const auto& row : infobox.rows) {
    if (!row.empty()) used.insert(row[0]);
  }
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::string key = vocab_.InfoboxKey();
    if (used.count(key) == 0) {
      std::string value = vocab_.ValueFor(key);
      return {std::move(key), std::move(value)};
    }
  }
  // Pool exhausted: reuse a key with a fresh value (MediaWiki allows it).
  std::string key = vocab_.InfoboxKey();
  return {key, vocab_.ValueFor(key)};
}

std::string ContentGenerator::CellValue(const LogicalContent& table,
                                        size_t col) {
  if (theme_ == PageTheme::kSports && table.header.size() == 7) {
    switch (col) {
      case 0:
      case 2:
      case 3:
      case 4:
        return std::to_string(rng_.UniformInt(0, 40));
      case 5:
        return std::to_string(rng_.UniformInt(0, 99));
      case 6:
        return rng_.Bernoulli(0.5)
                   ? ""
                   : "Playoff round at " + vocab_.PlaceName();
      default:
        return vocab_.PlaceName();  // team name
    }
  }
  if (theme_ == PageTheme::kDiscography && table.header.size() == 4) {
    switch (col) {
      case 0:
        return vocab_.Year();
      case 1:
        return vocab_.WorkTitle();
      case 2:
        return vocab_.PlaceName() + " Records";
      default:
        return std::to_string(rng_.UniformInt(1, 100));
    }
  }
  if (theme_ == PageTheme::kAwards && table.header.size() == 4) {
    switch (col) {
      case 0:
        return vocab_.Year();
      case 1:
        return vocab_.AwardCategory();
      case 2:
        return vocab_.WorkTitle();
      case 3:
        return vocab_.AwardResult();
      default:
        break;
    }
  }
  if (col < table.header.size()) {
    return vocab_.ValueFor(table.header[col]);
  }
  return vocab_.NounPhrase(2);
}

}  // namespace somr::wikigen
