#include "wikigen/evolver.h"

#include <algorithm>
#include <cmath>

#include "wikigen/render.h"

namespace somr::wikigen {

const matching::IdentityGraph& GeneratedPage::TruthFor(
    extract::ObjectType type) const {
  switch (type) {
    case extract::ObjectType::kTable:
      return truth_tables;
    case extract::ObjectType::kInfobox:
      return truth_infoboxes;
    case extract::ObjectType::kList:
      return truth_lists;
  }
  return truth_tables;
}

PageEvolver::PageEvolver(EvolverConfig config)
    : config_(config), rng_(config.seed), content_(rng_, config.theme) {}

void PageEvolver::SeedInitialPage() {
  Vocab& vocab = content_.vocab();
  switch (config_.theme) {
    case PageTheme::kAwards:
      page_.title = "List of awards and nominations received by " +
                    vocab.PersonName();
      break;
    case PageTheme::kSettlement:
      page_.title = vocab.PlaceName();
      break;
    case PageTheme::kSports:
      page_.title = std::to_string(rng_.UniformInt(1990, 2015)) + " " +
                    vocab.PlaceName() + " League season";
      break;
    case PageTheme::kDiscography:
      page_.title = vocab.PersonName() + " discography";
      break;
    case PageTheme::kGeneric:
      page_.title = vocab.NounPhrase(2);
      break;
  }

  // Lead paragraph.
  page_.items.push_back({LogicalPage::ItemKind::kParagraph, 2,
                         vocab.Sentence() + " " + vocab.Sentence(), -1});

  // 2-4 sections, each with a heading and a filler paragraph.
  int sections = static_cast<int>(rng_.UniformInt(2, 4));
  for (int s = 0; s < sections; ++s) {
    page_.items.push_back({LogicalPage::ItemKind::kHeading, 2,
                           vocab.NounPhrase(1 + (s % 2)), -1});
    page_.items.push_back(
        {LogicalPage::ItemKind::kParagraph, 2, vocab.Sentence(), -1});
  }

  // Initial objects: at least one of the focal type.
  int initial_focal =
      config_.initial_focal_objects > 0
          ? std::min(config_.initial_focal_objects,
                     config_.max_focal_objects)
          : static_cast<int>(rng_.UniformInt(
                1, std::max(1, config_.max_focal_objects / 2)));
  for (int i = 0; i < initial_focal; ++i) {
    page_.InsertObject(next_uid_++,
                       content_.NewOfType(config_.focal_type),
                       RandomInsertIndex());
    ++ops_.inserts;
  }
  // A sprinkle of the other types.
  for (extract::ObjectType other :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    if (other == config_.focal_type) continue;
    if (rng_.Bernoulli(0.5)) {
      page_.InsertObject(next_uid_++, content_.NewOfType(other),
                         RandomInsertIndex());
      ++ops_.inserts;
    }
  }
}

size_t PageEvolver::RandomInsertIndex() {
  if (page_.items.empty()) return 0;
  // Mild top bias: editors tend to add new content early on the page,
  // pushing existing objects down — the paper observes more down-moves
  // (9.8%) than up-moves (6.9%).
  double u = std::pow(rng_.UniformDouble(), 1.4);
  size_t index =
      1 + static_cast<size_t>(u * static_cast<double>(page_.items.size()));
  return std::min(index, page_.items.size());
}

int PageEvolver::FocalCount() const {
  return static_cast<int>(page_.PresentUids(config_.focal_type).size());
}

int PageEvolver::CapFor(extract::ObjectType type) const {
  if (type == config_.focal_type) return config_.max_focal_objects;
  return type == extract::ObjectType::kInfobox ? 1 : 3;
}

bool PageEvolver::AtCap(extract::ObjectType type) const {
  return static_cast<int>(page_.PresentUids(type).size()) >= CapFor(type);
}

int64_t PageEvolver::PickPresentObject(bool focal_bias) {
  std::vector<int64_t> uids = focal_bias && rng_.Bernoulli(0.75)
                                  ? page_.PresentUids(config_.focal_type)
                                  : page_.AllPresentUids();
  if (uids.empty()) uids = page_.AllPresentUids();
  if (uids.empty()) return -1;
  return uids[rng_.Index(uids.size())];
}

void PageEvolver::UpdateTable(LogicalContent& table) {
  double u = rng_.UniformDouble();
  if (table.dynamic_size) {
    // Dynamic tables grow (and occasionally shrink) over time.
    if (u < 0.38) {  // append row
      table.rows.push_back(content_.NewTableRow(table));
      return;
    }
    if (u < 0.48 && table.rows.size() > 1) {  // remove row
      table.rows.erase(table.rows.begin() +
                       static_cast<long>(rng_.Index(table.rows.size())));
      return;
    }
    if (u < 0.52) {  // add column
      std::string header = content_.vocab().ColumnHeader();
      table.header.push_back(header);
      for (auto& row : table.rows) {
        row.push_back(content_.vocab().ValueFor(header));
      }
      return;
    }
    if (u < 0.55 && table.header.size() > 2) {  // remove column
      size_t col = rng_.Index(table.header.size());
      table.header.erase(table.header.begin() + static_cast<long>(col));
      for (auto& row : table.rows) {
        if (col < row.size()) {
          row.erase(row.begin() + static_cast<long>(col));
        }
      }
      return;
    }
  }
  // Size-preserving edits (the only edits static tables receive).
  if (u < 0.88 && !table.rows.empty()) {  // edit one cell
    auto& row = table.rows[rng_.Index(table.rows.size())];
    if (!row.empty()) {
      size_t col = rng_.Index(row.size());
      // Identity-bearing columns (team names, titles) are never
      // rewritten in place.
      if (static_cast<int>(col) == table.key_column && row.size() > 1) {
        col = (col + 1) % row.size();
      }
      row[col] = content_.CellValue(table, col);
    }
  } else if (u < 0.95) {  // edit caption
    table.caption = config_.theme == PageTheme::kAwards
                        ? content_.vocab().AwardName()
                        : content_.vocab().NounPhrase(2);
  } else if (table.rows.size() > 1) {  // reorder rows
    rng_.Shuffle(table.rows);
  }
}

void PageEvolver::UpdateInfobox(LogicalContent& infobox) {
  double u = rng_.UniformDouble();
  if (infobox.dynamic_size) {
    if (u < 0.22) {  // add property
      infobox.rows.push_back(content_.NewInfoboxProperty(infobox));
      return;
    }
    if (u < 0.32 && infobox.rows.size() > 2) {  // remove property
      // Never remove the name property at row 0.
      size_t idx = 1 + rng_.Index(infobox.rows.size() - 1);
      infobox.rows.erase(infobox.rows.begin() + static_cast<long>(idx));
      return;
    }
    if (u < 0.38 && infobox.rows.size() > 1) {  // rename key
      auto& row = infobox.rows[1 + rng_.Index(infobox.rows.size() - 1)];
      if (!row.empty()) row[0] = content_.vocab().InfoboxKey();
      return;
    }
  }
  if (!infobox.rows.empty()) {  // edit a value
    auto& row = infobox.rows[rng_.Index(infobox.rows.size())];
    if (row.size() >= 2) row[1] = content_.vocab().ValueFor(row[0]);
  }
}

void PageEvolver::UpdateList(LogicalContent& list) {
  double u = rng_.UniformDouble();
  if (list.dynamic_size) {
    if (u < 0.35) {  // add item
      size_t at = list.rows.empty() ? 0 : rng_.Index(list.rows.size() + 1);
      list.rows.insert(list.rows.begin() + static_cast<long>(at),
                       {content_.NewListItem()});
      return;
    }
    if (u < 0.5 && list.rows.size() > 1) {  // remove item
      list.rows.erase(list.rows.begin() +
                      static_cast<long>(rng_.Index(list.rows.size())));
      return;
    }
  }
  if (u < 0.95 && !list.rows.empty()) {  // edit item
    list.rows[rng_.Index(list.rows.size())] = {content_.NewListItem()};
  } else if (list.rows.size() > 1) {  // reorder
    rng_.Shuffle(list.rows);
  }
}

void PageEvolver::OpUpdate(std::string& comment) {
  int64_t uid = PickPresentObject();
  if (uid < 0) return;
  LogicalContent& content = page_.contents[uid];
  switch (content.type) {
    case extract::ObjectType::kTable:
      UpdateTable(content);
      break;
    case extract::ObjectType::kInfobox:
      UpdateInfobox(content);
      break;
    case extract::ObjectType::kList:
      UpdateList(content);
      break;
  }
  if (content.Empty()) {
    // An object edited down to nothing disappears from the page.
    size_t index = static_cast<size_t>(std::max(0, page_.FindObjectItem(uid)));
    graveyard_.push_back({uid, page_.RemoveObject(uid), index});
    ++ops_.deletes;
    comment += " emptied object;";
    return;
  }
  ++ops_.updates;
  comment += " updated content;";
}

void PageEvolver::OpDelete(std::string& comment) {
  int64_t uid = PickPresentObject();
  if (uid < 0) return;
  size_t index = static_cast<size_t>(std::max(0, page_.FindObjectItem(uid)));
  graveyard_.push_back({uid, page_.RemoveObject(uid), index});
  if (graveyard_.size() > 64) graveyard_.pop_front();
  ++ops_.deletes;
  comment += " removed object;";
}

void PageEvolver::OpRestore(std::string& comment) {
  if (graveyard_.empty()) return;
  // Prefer recently deleted entries (vandalism-style restores).
  size_t idx = graveyard_.size() - 1 -
               std::min<size_t>(static_cast<size_t>(rng_.Geometric(0.5)),
                                graveyard_.size() - 1);
  GraveyardEntry entry = std::move(graveyard_[idx]);
  graveyard_.erase(graveyard_.begin() + static_cast<long>(idx));
  if (AtCap(entry.content.type)) {
    return;  // per-type cap
  }
  bool exact = rng_.Bernoulli(config_.p_restore_exact);
  if (!exact) {
    // Restore a mutated version ("fresh" re-insert).
    switch (entry.content.type) {
      case extract::ObjectType::kTable:
        UpdateTable(entry.content);
        break;
      case extract::ObjectType::kInfobox:
        UpdateInfobox(entry.content);
        break;
      case extract::ObjectType::kList:
        UpdateList(entry.content);
        break;
    }
  }
  if (entry.content.Empty()) return;
  // Restores — mostly reverts — put the object back where it was;
  // occasionally an editor re-adds it elsewhere.
  size_t index = rng_.Bernoulli(0.85)
                     ? std::min(entry.item_index, page_.items.size())
                     : RandomInsertIndex();
  page_.InsertObject(entry.uid, std::move(entry.content), index);
  ++ops_.restores;
  if (exact) ++ops_.restores_exact;
  comment += " restored object;";
}

void PageEvolver::OpInsert(std::string& comment) {
  extract::ObjectType type = config_.focal_type;
  if (rng_.Bernoulli(0.3)) {
    // Occasionally insert a non-focal object.
    int pick = static_cast<int>(rng_.UniformInt(0, 2));
    type = static_cast<extract::ObjectType>(pick);
  }
  if (AtCap(type)) return;
  page_.InsertObject(next_uid_++, content_.NewOfType(type),
                     RandomInsertIndex());
  ++ops_.inserts;
  comment += " added object;";
}

void PageEvolver::OpMove(std::string& comment) {
  int64_t uid = PickPresentObject(/*focal_bias=*/false);
  if (uid < 0) return;
  int from = page_.FindObjectItem(uid);
  if (from < 0) return;
  LogicalPage::Item item = page_.items[static_cast<size_t>(from)];
  page_.items.erase(page_.items.begin() + from);
  // Paper: objects move down (9.8%) more often than up (6.9%).
  bool down = rng_.Bernoulli(0.59);
  int distance = 1 + rng_.Geometric(0.45);
  int to = down ? from + distance : from - distance;
  to = std::clamp(to, 1, static_cast<int>(page_.items.size()));
  page_.items.insert(page_.items.begin() + to, item);
  if (to > from) {
    ++ops_.moves_down;
  } else if (to < from) {
    ++ops_.moves_up;
  }
  comment += " rearranged page;";
}

void PageEvolver::OpDuplicate(std::string& comment) {
  int64_t uid = PickPresentObject();
  if (uid < 0) return;
  const LogicalContent& original = page_.contents[uid];
  if (AtCap(original.type)) return;
  // An exact copy: the accidental copy-paste phenomenon (Sec. IV-A3).
  page_.InsertObject(next_uid_++, original, RandomInsertIndex());
  ++ops_.duplicates;
  comment += " duplicated content;";
}

void PageEvolver::OpVandalize(int revision, std::string& comment) {
  int64_t uid = PickPresentObject();
  if (uid < 0) return;
  PendingRevert revert;
  revert.uid = uid;
  revert.due_revision =
      revision + 1 + static_cast<int>(rng_.UniformInt(0, 1));
  revert.item_index =
      static_cast<size_t>(std::max(0, page_.FindObjectItem(uid)));
  if (rng_.Bernoulli(0.5)) {
    // Blank the object.
    revert.content = page_.RemoveObject(uid);
    revert.was_deleted = true;
  } else {
    // Replace part of the content with junk: vandals typically hit a few
    // cells or one row, not every element.
    revert.content = page_.contents[uid];
    revert.was_deleted = false;
    LogicalContent& content = page_.contents[uid];
    Vocab& vocab = content_.vocab();
    int hits = 1 + static_cast<int>(rng_.UniformInt(0, 2));
    for (int h = 0; h < hits && !content.rows.empty(); ++h) {
      auto& row = content.rows[rng_.Index(content.rows.size())];
      if (rng_.Bernoulli(0.3)) {
        for (auto& cell : row) cell = vocab.VandalismText();
      } else if (!row.empty()) {
        row[rng_.Index(row.size())] = vocab.VandalismText();
      }
    }
  }
  pending_reverts_.push_back(std::move(revert));
  ++ops_.vandalisms;
  comment += " vandalism;";
}

void PageEvolver::ApplyDueReverts(int revision, std::string& comment) {
  for (size_t i = 0; i < pending_reverts_.size();) {
    if (pending_reverts_[i].due_revision > revision) {
      ++i;
      continue;
    }
    PendingRevert revert = std::move(pending_reverts_[i]);
    pending_reverts_.erase(pending_reverts_.begin() +
                           static_cast<long>(i));
    if (revert.was_deleted) {
      if (page_.contents.count(revert.uid) == 0) {
        // A revert restores the page verbatim: same location.
        page_.InsertObject(revert.uid, std::move(revert.content),
                           std::min(revert.item_index, page_.items.size()));
        ++ops_.restores;
        ++ops_.restores_exact;
      }
    } else if (page_.contents.count(revert.uid) > 0) {
      page_.contents[revert.uid] = std::move(revert.content);
    }
    ++ops_.reverts;
    comment += " reverted vandalism;";
  }
}

void PageEvolver::OpSectionEdit(std::string& comment) {
  std::vector<size_t> headings;
  for (size_t i = 0; i < page_.items.size(); ++i) {
    if (page_.items[i].kind == LogicalPage::ItemKind::kHeading) {
      headings.push_back(i);
    }
  }
  Vocab& vocab = content_.vocab();
  if (headings.empty() || rng_.Bernoulli(0.3)) {
    // Add a new section at the end.
    page_.items.push_back({LogicalPage::ItemKind::kHeading, 2,
                           vocab.NounPhrase(2), -1});
    comment += " new section;";
    return;
  }
  // Rename an existing section (changes the context of its objects).
  page_.items[headings[rng_.Index(headings.size())]].text =
      vocab.NounPhrase(2);
  comment += " renamed section;";
}

void PageEvolver::OpParagraphEdit(std::string& comment) {
  std::vector<size_t> paragraphs;
  for (size_t i = 0; i < page_.items.size(); ++i) {
    if (page_.items[i].kind == LogicalPage::ItemKind::kParagraph) {
      paragraphs.push_back(i);
    }
  }
  Vocab& vocab = content_.vocab();
  if (paragraphs.empty() || rng_.Bernoulli(0.4)) {
    page_.items.insert(
        page_.items.begin() + static_cast<long>(RandomInsertIndex()),
        {LogicalPage::ItemKind::kParagraph, 2, vocab.Sentence(), -1});
  } else {
    page_.items[paragraphs[rng_.Index(paragraphs.size())]].text =
        vocab.Sentence() + " " + vocab.Sentence();
  }
  comment += " copyedit;";
}

void PageEvolver::ApplyRandomOp(int revision, std::string& comment) {
  // On real pages the edit volume is page-level: pages with few objects
  // receive mostly prose edits. Without this damping, a one-table page
  // would funnel its whole revision history into that table, giving
  // objects far more change events than the paper's gold standard
  // (~14 per object, Sec. V-A).
  double objects = static_cast<double>(page_.AllPresentUids().size());
  double object_share = objects / (objects + 4.0);
  if (!rng_.Bernoulli(object_share)) {
    if (rng_.Bernoulli(0.25)) {
      OpSectionEdit(comment);
    } else {
      OpParagraphEdit(comment);
    }
    return;
  }
  double total = config_.w_update + config_.w_delete + config_.w_restore +
                 config_.w_insert + config_.w_move + config_.w_duplicate +
                 config_.w_vandalize + config_.w_section_edit +
                 config_.w_paragraph_edit;
  double u = rng_.UniformDouble() * total;
  auto take = [&u](double w) {
    if (u < w) return true;
    u -= w;
    return false;
  };
  if (take(config_.w_update)) {
    OpUpdate(comment);
  } else if (take(config_.w_delete)) {
    OpDelete(comment);
  } else if (take(config_.w_restore)) {
    OpRestore(comment);
  } else if (take(config_.w_insert)) {
    OpInsert(comment);
  } else if (take(config_.w_move)) {
    OpMove(comment);
  } else if (take(config_.w_duplicate)) {
    OpDuplicate(comment);
  } else if (take(config_.w_vandalize)) {
    OpVandalize(revision, comment);
  } else if (take(config_.w_section_edit)) {
    OpSectionEdit(comment);
  } else {
    OpParagraphEdit(comment);
  }
}

void PageEvolver::RecordTruth(int revision) {
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    std::vector<int64_t> uids = page_.PresentUids(type);
    for (size_t pos = 0; pos < uids.size(); ++pos) {
      int64_t uid = uids[pos];
      auto it = chain_index_.find(uid);
      if (it == chain_index_.end()) {
        chain_index_[uid] = chains_.size();
        chains_.push_back({uid, type, {{revision, static_cast<int>(pos)}}});
      } else {
        chains_[it->second].versions.push_back(
            {revision, static_cast<int>(pos)});
      }
    }
  }
}

GeneratedPage PageEvolver::Generate() {
  SeedInitialPage();

  GeneratedPage result;
  Vocab& vocab = content_.vocab();

  UnixSeconds timestamp =
      FromCivil(static_cast<int>(rng_.UniformInt(2004, 2012)),
                static_cast<int>(rng_.UniformInt(1, 12)),
                static_cast<int>(rng_.UniformInt(1, 28)),
                static_cast<int>(rng_.UniformInt(0, 23)));

  for (int revision = 0; revision < config_.num_revisions; ++revision) {
    std::string comment;
    if (revision > 0) {
      ApplyDueReverts(revision, comment);
      int ops = 1 + rng_.Poisson(config_.extra_ops_per_revision);
      for (int i = 0; i < ops; ++i) {
        ApplyRandomOp(revision, comment);
      }
    } else {
      comment = "created page";
    }

    RecordTruth(revision);

    GeneratedRevision rev;
    rev.timestamp = timestamp;
    rev.comment = comment.empty() ? "minor edit" : comment;
    rev.contributor = vocab.UserName();
    rev.wikitext = RenderWikitext(page_);
    rev.html = RenderHtml(page_, config_.html_web_chrome);
    result.revisions.push_back(std::move(rev));

    // Exponentially distributed gap between revisions.
    double gap_days = -std::log(1.0 - rng_.UniformDouble()) *
                      config_.mean_revision_gap_days;
    timestamp += static_cast<UnixSeconds>(
        std::max(60.0, gap_days * kSecondsPerDay));
  }

  result.title = page_.title;
  result.ops = ops_;

  // Build the ground-truth identity graphs from the recorded chains.
  for (const Chain& chain : chains_) {
    matching::IdentityGraph* graph = nullptr;
    switch (chain.type) {
      case extract::ObjectType::kTable:
        graph = &result.truth_tables;
        break;
      case extract::ObjectType::kInfobox:
        graph = &result.truth_infoboxes;
        break;
      case extract::ObjectType::kList:
        graph = &result.truth_lists;
        break;
    }
    int64_t id = graph->AddObject(chain.versions.front());
    for (size_t i = 1; i < chain.versions.size(); ++i) {
      graph->AppendVersion(id, chain.versions[i]);
    }
  }
  return result;
}

}  // namespace somr::wikigen
