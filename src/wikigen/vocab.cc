#include "wikigen/vocab.h"

#include <array>
#include <string_view>

namespace somr::wikigen {

namespace {

constexpr std::array<std::string_view, 24> kFirstNames = {
    "Maria",  "James",  "Elena",   "Tobias", "Leon",   "Divesh",
    "Felix",  "Anna",   "Robert",  "Sofia",  "Henrik", "Clara",
    "Marcus", "Ingrid", "Pauline", "Viktor", "Amara",  "Jonas",
    "Lucia",  "Oscar",  "Renate",  "Samuel", "Teresa", "Walter"};

constexpr std::array<std::string_view, 24> kLastNames = {
    "Keller",   "Bennett",  "Okafor",   "Lindqvist", "Moreau",  "Tanaka",
    "Petrov",   "Alvarez",  "Schmidt",  "Haugen",    "Rossi",   "Novak",
    "Anders",   "Caruso",   "Dittrich", "Eriksen",   "Falk",    "Grieg",
    "Hoffmann", "Iversen",  "Jansen",   "Kowalski",  "Larsen",  "Meier"};

constexpr std::array<std::string_view, 20> kPlacePrefix = {
    "Port",  "New",    "Lake",  "Fort",  "Saint", "East", "West",
    "North", "South",  "Upper", "Lower", "Old",   "Mount", "Cape",
    "Glen",  "Little", "Grand", "Bay",   "Rock",  "Star"};

constexpr std::array<std::string_view, 20> kPlaceStem = {
    "Aurelia",  "Brighton", "Calder",  "Dunmore",  "Eastvale",
    "Farrow",   "Garland",  "Holloway", "Ivydale",  "Juniper",
    "Kingsley", "Larkspur", "Midvale",  "Norwood",  "Oakhurst",
    "Pinecrest", "Quarry",  "Ridgeway", "Seabrook", "Thornton"};

constexpr std::array<std::string_view, 12> kAwardAdjectives = {
    "Golden", "Silver",   "Crystal",  "National", "International",
    "Annual", "Critics'", "People's", "Grand",    "Royal",
    "Pacific", "Northern"};

constexpr std::array<std::string_view, 12> kAwardNouns = {
    "Meridian", "Laurel", "Globe",  "Compass", "Lantern", "Orbit",
    "Spire",    "Harbor", "Summit", "Beacon",  "Quill",   "Reel"};

// Small pool on purpose: categories collide across award tables on the
// same page, which is exactly what makes matching hard (Example 1).
constexpr std::array<std::string_view, 10> kAwardCategories = {
    "Best Actor",           "Best Actress",
    "Best Supporting Actor", "Best Supporting Actress",
    "Best Director",        "Best Picture",
    "Best Original Song",   "Best Screenplay",
    "Best Newcomer",        "Album of the Year"};

constexpr std::array<std::string_view, 14> kWorkAdjectives = {
    "Silent", "Hidden", "Crimson", "Endless", "Broken", "Distant",
    "Velvet", "Frozen", "Burning", "Hollow",  "Gilded", "Wandering",
    "Quiet",  "Electric"};

constexpr std::array<std::string_view, 14> kWorkNouns = {
    "Harbor", "Mirror", "Orchard", "Parallel", "Harvest", "Signal",
    "Garden", "Winter",  "Archive", "Horizon",  "Letter",  "Cathedral",
    "Voyage", "Tide"};

constexpr std::array<std::string_view, 22> kNouns = {
    "river",   "council",  "station",  "festival", "museum",  "bridge",
    "library", "district", "railway",  "harbor",   "castle",  "garden",
    "market",  "theatre",  "airport",  "stadium",  "valley",  "island",
    "forest",  "cathedral", "quarter", "province"};

constexpr std::array<std::string_view, 18> kAdjectives = {
    "historic",  "northern", "famous",   "large",    "ancient",
    "modern",    "coastal",  "regional", "annual",   "public",
    "national",  "small",    "popular",  "western",  "central",
    "important", "notable",  "official"};

constexpr std::array<std::string_view, 16> kVerbsPast = {
    "opened",      "closed",     "expanded",  "renovated", "founded",
    "established", "relocated",  "merged",    "dissolved", "completed",
    "announced",   "inaugurated", "restored", "rebuilt",   "extended",
    "modernized"};

constexpr std::array<std::string_view, 14> kColumnHeaders = {
    "Name",   "Year",   "Location", "Population", "Area",   "Notes",
    "Result", "Rank",   "Country",  "Length",     "Height", "Status",
    "Date",   "Capacity"};

constexpr std::array<std::string_view, 18> kInfoboxKeys = {
    "name",        "birth_date", "birth_place", "occupation",
    "nationality", "population", "area",        "elevation",
    "established", "website",    "coordinates", "mayor",
    "genre",       "label",      "years_active", "spouse",
    "children",    "education"};

constexpr std::array<std::string_view, 10> kVandalWords = {
    "aslkdjf", "zzzzz",    "qwerty",  "hahaha", "nonsense",
    "deleted", "xxxxxxx",  "spamspam", "lolol",  "blanked"};

template <size_t N>
std::string_view Pick(Rng& rng, const std::array<std::string_view, N>& pool) {
  return pool[rng.Index(N)];
}

}  // namespace

std::string Vocab::PersonName() {
  return std::string(Pick(rng_, kFirstNames)) + " " +
         std::string(Pick(rng_, kLastNames));
}

std::string Vocab::PlaceName() {
  return std::string(Pick(rng_, kPlacePrefix)) + " " +
         std::string(Pick(rng_, kPlaceStem));
}

std::string Vocab::AwardName() {
  return std::string(Pick(rng_, kAwardAdjectives)) + " " +
         std::string(Pick(rng_, kAwardNouns)) + " Award";
}

std::string Vocab::AwardCategory() {
  return std::string(Pick(rng_, kAwardCategories));
}

std::string Vocab::AwardResult() {
  double u = rng_.UniformDouble();
  if (u < 0.45) return "Won";
  if (u < 0.92) return "Nominated";
  return "Pending";
}

std::string Vocab::WorkTitle() {
  std::string title = "The " + std::string(Pick(rng_, kWorkAdjectives)) +
                      " " + std::string(Pick(rng_, kWorkNouns));
  // Qualifiers grow the title space far beyond the adjective x noun grid;
  // accidental title collisions across unrelated tables are rare in
  // reality.
  double u = rng_.UniformDouble();
  if (u < 0.25) {
    title += " of ";
    title += Pick(rng_, kPlaceStem);
  } else if (u < 0.45) {
    title += " I";
    title += rng_.Bernoulli(0.5) ? "I" : "II";
  } else if (u < 0.6) {
    title = std::string(Pick(rng_, kLastNames)) + "'s " + title.substr(4);
  }
  return title;
}

std::string Vocab::Year() {
  return std::to_string(rng_.UniformInt(1960, 2019));
}

std::string Vocab::NounPhrase(int words) {
  std::string phrase;
  for (int i = 0; i < words - 1; ++i) {
    phrase += std::string(Pick(rng_, kAdjectives)) + " ";
  }
  phrase += std::string(Pick(rng_, kNouns));
  return phrase;
}

std::string Vocab::Sentence() {
  std::string s = "The " + NounPhrase(2) + " " +
                  std::string(Pick(rng_, kVerbsPast)) + " in " + Year() +
                  " near " + PlaceName() + ".";
  return s;
}

std::string Vocab::WikiLink() {
  std::string target =
      rng_.Bernoulli(0.5) ? PlaceName() : PersonName();
  if (rng_.Bernoulli(0.3)) {
    return "[[" + target + "|" + NounPhrase(1) + "]]";
  }
  return "[[" + target + "]]";
}

std::string Vocab::ColumnHeader() {
  return std::string(Pick(rng_, kColumnHeaders));
}

std::string Vocab::ValueFor(const std::string& header) {
  if (header == "Year" || header == "Date" || header == "established") {
    return Year();
  }
  if (header == "Population" || header == "Capacity") {
    return std::to_string(rng_.UniformInt(500, 2000000));
  }
  if (header == "Area" || header == "Length" || header == "Height") {
    return std::to_string(rng_.UniformInt(1, 9000));
  }
  if (header == "Rank") {
    return std::to_string(rng_.UniformInt(1, 200));
  }
  if (header == "Result") {
    return AwardResult();
  }
  if (header == "Status") {
    return rng_.Bernoulli(0.5) ? "Active" : "Closed";
  }
  if (header == "Country" || header == "Location") {
    return PlaceName();
  }
  if (header == "Notes") {
    return NounPhrase(3);
  }
  return rng_.Bernoulli(0.5) ? PersonName() : PlaceName();
}

std::string Vocab::InfoboxKey() {
  return std::string(Pick(rng_, kInfoboxKeys));
}

std::string Vocab::UserName() {
  return std::string(Pick(rng_, kFirstNames)) +
         std::to_string(rng_.UniformInt(1, 999));
}

std::string Vocab::VandalismText() {
  std::string s;
  int n = static_cast<int>(rng_.UniformInt(1, 4));
  for (int i = 0; i < n; ++i) {
    if (i > 0) s.push_back(' ');
    s += std::string(Pick(rng_, kVandalWords));
  }
  return s;
}

}  // namespace somr::wikigen
