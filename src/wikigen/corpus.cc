#include "wikigen/corpus.h"

#include "common/rng.h"

namespace somr::wikigen {

namespace {

PageTheme ThemeFor(extract::ObjectType focal, Rng& rng) {
  double u = rng.UniformDouble();
  switch (focal) {
    case extract::ObjectType::kTable:
      // Emphasis on the hard cases: pages full of same-schema tables
      // (awards, standings).
      if (u < 0.40) return PageTheme::kAwards;
      if (u < 0.55) return PageTheme::kSports;
      if (u < 0.70) return PageTheme::kDiscography;
      if (u < 0.85) return PageTheme::kSettlement;
      return PageTheme::kGeneric;
    case extract::ObjectType::kInfobox:
      if (u < 0.55) return PageTheme::kSettlement;
      if (u < 0.75) return PageTheme::kDiscography;
      return PageTheme::kGeneric;
    case extract::ObjectType::kList:
      if (u < 0.3) return PageTheme::kAwards;
      if (u < 0.5) return PageTheme::kDiscography;
      return PageTheme::kGeneric;
  }
  return PageTheme::kGeneric;
}

}  // namespace

GoldCorpus GenerateGoldCorpus(const CorpusConfig& config) {
  GoldCorpus corpus;
  corpus.focal_type = config.focal_type;
  Rng rng(config.seed);
  for (int cap : config.strata_caps) {
    for (int p = 0; p < config.pages_per_stratum; ++p) {
      EvolverConfig evolver_config;
      evolver_config.focal_type = config.focal_type;
      evolver_config.max_focal_objects = cap;
      evolver_config.num_revisions = static_cast<int>(
          rng.UniformInt(config.min_revisions, config.max_revisions));
      evolver_config.theme = ThemeFor(config.focal_type, rng);
      evolver_config.seed = rng.engine()();
      PageEvolver evolver(evolver_config);
      corpus.pages.push_back(evolver.Generate());
      corpus.page_stratum_cap.push_back(cap);
    }
  }
  return corpus;
}

xmldump::Dump CorpusToDump(const GoldCorpus& corpus) {
  xmldump::Dump dump;
  dump.site_name = "somr-gold-corpus";
  int64_t page_id = 1;
  int64_t rev_id = 1;
  for (const GeneratedPage& page : corpus.pages) {
    xmldump::PageHistory history;
    history.title = page.title;
    history.page_id = page_id++;
    for (const GeneratedRevision& rev : page.revisions) {
      xmldump::Revision out;
      out.id = rev_id++;
      out.timestamp = rev.timestamp;
      out.contributor = rev.contributor;
      out.comment = rev.comment;
      out.text = rev.wikitext;
      history.revisions.push_back(std::move(out));
    }
    dump.pages.push_back(std::move(history));
  }
  return dump;
}

}  // namespace somr::wikigen
