#pragma once

#include <string>

#include "wikigen/logical_page.h"
#include "wikitext/ast.h"

namespace somr::wikigen {

/// Builds the wikitext AST for the current page state. Objects appear in
/// item order; extracting objects from the rendered page yields exactly
/// the logical objects, in the same order (round-trip property, tested).
wikitext::Document BuildWikitextDocument(const LogicalPage& page);

/// Renders the page state to wikitext markup.
std::string RenderWikitext(const LogicalPage& page);

/// Renders the page state to an HTML document (tables, `<table
/// class="infobox">`, `<ul>` lists, `<h2>`/`<h3>` headings) — the form
/// general web pages take in the DWTC / Internet-Archive experiment.
/// With `web_chrome`, the content is wrapped in realistic site furniture
/// (a <header> with a navigation menu, an <aside> sidebar list, a
/// <footer> link table) that extraction must ignore.
std::string RenderHtml(const LogicalPage& page, bool web_chrome = false);

}  // namespace somr::wikigen
