#include "wikigen/render.h"

#include "html/entities.h"
#include "wikitext/inline_markup.h"
#include "wikitext/serializer.h"

namespace somr::wikigen {

namespace {

wikitext::Table ToWikiTable(const LogicalContent& content) {
  wikitext::Table table;
  table.attrs = "class=\"wikitable\"";
  table.caption = content.caption;
  if (!content.header.empty()) {
    wikitext::TableRow header_row;
    for (const std::string& h : content.header) {
      wikitext::TableCell cell;
      cell.header = true;
      cell.content = h;
      header_row.cells.push_back(std::move(cell));
    }
    table.rows.push_back(std::move(header_row));
  }
  for (const auto& row : content.rows) {
    wikitext::TableRow wiki_row;
    for (const std::string& value : row) {
      wikitext::TableCell cell;
      cell.content = value;
      wiki_row.cells.push_back(std::move(cell));
    }
    table.rows.push_back(std::move(wiki_row));
  }
  return table;
}

wikitext::Template ToWikiInfobox(const LogicalContent& content) {
  wikitext::Template tmpl;
  tmpl.name = content.caption.empty() ? "Infobox" : content.caption;
  for (const auto& row : content.rows) {
    if (row.size() >= 2) {
      tmpl.params.emplace_back(row[0], row[1]);
    }
  }
  return tmpl;
}

wikitext::List ToWikiList(const LogicalContent& content) {
  wikitext::List list;
  for (const auto& row : content.rows) {
    if (row.empty()) continue;
    wikitext::ListItem item;
    item.markers = "*";
    item.content = row[0];
    list.items.push_back(std::move(item));
  }
  return list;
}

}  // namespace

wikitext::Document BuildWikitextDocument(const LogicalPage& page) {
  wikitext::Document doc;
  for (const LogicalPage::Item& item : page.items) {
    switch (item.kind) {
      case LogicalPage::ItemKind::kHeading:
        doc.elements.push_back(
            wikitext::Heading{item.heading_level, item.text});
        break;
      case LogicalPage::ItemKind::kParagraph:
        doc.elements.push_back(wikitext::Paragraph{item.text});
        break;
      case LogicalPage::ItemKind::kObject: {
        auto it = page.contents.find(item.uid);
        if (it == page.contents.end() || it->second.Empty()) break;
        const LogicalContent& content = it->second;
        switch (content.type) {
          case extract::ObjectType::kTable:
            doc.elements.push_back(ToWikiTable(content));
            break;
          case extract::ObjectType::kInfobox:
            doc.elements.push_back(ToWikiInfobox(content));
            break;
          case extract::ObjectType::kList:
            doc.elements.push_back(ToWikiList(content));
            break;
        }
        break;
      }
    }
  }
  return doc;
}

std::string RenderWikitext(const LogicalPage& page) {
  return wikitext::SerializeDocument(BuildWikitextDocument(page));
}

namespace {

void AppendHtmlText(std::string& out, const std::string& wiki_value) {
  // HTML pages carry plain text; wiki inline markup is resolved first.
  out.append(html::EscapeEntities(wikitext::StripInlineMarkup(wiki_value)));
}

void RenderHtmlTable(std::string& out, const LogicalContent& content,
                     bool infobox) {
  out.append(infobox ? "<table class=\"infobox\">\n" : "<table>\n");
  if (!content.caption.empty()) {
    out.append("<caption>");
    AppendHtmlText(out, content.caption);
    out.append("</caption>\n");
  }
  if (infobox) {
    for (const auto& row : content.rows) {
      if (row.size() < 2) continue;
      out.append("<tr><th>");
      AppendHtmlText(out, row[0]);
      out.append("</th><td>");
      AppendHtmlText(out, row[1]);
      out.append("</td></tr>\n");
    }
  } else {
    if (!content.header.empty()) {
      out.append("<tr>");
      for (const std::string& h : content.header) {
        out.append("<th>");
        AppendHtmlText(out, h);
        out.append("</th>");
      }
      out.append("</tr>\n");
    }
    for (const auto& row : content.rows) {
      out.append("<tr>");
      for (const std::string& value : row) {
        out.append("<td>");
        AppendHtmlText(out, value);
        out.append("</td>");
      }
      out.append("</tr>\n");
    }
  }
  out.append("</table>\n");
}

}  // namespace

std::string RenderHtml(const LogicalPage& page, bool web_chrome) {
  std::string out = "<!DOCTYPE html>\n<html><head><title>";
  out.append(html::EscapeEntities(page.title));
  out.append("</title></head>\n<body>\n");
  if (web_chrome) {
    // Site furniture as found on crawled pages: none of these lists and
    // tables are content objects.
    out.append(
        "<header><nav><ul>"
        "<li><a href=\"/\">Home</a></li>"
        "<li><a href=\"/archive\">Archive</a></li>"
        "<li><a href=\"/about\">About</a></li>"
        "<li><a href=\"/contact\">Contact</a></li>"
        "</ul></nav></header>\n"
        "<aside><ul><li>Recent edits</li><li>Popular pages</li>"
        "<li>Random page</li></ul></aside>\n");
  }
  out.append("<h1>");
  out.append(html::EscapeEntities(page.title));
  out.append("</h1>\n");
  for (const LogicalPage::Item& item : page.items) {
    switch (item.kind) {
      case LogicalPage::ItemKind::kHeading: {
        std::string tag = "h";
        tag += std::to_string(item.heading_level);
        out.append("<").append(tag).append(">");
        AppendHtmlText(out, item.text);
        out.append("</").append(tag).append(">\n");
        break;
      }
      case LogicalPage::ItemKind::kParagraph:
        out.append("<p>");
        AppendHtmlText(out, item.text);
        out.append("</p>\n");
        break;
      case LogicalPage::ItemKind::kObject: {
        auto it = page.contents.find(item.uid);
        if (it == page.contents.end() || it->second.Empty()) break;
        const LogicalContent& content = it->second;
        switch (content.type) {
          case extract::ObjectType::kTable:
            RenderHtmlTable(out, content, /*infobox=*/false);
            break;
          case extract::ObjectType::kInfobox:
            RenderHtmlTable(out, content, /*infobox=*/true);
            break;
          case extract::ObjectType::kList:
            out.append("<ul>\n");
            for (const auto& row : content.rows) {
              if (row.empty()) continue;
              out.append("<li>");
              AppendHtmlText(out, row[0]);
              out.append("</li>\n");
            }
            out.append("</ul>\n");
            break;
        }
        break;
      }
    }
  }
  if (web_chrome) {
    out.append(
        "<footer><table role=\"presentation\"><tr>"
        "<td><a href=\"/terms\">Terms</a></td>"
        "<td><a href=\"/privacy\">Privacy</a></td>"
        "<td>\xC2\xA9 2019</td></tr></table></footer>\n");
  }
  out.append("</body></html>\n");
  return out;
}

}  // namespace somr::wikigen
