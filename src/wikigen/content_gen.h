#pragma once

#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "wikigen/logical_page.h"
#include "wikigen/vocab.h"

namespace somr::wikigen {

/// Page theme, controlling what kind of objects a page accumulates. Award
/// pages deliberately produce many small same-schema tables (the paper's
/// hard case, Example 1); settlement pages mix infoboxes and statistics
/// tables; generic pages mix everything.
enum class PageTheme {
  kAwards,      // many small same-schema award tables (the hard case)
  kSettlement,  // infobox-centric place pages with statistics tables
  kSports,      // league-season pages: standings tables with volatile
                // numeric cells, fixture lists
  kDiscography, // artist pages: release tables per era, singles lists
  kGeneric,     // mixed sampled schemas
};

/// Creates fresh object content of each type.
class ContentGenerator {
 public:
  ContentGenerator(Rng& rng, PageTheme theme)
      : rng_(rng), vocab_(rng), theme_(theme) {}

  /// A new table. On award pages tables share the schema
  /// {Year, Category, Work, Result} and draw categories from a small
  /// shared pool; elsewhere schemas are sampled per table.
  LogicalContent NewTable();

  /// A new infobox with 4-10 properties.
  LogicalContent NewInfobox();

  /// A new list with 3-12 items (sentences or link items).
  LogicalContent NewList();

  LogicalContent NewOfType(extract::ObjectType type);

  /// A fresh data row consistent with the table's header.
  std::vector<std::string> NewTableRow(const LogicalContent& table);

  /// A new list item.
  std::string NewListItem();

  /// A new (key, value) infobox property not already present.
  std::vector<std::string> NewInfoboxProperty(const LogicalContent& infobox);

  /// A value for table column `col` (consistent with the header).
  std::string CellValue(const LogicalContent& table, size_t col);

  Vocab& vocab() { return vocab_; }
  PageTheme theme() const { return theme_; }

 private:
  /// A team name not used elsewhere on this page: real league pages have
  /// disjoint team sets per group.
  std::string UniqueTeamName();

  Rng& rng_;
  Vocab vocab_;
  PageTheme theme_;
  std::unordered_set<std::string> used_team_names_;
};

}  // namespace somr::wikigen
