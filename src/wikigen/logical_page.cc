#include "wikigen/logical_page.h"

#include <algorithm>

namespace somr::wikigen {

int LogicalPage::FindObjectItem(int64_t uid) const {
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].kind == ItemKind::kObject && items[i].uid == uid) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int64_t> LogicalPage::PresentUids(
    extract::ObjectType type) const {
  std::vector<int64_t> uids;
  for (const Item& item : items) {
    if (item.kind != ItemKind::kObject) continue;
    auto it = contents.find(item.uid);
    if (it == contents.end()) continue;
    if (it->second.type == type) uids.push_back(item.uid);
  }
  return uids;
}

std::vector<int64_t> LogicalPage::AllPresentUids() const {
  std::vector<int64_t> uids;
  for (const Item& item : items) {
    if (item.kind == ItemKind::kObject && contents.count(item.uid) > 0) {
      uids.push_back(item.uid);
    }
  }
  return uids;
}

LogicalContent LogicalPage::RemoveObject(int64_t uid) {
  int index = FindObjectItem(uid);
  if (index >= 0) items.erase(items.begin() + index);
  auto it = contents.find(uid);
  if (it == contents.end()) return {};
  LogicalContent content = std::move(it->second);
  contents.erase(it);
  return content;
}

void LogicalPage::InsertObject(int64_t uid, LogicalContent content,
                               size_t item_index) {
  item_index = std::min(item_index, items.size());
  Item item;
  item.kind = ItemKind::kObject;
  item.uid = uid;
  items.insert(items.begin() + static_cast<long>(item_index),
               std::move(item));
  contents[uid] = std::move(content);
}

}  // namespace somr::wikigen
