#pragma once

#include <deque>
#include <vector>

#include "matching/interface.h"
#include "sim/similarity.h"
#include "text/bag_of_words.h"

namespace somr::baselines {

/// The paper's schema baseline (Sec. V-B): infoboxes and tables are
/// matched on their schema (header cells / property keys) with a single
/// sim_strict threshold, combined with the position and lifetime
/// tie-breakers. Lists have no schema, so the baseline does not apply to
/// them — constructing one for lists is an error the harness avoids.
class SchemaBaseline : public matching::RevisionMatcher {
 public:
  struct Config {
    double threshold = 0.5;
    bool use_position_tiebreak = true;
  };

  explicit SchemaBaseline(extract::ObjectType type)
      : SchemaBaseline(type, Config()) {}
  SchemaBaseline(extract::ObjectType type, Config config);

  void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) override;

  const matching::IdentityGraph& graph() const override { return graph_; }

 private:
  struct Tracked {
    int64_t id = 0;
    BagOfWords schema_bag;
    int last_position = 0;
    int first_revision = 0;
  };

  Config config_;
  matching::IdentityGraph graph_;
  std::vector<Tracked> tracked_;
};

}  // namespace somr::baselines
