#include "baselines/korn_matcher.h"

#include "baselines/subject_column.h"
#include "matching/hungarian.h"

namespace somr::baselines {

namespace {

std::unordered_set<std::string> SubjectEntities(
    const extract::ObjectInstance& table) {
  std::unordered_set<std::string> entities;
  int col = DetectSubjectColumn(table);
  if (col < 0) return entities;
  for (std::string& value : ColumnValues(table, col)) {
    if (!value.empty()) entities.insert(std::move(value));
  }
  return entities;
}

double SetJaccard(const std::unordered_set<std::string>& a,
                  const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const std::string& v : small) {
    if (large.count(v) > 0) ++inter;
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) /
                              static_cast<double>(uni);
}

}  // namespace

KornMatcher::KornMatcher(Config config)
    : config_(config), graph_(extract::ObjectType::kTable) {}

void KornMatcher::ProcessRevision(
    int revision_index,
    const std::vector<extract::ObjectInstance>& instances) {
  std::vector<std::unordered_set<std::string>> incoming;
  incoming.reserve(instances.size());
  for (const extract::ObjectInstance& obj : instances) {
    incoming.push_back(SubjectEntities(obj));
  }

  std::vector<matching::WeightedEdge> edges;
  for (size_t ti = 0; ti < tracked_.size(); ++ti) {
    for (size_t ni = 0; ni < instances.size(); ++ni) {
      double s = SetJaccard(tracked_[ti].subject_entities, incoming[ni]);
      if (s < config_.jaccard_threshold) continue;
      edges.push_back({static_cast<int>(ti), static_cast<int>(ni), s});
    }
  }

  std::vector<int64_t> assignment(instances.size(), -1);
  for (auto [ti, ni] :
       matching::MaxWeightMatching(tracked_.size(), instances.size(),
                                   edges)) {
    assignment[static_cast<size_t>(ni)] = tracked_[static_cast<size_t>(ti)].id;
  }

  for (size_t ni = 0; ni < instances.size(); ++ni) {
    matching::VersionRef ref{revision_index, instances[ni].position};
    int64_t object_id = assignment[ni];
    if (object_id < 0) {
      object_id = graph_.AddObject(ref);
      tracked_.push_back({object_id, {}});
    } else {
      graph_.AppendVersion(object_id, ref);
    }
    tracked_[static_cast<size_t>(object_id)].subject_entities =
        std::move(incoming[ni]);
  }
}

}  // namespace somr::baselines
