#include "baselines/subject_column.h"

#include <unordered_set>

#include "common/string_util.h"

namespace somr::baselines {

namespace {

/// Index of the first data row: row 0 is skipped when it served as the
/// schema row.
size_t FirstDataRow(const extract::ObjectInstance& table) {
  return table.schema.empty() ? 0 : 1;
}

}  // namespace

std::vector<std::string> ColumnValues(const extract::ObjectInstance& table,
                                      int col) {
  std::vector<std::string> values;
  for (size_t r = FirstDataRow(table); r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (static_cast<size_t>(col) < row.size()) {
      values.push_back(row[static_cast<size_t>(col)]);
    }
  }
  return values;
}

int DetectSubjectColumn(const extract::ObjectInstance& table) {
  size_t cols = table.ColumnCount();
  size_t first_data = FirstDataRow(table);
  if (cols == 0 || table.rows.size() <= first_data) return -1;

  double best_score = -1.0;
  int best_col = -1;
  for (size_t c = 0; c < cols; ++c) {
    std::unordered_set<std::string> distinct;
    size_t non_numeric = 0;
    size_t non_empty = 0;
    size_t total = 0;
    for (size_t r = first_data; r < table.rows.size(); ++r) {
      const auto& row = table.rows[r];
      if (c >= row.size()) continue;
      ++total;
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      ++non_empty;
      distinct.insert(cell);
      if (!LooksNumeric(cell)) ++non_numeric;
    }
    if (total == 0) continue;
    double uniqueness =
        non_empty == 0 ? 0.0
                       : static_cast<double>(distinct.size()) /
                             static_cast<double>(non_empty);
    double textness = static_cast<double>(non_numeric) /
                      static_cast<double>(total);
    double fillness = static_cast<double>(non_empty) /
                      static_cast<double>(total);
    double leftness =
        1.0 - static_cast<double>(c) / static_cast<double>(cols);
    double score =
        2.0 * uniqueness + 1.5 * textness + 0.5 * fillness + 0.4 * leftness;
    if (score > best_score) {
      best_score = score;
      best_col = static_cast<int>(c);
    }
  }
  return best_col;
}

}  // namespace somr::baselines
