#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "matching/interface.h"

namespace somr::baselines {

/// Reimplementation of the table-matching step of Korn et al. [9]
/// (fact extraction over Wikipedia table histories): each table is keyed
/// by the entity set of its subject column (detected TableMiner+-style);
/// tables across revisions are matched when their subject-entity sets
/// overlap sufficiently (set Jaccard), via maximum-weight matching.
/// Applies to tables only — the harness never instantiates it for
/// infoboxes or lists (Sec. V-B).
class KornMatcher : public matching::RevisionMatcher {
 public:
  struct Config {
    double jaccard_threshold = 0.5;
  };

  KornMatcher() : KornMatcher(Config()) {}
  explicit KornMatcher(Config config);

  void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) override;

  const matching::IdentityGraph& graph() const override { return graph_; }

 private:
  struct Tracked {
    int64_t id = 0;
    std::unordered_set<std::string> subject_entities;
  };

  Config config_;
  matching::IdentityGraph graph_;
  std::vector<Tracked> tracked_;
};

}  // namespace somr::baselines
