#include "baselines/schema_baseline.h"

#include <cmath>
#include <cstdlib>

#include "extract/features.h"
#include "matching/hungarian.h"

namespace somr::baselines {

namespace {
// Same tie-break precedence as the main matcher: lifetime over position.
constexpr double kLifetimeEps = 1e-6;
constexpr double kPosEps = 1e-8;
}  // namespace

SchemaBaseline::SchemaBaseline(extract::ObjectType type, Config config)
    : config_(config), graph_(type) {}

void SchemaBaseline::ProcessRevision(
    int revision_index,
    const std::vector<extract::ObjectInstance>& instances) {
  std::vector<BagOfWords> incoming;
  incoming.reserve(instances.size());
  for (const extract::ObjectInstance& obj : instances) {
    incoming.push_back(extract::BuildSchemaBag(obj));
  }

  std::vector<matching::WeightedEdge> edges;
  for (size_t ti = 0; ti < tracked_.size(); ++ti) {
    for (size_t ni = 0; ni < instances.size(); ++ni) {
      double s = sim::Ruzicka(tracked_[ti].schema_bag, incoming[ni]);
      if (s < config_.threshold) continue;
      double weight = s;
      if (config_.use_position_tiebreak) {
        double diff = std::abs(tracked_[ti].last_position -
                               instances[ni].position);
        weight -= kPosEps * (diff / (diff + 8.0));
      }
      double lifetime =
          static_cast<double>(revision_index - tracked_[ti].first_revision);
      weight += kLifetimeEps * (lifetime / (lifetime + 64.0));
      edges.push_back({static_cast<int>(ti), static_cast<int>(ni), weight});
    }
  }

  std::vector<int64_t> assignment(instances.size(), -1);
  for (auto [ti, ni] :
       matching::MaxWeightMatching(tracked_.size(), instances.size(),
                                   edges)) {
    assignment[static_cast<size_t>(ni)] = tracked_[static_cast<size_t>(ti)].id;
  }

  for (size_t ni = 0; ni < instances.size(); ++ni) {
    matching::VersionRef ref{revision_index, instances[ni].position};
    int64_t object_id = assignment[ni];
    if (object_id < 0) {
      object_id = graph_.AddObject(ref);
      Tracked tracked;
      tracked.id = object_id;
      tracked.first_revision = revision_index;
      tracked_.push_back(std::move(tracked));
    } else {
      graph_.AppendVersion(object_id, ref);
    }
    Tracked& t = tracked_[static_cast<size_t>(object_id)];
    t.schema_bag = incoming[ni];
    t.last_position = instances[ni].position;
  }
}

}  // namespace somr::baselines
