#pragma once

#include <string>
#include <vector>

#include "extract/object.h"

namespace somr::baselines {

/// Detects a table's subject column — the column naming the entities the
/// rows describe — in the style of TableMiner+ [8], which Korn et al. [9]
/// require as a preprocessing step. We score each column by:
///   - uniqueness: fraction of distinct values among data rows,
///   - text-ness: fraction of non-numeric, non-empty cells,
///   - leftness: columns further left are preferred,
/// and return the argmax. Returns -1 for tables without data rows.
int DetectSubjectColumn(const extract::ObjectInstance& table);

/// The values of column `col` across the table's data rows (rows after
/// the schema/header row when one exists).
std::vector<std::string> ColumnValues(const extract::ObjectInstance& table,
                                      int col);

}  // namespace somr::baselines
