#include "baselines/position_baseline.h"

namespace somr::baselines {

void PositionBaseline::ProcessRevision(
    int revision_index,
    const std::vector<extract::ObjectInstance>& instances) {
  std::vector<int64_t> current_by_position(instances.size(), -1);
  for (const extract::ObjectInstance& obj : instances) {
    matching::VersionRef ref{revision_index, obj.position};
    size_t pos = static_cast<size_t>(obj.position);
    int64_t object_id = -1;
    if (pos < previous_by_position_.size()) {
      object_id = previous_by_position_[pos];
    }
    if (object_id >= 0) {
      graph_.AppendVersion(object_id, ref);
    } else {
      object_id = graph_.AddObject(ref);
    }
    current_by_position[pos] = object_id;
  }
  previous_by_position_ = std::move(current_by_position);
}

}  // namespace somr::baselines
