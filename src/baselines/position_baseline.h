#pragma once

#include <unordered_map>
#include <vector>

#include "matching/interface.h"

namespace somr::baselines {

/// The paper's position baseline (Sec. V-B): an object instance in the
/// new page version is matched to the previously identified object that
/// occupied the same position rank in the immediately preceding version.
/// No content is inspected; objects that move or whose predecessors were
/// deleted are matched incorrectly or treated as new.
class PositionBaseline : public matching::RevisionMatcher {
 public:
  explicit PositionBaseline(extract::ObjectType type) : graph_(type) {}

  void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) override;

  const matching::IdentityGraph& graph() const override { return graph_; }

 private:
  matching::IdentityGraph graph_;
  // Object id at each position rank in the previous revision.
  std::vector<int64_t> previous_by_position_;
};

}  // namespace somr::baselines
