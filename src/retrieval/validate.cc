#include "retrieval/validate.h"

namespace somr::retrieval {

void ValidateCandidateIndex(
    const CandidateIndex& index,
    const std::vector<const std::deque<FlatBag>*>& windows,
    ValidationReport* report) {
  index.Validate(windows, report);
}

}  // namespace somr::retrieval
