#include "retrieval/shape.h"

#include <cstddef>

namespace somr::retrieval {
namespace {

/// Logarithmic size bucket: 0, then one bucket per bit width, so only
/// roughly-doubling growth changes the signature.
uint64_t Bucket(size_t n) {
  uint64_t bits = 0;
  while (n > 0) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

uint64_t Mix(uint64_t hash, uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ull;  // FNV-1a prime
}

}  // namespace

uint64_t ShapeSignature(const extract::ObjectInstance& instance) {
  size_t widest = 0;
  for (const auto& row : instance.rows) {
    if (row.size() > widest) widest = row.size();
  }
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  hash = Mix(hash, static_cast<uint64_t>(instance.type));
  hash = Mix(hash, Bucket(instance.rows.size()));
  hash = Mix(hash, Bucket(widest));
  hash = Mix(hash, Bucket(instance.schema.size()));
  return hash;
}

}  // namespace somr::retrieval
