#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/similarity.h"
#include "text/flat_bag.h"

namespace somr {
class ValidationReport;
}

namespace somr::retrieval {

/// Cumulative retrieval work counters. Monotone over the index lifetime;
/// the matcher publishes per-step deltas to the obs metrics registry.
struct RetrievalStats {
  uint64_t queries = 0;
  uint64_t postings_scanned = 0;   // postings visited by list walks
  uint64_t wand_skips = 0;         // postings skipped by early termination
  uint64_t candidates_pruned = 0;  // candidates rejected by the theta bound
  uint64_t compactions = 0;        // stale-posting garbage collections
};

/// One retrieval candidate: a tracked object sharing at least one query
/// token with at least one live window version. `overlap_bound` is an
/// upper bound on the weighted overlap
///   sum_t w_t * min(count_query(t), count_version(t))
/// against EVERY live window version of the object; when the walk
/// early-terminated, RetrievalResult::slack must be added before the
/// bound is compared against anything.
struct Candidate {
  uint32_t object = 0;
  double overlap_bound = 0.0;
};

struct RetrievalResult {
  std::vector<Candidate> candidates;  // ascending by object id
  /// Weighted query mass of the terms the walk never visited (0 unless
  /// WAND early termination fired). Untouched objects can still overlap
  /// the query by up to this much, and touched candidates' bounds are
  /// low by up to this much.
  double slack = 0.0;
};

/// Incremental inverted index over interned token ids, maintained
/// alongside the matcher's rear-view FlatBag windows (DESIGN.md §12).
///
/// One posting list per token id; a posting records (object, per-object
/// append sequence number, count). Postings are appended when a window
/// version is added and invalidated lazily: a posting is live iff its
/// append_seq is within the newest `window` appends of its object, so
/// window eviction is O(1) bookkeeping and list walks skip stale entries
/// by comparing two integers. Compaction rewrites the lists once stale
/// entries dominate; because queries consult live postings only, when it
/// runs is unobservable in retrieval results — an index rebuilt from the
/// windows alone (snapshot restore) retrieves identically to one that
/// was maintained incrementally.
///
/// Query-time scoring is a document-at-a-time accumulation with
/// WAND-style early termination: query terms are walked in descending
/// order of their score caps w_t * count_query(t), and once the mass of
/// the unvisited terms can no longer lift any object to the strict
/// threshold, the remaining (typically long, low-weight) lists are
/// skipped wholesale. Caps depend only on the query and the weights —
/// never on index state — so early termination is deterministic too.
class CandidateIndex {
 public:
  /// `window` is the matcher's rear-view window (>= 1): the number of
  /// most recent appends per object that are live.
  explicit CandidateIndex(size_t window);

  /// Registers `bag` as the newest window version of `object`. Object
  /// ids may arrive in any order; the id space is grown as needed. The
  /// oldest version falls out of the live range automatically once more
  /// than `window` bags have been appended.
  void AppendBag(uint32_t object, const FlatBag& bag);

  /// Bookkeeping for one evicted window version (the bag popped from the
  /// matcher's deque): feeds the compaction trigger only.
  void NoteEviction(const FlatBag& evicted);

  /// All objects sharing >= 1 token with `query`, each with its weighted
  /// overlap upper bound. `theta` is the lowest similarity threshold the
  /// caller still cares about; with `allow_early_exit` the strict-kind
  /// cap sim <= overlap / total_b justifies skipping tail terms (callers
  /// scoring relaxed containment from the same result must pass false —
  /// containment has no query-side cap). `query_weighted_total` must be
  /// WeightedTotal(query, weights).
  void RetrieveOverlaps(const FlatBag& query,
                        const sim::DenseTokenWeights& weights,
                        double query_weighted_total, double theta,
                        bool allow_early_exit, RetrievalResult* out);

  /// Objects whose newest-or-older live window versions include an empty
  /// bag (empty vs empty scores similarity 1, so an empty query must
  /// consider them). Ascending, deduplicated.
  void ValidEmptyObjects(std::vector<uint32_t>* out) const;

  size_t window() const { return window_; }
  size_t object_count() const { return append_count_.size(); }

  const RetrievalStats& stats() const { return stats_; }
  RetrievalStats* mutable_stats() { return &stats_; }

  /// Cross-checks every live posting against the actual window contents
  /// (`windows[object]` = the matcher's recent_flat deque, oldest first).
  /// Appends one issue per inconsistency. See ValidateCandidateIndex.
  void Validate(const std::vector<const std::deque<FlatBag>*>& windows,
                ValidationReport* report) const;

 private:
  struct Posting {
    uint32_t object = 0;
    uint32_t append_seq = 0;  // 1-based value of append_count_ at append
    double count = 0.0;
  };

  bool Live(const Posting& p) const {
    return p.append_seq + window_ > append_count_[p.object];
  }

  void EnsureScratch(size_t object_count);
  void MaybeCompact();

  size_t window_;
  std::vector<std::vector<Posting>> lists_;  // by token id
  std::vector<Posting> empty_postings_;      // appended empty bags
  std::vector<uint32_t> append_count_;       // per object
  uint64_t total_postings_ = 0;              // live + stale across lists
  uint64_t dead_postings_ = 0;               // known-stale (evictions)

  // Query scratch, stamped so clears are O(touched), never O(objects).
  std::vector<double> acc_;          // per object: accumulated bound
  std::vector<uint64_t> acc_mark_;   // stamp: acc_ valid this query
  std::vector<double> term_best_;    // per object: max live count, 1 term
  std::vector<uint64_t> term_mark_;  // stamp: term_best_ valid this term
  std::vector<uint32_t> touched_;    // objects with acc_ set this query
  std::vector<uint32_t> term_touched_;
  uint64_t query_serial_ = 0;
  uint64_t term_serial_ = 0;

  struct TermRef {
    uint32_t id = 0;
    double cap = 0.0;  // weight * query count: max per-object contribution
    double count = 0.0;
    double weight = 0.0;
  };
  std::vector<TermRef> terms_;  // per-query scratch

  RetrievalStats stats_;
};

}  // namespace somr::retrieval
