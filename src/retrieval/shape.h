#pragma once

#include <cstdint>

#include "extract/object.h"

namespace somr::retrieval {

/// Structural-skeleton signature of an object instance, in the spirit of
/// SFTM's tree-shape pre-filter: a hash of the object type and coarse
/// (logarithmic) size buckets of the row count, widest row, and schema
/// size. Instances whose shapes differ structurally (a table vs a list,
/// a 3-row box vs a 300-row table) hash differently and can be skipped
/// before any bag-of-words scoring; instances that merely edit cell text
/// keep their signature.
///
/// This is an approximate filter — a legitimate match can change shape
/// across revisions and be filtered — which is why it sits behind
/// MatcherConfig::enable_shape_prefilter (default off) and participates
/// in the snapshot config fingerprint.
uint64_t ShapeSignature(const extract::ObjectInstance& instance);

}  // namespace somr::retrieval
