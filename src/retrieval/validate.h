#pragma once

#include <deque>
#include <vector>

#include "common/check.h"
#include "retrieval/candidate_index.h"
#include "text/flat_bag.h"

namespace somr::retrieval {

/// Cross-checks the inverted index against the matcher's rear-view
/// windows (`windows[object]` = that object's recent FlatBags, oldest
/// first): every live posting maps to a distinct window entry with the
/// same count, empty-bag postings map to empty bags, and the live
/// posting total equals the window entry total, so neither side holds
/// anything the other lacks. Run at step boundaries in debug builds and
/// by `somr_process --validate`.
void ValidateCandidateIndex(
    const CandidateIndex& index,
    const std::vector<const std::deque<FlatBag>*>& windows,
    ValidationReport* report);

SOMR_REGISTER_VALIDATOR(retrieval_index, "retrieval_index",
                        "inverted-index postings agree with the rear-view "
                        "FlatBag windows (live set, counts, totals)");

}  // namespace somr::retrieval
