#include "retrieval/candidate_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace somr::retrieval {
namespace {

/// Compaction triggers once stale postings outnumber live ones AND the
/// absolute waste is worth a rewrite; the floor keeps tiny indexes from
/// compacting constantly.
constexpr uint64_t kCompactionFloor = 1024;

/// Slop on the early-termination threshold so borderline floating-point
/// comparisons always err on the side of keeping a term. Matches the
/// bound slack the matcher applies when filtering candidates.
constexpr double kThetaSlack = 1e-9;

}  // namespace

CandidateIndex::CandidateIndex(size_t window)
    : window_(window == 0 ? 1 : window) {}

void CandidateIndex::AppendBag(uint32_t object, const FlatBag& bag) {
  if (object >= append_count_.size()) {
    append_count_.resize(object + 1, 0);
  }
  const uint32_t seq = ++append_count_[object];
  if (bag.empty()) {
    empty_postings_.push_back({object, seq, 0.0});
    ++total_postings_;
  } else {
    const std::vector<FlatEntry>& entries = bag.entries();
    const uint32_t max_id = entries.back().id;
    if (lists_.size() <= max_id) lists_.resize(max_id + 1);
    for (const FlatEntry& e : entries) {
      lists_[e.id].push_back({object, seq, e.count});
    }
    total_postings_ += entries.size();
  }
  MaybeCompact();
}

void CandidateIndex::NoteEviction(const FlatBag& evicted) {
  dead_postings_ += evicted.empty() ? 1 : evicted.DistinctCount();
}

void CandidateIndex::MaybeCompact() {
  if (dead_postings_ < kCompactionFloor ||
      dead_postings_ * 2 <= total_postings_) {
    return;
  }
  uint64_t live = 0;
  auto stale = [this](const Posting& p) { return !Live(p); };
  for (std::vector<Posting>& list : lists_) {
    list.erase(std::remove_if(list.begin(), list.end(), stale), list.end());
    live += list.size();
  }
  empty_postings_.erase(std::remove_if(empty_postings_.begin(),
                                       empty_postings_.end(), stale),
                        empty_postings_.end());
  live += empty_postings_.size();
  total_postings_ = live;
  dead_postings_ = 0;
  ++stats_.compactions;
}

void CandidateIndex::EnsureScratch(size_t object_count) {
  if (acc_.size() < object_count) {
    acc_.resize(object_count, 0.0);
    acc_mark_.resize(object_count, 0);
    term_best_.resize(object_count, 0.0);
    term_mark_.resize(object_count, 0);
  }
}

void CandidateIndex::RetrieveOverlaps(const FlatBag& query,
                                      const sim::DenseTokenWeights& weights,
                                      double query_weighted_total,
                                      double theta, bool allow_early_exit,
                                      RetrievalResult* out) {
  out->candidates.clear();
  out->slack = 0.0;
  ++stats_.queries;
  if (append_count_.empty() || query.empty()) return;
  EnsureScratch(append_count_.size());
  ++query_serial_;
  touched_.clear();

  // Collect the query terms that have a posting list, with their score
  // caps w_t * count_query(t): no live window version can contribute
  // more than its term cap to any overlap.
  terms_.clear();
  for (const FlatEntry& e : query.entries()) {
    if (e.id >= lists_.size() || lists_[e.id].empty()) continue;
    const double w = weights.Weight(e.id);
    terms_.push_back({e.id, w * e.count, e.count, w});
  }
  if (terms_.empty()) return;

  // Remaining mass starts as the total cap of the indexed terms, summed
  // in ascending id order (entry order) for determinism.
  double remaining = 0.0;
  for (const TermRef& t : terms_) remaining += t.cap;

  // WAND pivot order: highest-cap terms first so the remaining mass
  // decays as fast as possible. Ties broken by id for determinism.
  std::sort(terms_.begin(), terms_.end(),
            [](const TermRef& a, const TermRef& b) {
              if (a.cap != b.cap) return a.cap > b.cap;
              return a.id < b.id;
            });

  // sim_strict(q, v) <= overlap / total_q: once the unvisited terms'
  // mass cannot reach theta * total_q, no object touched only by tail
  // terms can clear theta, and every touched object's bound is completed
  // by adding the remaining mass as slack.
  const double exit_below =
      allow_early_exit ? (theta - kThetaSlack) * query_weighted_total : -1.0;

  size_t walked = 0;
  for (const TermRef& t : terms_) {
    if (allow_early_exit && walked > 0 && remaining < exit_below) break;
    ++walked;
    const std::vector<Posting>& list = lists_[t.id];
    stats_.postings_scanned += list.size();
    // Two phases per term: first the max live count per object (window
    // versions of one object shadow each other under min()), then one
    // accumulation per touched object. This makes each object's sum
    // independent of how its postings interleave with other objects',
    // so a rebuilt index accumulates bit-identically.
    ++term_serial_;
    term_touched_.clear();
    for (const Posting& p : list) {
      if (!Live(p)) continue;
      if (term_mark_[p.object] != term_serial_) {
        term_mark_[p.object] = term_serial_;
        term_best_[p.object] = p.count;
        term_touched_.push_back(p.object);
      } else if (p.count > term_best_[p.object]) {
        term_best_[p.object] = p.count;
      }
    }
    for (const uint32_t object : term_touched_) {
      const double best = term_best_[object];
      const double contribution =
          t.weight * (t.count < best ? t.count : best);
      if (acc_mark_[object] != query_serial_) {
        acc_mark_[object] = query_serial_;
        acc_[object] = contribution;
        touched_.push_back(object);
      } else {
        acc_[object] += contribution;
      }
    }
    remaining -= t.cap;
  }
  if (walked < terms_.size()) {
    for (size_t i = walked; i < terms_.size(); ++i) {
      stats_.wand_skips += lists_[terms_[i].id].size();
    }
    out->slack = remaining;
  }

  out->candidates.reserve(touched_.size());
  for (const uint32_t object : touched_) {
    out->candidates.push_back({object, acc_[object]});
  }
  std::sort(out->candidates.begin(), out->candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.object < b.object;
            });
}

void CandidateIndex::ValidEmptyObjects(std::vector<uint32_t>* out) const {
  out->clear();
  for (const Posting& p : empty_postings_) {
    if (Live(p)) out->push_back(p.object);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void CandidateIndex::Validate(
    const std::vector<const std::deque<FlatBag>*>& windows,
    ValidationReport* report) const {
  if (windows.size() != append_count_.size()) {
    report->AddIssue("retrieval_index")
        << "tracks " << append_count_.size() << " objects, matcher has "
        << windows.size();
    return;
  }
  uint64_t window_entries = 0;
  for (size_t object = 0; object < windows.size(); ++object) {
    const std::deque<FlatBag>& window = *windows[object];
    if (window.size() > window_) {
      report->AddIssue("retrieval_index")
          << "object " << object << " window holds " << window.size()
          << " bags, index window is " << window_;
    }
    if (append_count_[object] < window.size()) {
      report->AddIssue("retrieval_index")
          << "object " << object << " append_count "
          << append_count_[object] << " below window size " << window.size();
    }
    for (const FlatBag& bag : window) {
      window_entries += bag.empty() ? 1 : bag.DistinctCount();
    }
  }

  // Every live posting must point at an existing window bag with the
  // same count for its token; (object, seq) must be unique per list.
  uint64_t live_postings = 0;
  std::unordered_set<uint64_t> seen;
  auto check_live = [&](uint32_t token, const Posting& p, bool empty_list) {
    const std::deque<FlatBag>& window = *windows[p.object];
    const uint64_t back = append_count_[p.object] - p.append_seq;
    if (back >= window.size()) {
      report->AddIssue("retrieval_index")
          << "live posting for object " << p.object << " seq "
          << p.append_seq << " has no window bag";
      return;
    }
    ++live_postings;
    const uint64_t key =
        (static_cast<uint64_t>(p.object) << 32) | p.append_seq;
    if (!seen.insert(key).second) {
      report->AddIssue("retrieval_index")
          << "duplicate posting for object " << p.object << " seq "
          << p.append_seq << " in list " << token;
    }
    const FlatBag& bag = window[window.size() - 1 - back];
    if (empty_list) {
      if (!bag.empty()) {
        report->AddIssue("retrieval_index")
            << "empty posting for object " << p.object
            << " maps to a non-empty bag";
      }
    } else if (bag.Count(token) != p.count) {
      report->AddIssue("retrieval_index")
          << "posting count mismatch for object " << p.object << " token "
          << token;
    }
  };
  for (uint32_t token = 0; token < lists_.size(); ++token) {
    seen.clear();
    for (const Posting& p : lists_[token]) {
      if (Live(p)) check_live(token, p, /*empty_list=*/false);
    }
  }
  seen.clear();
  for (const Posting& p : empty_postings_) {
    if (Live(p)) check_live(0, p, /*empty_list=*/true);
  }

  // Counting both directions: the per-posting checks above prove every
  // live posting maps to a distinct window entry; equal totals then
  // prove every window entry has its posting.
  if (live_postings != window_entries) {
    report->AddIssue("retrieval_index")
        << live_postings << " live postings vs " << window_entries
        << " window entries";
  }
}

}  // namespace somr::retrieval
