#include "matching/matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "common/timer.h"
#include "matching/hungarian.h"

namespace somr::matching {

namespace {

// Tie-break epsilons (Sec. IV-A3, Alg. 1: matching(G, ↓LT, ↓POS)):
// lifetime dominates position. For a duplicated instance both candidate
// edges share the same object, so lifetime ties and position decides; for
// a deleted duplicate the longer-lived object wins. Both epsilons are far
// below any similarity resolution that matters (sims live in [0,1],
// thresholds >= 0.4).
constexpr double kLifetimeEps = 1e-6;
constexpr double kPosEps = 1e-8;

/// Cache key for pairwise similarities within one matching step.
struct PairKey {
  size_t tracked;
  size_t incoming;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  size_t operator()(const PairKey& key) const {
    return key.tracked * 1000003u + key.incoming;
  }
};

}  // namespace

TemporalMatcher::TemporalMatcher(extract::ObjectType type,
                                 MatcherConfig config)
    : type_(type), config_(config), graph_(type) {}

double TemporalMatcher::DecayedSim(sim::SimilarityKind kind,
                                   const Tracked& tracked,
                                   const BagOfWords& candidate,
                                   const sim::TokenWeighting& weighting) {
  stats_.similarities_computed +=
      std::min<size_t>(tracked.recent_bags.size(),
                       static_cast<size_t>(config_.rear_view_window));
  double best = 0.0;
  double decay = 1.0;
  int considered = 0;
  for (auto it = tracked.recent_bags.rbegin();
       it != tracked.recent_bags.rend() &&
       considered < config_.rear_view_window;
       ++it, ++considered) {
    double s = decay * sim::Similarity(kind, *it, candidate, weighting);
    best = std::max(best, s);
    decay *= config_.decay;
  }
  return best;
}

double TemporalMatcher::TieBreakBonus(const Tracked& tracked,
                                      int new_position,
                                      int revision_index) const {
  double bonus = 0.0;
  if (config_.use_spatial_features) {
    double pos_diff = std::abs(tracked.last_position - new_position);
    bonus -= kPosEps * (pos_diff / (pos_diff + 8.0));
  }
  if (config_.enable_lifetime_tiebreak) {
    double lifetime =
        static_cast<double>(revision_index - tracked.first_revision);
    bonus += kLifetimeEps * (lifetime / (lifetime + 64.0));
  }
  return bonus;
}

void TemporalMatcher::ProcessRevision(
    int revision_index, const std::vector<extract::ObjectInstance>& instances) {
  Timer timer;

  // Build bags for the incoming instances.
  std::vector<BagOfWords> incoming_bags;
  incoming_bags.reserve(instances.size());
  for (const extract::ObjectInstance& obj : instances) {
    incoming_bags.push_back(extract::BuildBagOfWords(obj, config_.features));
  }

  // Token weighting for this step (Sec. IV-B2).
  sim::TokenWeighting weighting;
  if (config_.use_idf_weighting) {
    std::vector<const BagOfWords*> prev_bags;
    prev_bags.reserve(tracked_.size());
    for (const Tracked& t : tracked_) {
      if (!t.recent_bags.empty()) prev_bags.push_back(&t.recent_bags.back());
    }
    std::vector<const BagOfWords*> new_bags;
    new_bags.reserve(incoming_bags.size());
    for (const BagOfWords& bag : incoming_bags) new_bags.push_back(&bag);
    weighting =
        sim::TokenWeighting::InverseObjectFrequency(prev_bags, new_bags);
  }

  std::vector<bool> tracked_matched(tracked_.size(), false);
  std::vector<bool> incoming_matched(instances.size(), false);
  std::vector<int64_t> assignment(instances.size(), -1);

  // Similarity caches shared across stages: stage 2 reuses stage-1 strict
  // similarities (Sec. IV-B4).
  std::unordered_map<PairKey, double, PairKeyHash> strict_cache;
  std::unordered_map<PairKey, double, PairKeyHash> relaxed_cache;

  auto cached_sim = [&](sim::SimilarityKind kind, size_t ti, size_t ni) {
    auto& cache = kind == sim::SimilarityKind::kStrict ? strict_cache
                                                       : relaxed_cache;
    PairKey key{ti, ni};
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    double s = DecayedSim(kind, tracked_[ti], incoming_bags[ni], weighting);
    cache.emplace(key, s);
    return s;
  };

  struct Stage {
    bool local_only;
    sim::SimilarityKind kind;
    double threshold;
    size_t* match_counter;
  };
  std::vector<Stage> stages;
  if (config_.enable_stage1 && config_.use_spatial_features) {
    stages.push_back({true, sim::SimilarityKind::kStrict, config_.theta1,
                      &stats_.stage1_matches});
  }
  if (config_.enable_stage2) {
    stages.push_back({false, sim::SimilarityKind::kStrict, config_.theta2,
                      &stats_.stage2_matches});
  }
  if (config_.enable_stage3) {
    stages.push_back({false, sim::SimilarityKind::kRelaxed, config_.theta3,
                      &stats_.stage3_matches});
  }

  for (const Stage& stage : stages) {
    std::vector<WeightedEdge> edges;
    for (size_t ti = 0; ti < tracked_.size(); ++ti) {
      if (tracked_matched[ti]) continue;
      for (size_t ni = 0; ni < instances.size(); ++ni) {
        if (incoming_matched[ni]) continue;
        if (stage.local_only) {
          int diff = std::abs(tracked_[ti].last_position -
                              instances[ni].position);
          if (diff > config_.theta_pos) continue;
        }
        double s = cached_sim(stage.kind, ti, ni);
        if (s < stage.threshold) continue;
        double weight = s + TieBreakBonus(tracked_[ti],
                                          instances[ni].position,
                                          revision_index);
        edges.push_back({static_cast<int>(ti), static_cast<int>(ni),
                         weight});
      }
    }
    if (edges.empty()) continue;
    for (auto [ti, ni] :
         MaxWeightMatching(tracked_.size(), instances.size(), edges)) {
      Tracked& tracked = tracked_[static_cast<size_t>(ti)];
      tracked_matched[static_cast<size_t>(ti)] = true;
      incoming_matched[static_cast<size_t>(ni)] = true;
      assignment[static_cast<size_t>(ni)] = tracked.id;
      ++*stage.match_counter;
    }
  }

  // Apply the assignments and create new objects for the leftovers
  // (Alg. 1 line 7).
  for (size_t ni = 0; ni < instances.size(); ++ni) {
    VersionRef ref{revision_index, instances[ni].position};
    int64_t object_id = assignment[ni];
    if (object_id < 0) {
      object_id = graph_.AddObject(ref);
      Tracked tracked;
      tracked.id = object_id;
      tracked.first_revision = revision_index;
      tracked_.push_back(std::move(tracked));
      ++stats_.new_objects;
    } else {
      graph_.AppendVersion(object_id, ref);
    }
    // Update the rear-view history of the (new or matched) object.
    // Object ids are assigned sequentially, so they index tracked_.
    Tracked& t = tracked_[static_cast<size_t>(object_id)];
    t.recent_bags.push_back(incoming_bags[ni]);
    while (t.recent_bags.size() >
           static_cast<size_t>(std::max(config_.rear_view_window, 1))) {
      t.recent_bags.pop_front();
    }
    t.last_position = instances[ni].position;
    t.last_revision = revision_index;
  }

  stats_.step_millis.push_back(timer.ElapsedMillis());
}

PageMatcher::PageMatcher(MatcherConfig config)
    : tables_(extract::ObjectType::kTable, config),
      infoboxes_(extract::ObjectType::kInfobox, config),
      lists_(extract::ObjectType::kList, config) {}

void PageMatcher::ProcessRevision(int revision_index,
                                  const extract::PageObjects& objects) {
  tables_.ProcessRevision(revision_index, objects.tables);
  infoboxes_.ProcessRevision(revision_index, objects.infoboxes);
  lists_.ProcessRevision(revision_index, objects.lists);
}

const IdentityGraph& PageMatcher::GraphFor(extract::ObjectType type) const {
  switch (type) {
    case extract::ObjectType::kTable:
      return tables_.graph();
    case extract::ObjectType::kInfobox:
      return infoboxes_.graph();
    case extract::ObjectType::kList:
      return lists_.graph();
  }
  return tables_.graph();
}

const MatchStats& PageMatcher::StatsFor(extract::ObjectType type) const {
  switch (type) {
    case extract::ObjectType::kTable:
      return tables_.stats();
    case extract::ObjectType::kInfobox:
      return infoboxes_.stats();
    case extract::ObjectType::kList:
      return lists_.stats();
  }
  return tables_.stats();
}

}  // namespace somr::matching
