#include "matching/matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/timer.h"
#include "matching/hungarian.h"
#include "matching/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/executor.h"
#include "retrieval/shape.h"

namespace somr::matching {

namespace {

// Static span names so trace events never allocate.
const char* MatchSpanName(extract::ObjectType type) {
  switch (type) {
    case extract::ObjectType::kTable:
      return "match/table";
    case extract::ObjectType::kInfobox:
      return "match/infobox";
    case extract::ObjectType::kList:
      return "match/list";
  }
  return "match/unknown";
}

// Process-wide matcher metrics, registered once. Updated with per-step
// deltas (a handful of relaxed fetch_adds per revision, never per pair),
// so the per-pair hot path carries no metrics cost at all.
struct MatcherMetrics {
  obs::Counter* steps;
  obs::Counter* similarities;
  obs::Counter* pairs_pruned;
  obs::Counter* pairs_blocked;
  obs::Counter* pairs_shape_filtered;
  obs::Counter* stage1_matches;
  obs::Counter* stage2_matches;
  obs::Counter* stage3_matches;
  obs::Counter* new_objects;
  obs::Counter* retrieval_postings;
  obs::Counter* retrieval_pruned;
  obs::Counter* retrieval_wand_skips;
  obs::Histogram* step_seconds;
};

MatcherMetrics& GetMatcherMetrics() {
  static MatcherMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    auto* m = new MatcherMetrics();
    m->steps = r.GetCounter("somr_match_steps_total",
                            "matching steps (revisions x object types)");
    m->similarities =
        r.GetCounter("somr_match_similarities_total",
                     "exact pairwise similarity computations");
    m->pairs_pruned =
        r.GetCounter("somr_match_pairs_pruned_total",
                     "pairs skipped via the weighted-total upper bound");
    m->pairs_blocked = r.GetCounter("somr_match_pairs_blocked_total",
                                    "pairs filtered by LSH blocking");
    m->stage1_matches = r.GetCounter("somr_match_stage1_matches_total",
                                     "edges accepted in stage 1 (local)");
    m->stage2_matches = r.GetCounter("somr_match_stage2_matches_total",
                                     "edges accepted in stage 2 (strict)");
    m->stage3_matches = r.GetCounter("somr_match_stage3_matches_total",
                                     "edges accepted in stage 3 (relaxed)");
    m->new_objects = r.GetCounter("somr_match_new_objects_total",
                                  "instances that started a new object");
    m->pairs_shape_filtered =
        r.GetCounter("somr_match_pairs_shape_filtered_total",
                     "pairs filtered by the structural-skeleton signature");
    m->retrieval_postings =
        r.GetCounter("somr_retrieval_postings_total",
                     "inverted-index postings scanned by retrieval");
    m->retrieval_pruned =
        r.GetCounter("somr_retrieval_candidates_pruned_total",
                     "retrieval candidates rejected by the theta bound");
    m->retrieval_wand_skips =
        r.GetCounter("somr_retrieval_wand_skips_total",
                     "postings skipped by WAND early termination");
    m->step_seconds = r.GetHistogram(
        "somr_match_step_seconds", "wall time of one matching step", 1e-6,
        2.0, 24);
    return m;
  }();
  return *metrics;
}

// Tie-break epsilons (Sec. IV-A3, Alg. 1: matching(G, ↓LT, ↓POS)):
// lifetime dominates position. For a duplicated instance both candidate
// edges share the same object, so lifetime ties and position decides; for
// a deleted duplicate the longer-lived object wins. Both epsilons are far
// below any similarity resolution that matters (sims live in [0,1],
// thresholds >= 0.4).
constexpr double kLifetimeEps = 1e-6;
constexpr double kPosEps = 1e-8;

// Per-step pairwise similarity caches are flat |tracked| x |incoming|
// vectors indexed by ti * |incoming| + ni, NaN = not yet computed — no
// hashing on the cache path (this replaced the old unordered_map caches
// keyed by a hand-rolled PairKeyHash).
constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();
constexpr double kPruned = -std::numeric_limits<double>::infinity();

}  // namespace

TemporalMatcher::TemporalMatcher(extract::ObjectType type,
                                 MatcherConfig config)
    : type_(type), config_(config), graph_(type) {}

double TemporalMatcher::DecayedSim(sim::SimilarityKind kind,
                                   const Tracked& tracked,
                                   const BagOfWords& candidate,
                                   const sim::TokenWeighting& weighting) {
  double best = 0.0;
  double decay = 1.0;
  int considered = 0;
  for (auto it = tracked.recent_bags.rbegin();
       it != tracked.recent_bags.rend() &&
       considered < config_.rear_view_window;
       ++it, ++considered) {
    // Count here, not up front: pruned or short histories must not
    // inflate the similarity counter (it feeds the Fig. 11 benchmarks).
    ++stats_.similarities_computed;
    double s = decay * sim::Similarity(kind, *it, candidate, weighting);
    best = std::max(best, s);
    decay *= config_.decay;
  }
  return best;
}

void TemporalMatcher::TieBreakParts(const Tracked& tracked,
                                    int new_position, int revision_index,
                                    double* position_part,
                                    double* lifetime_part) const {
  *position_part = 0.0;
  *lifetime_part = 0.0;
  if (config_.use_spatial_features) {
    double pos_diff = std::abs(tracked.last_position - new_position);
    *position_part = -kPosEps * (pos_diff / (pos_diff + 8.0));
  }
  if (config_.enable_lifetime_tiebreak) {
    double lifetime =
        static_cast<double>(revision_index - tracked.first_revision);
    *lifetime_part = kLifetimeEps * (lifetime / (lifetime + 64.0));
  }
}

double TemporalMatcher::TieBreakBonus(const Tracked& tracked,
                                      int new_position,
                                      int revision_index) const {
  double position_part = 0.0, lifetime_part = 0.0;
  TieBreakParts(tracked, new_position, revision_index, &position_part,
                &lifetime_part);
  return position_part + lifetime_part;
}

template <typename EnumerateFn, typename SimFn, typename PrefillFn,
          typename DescribeFn>
void TemporalMatcher::RunStages(
    int revision_index, const std::vector<extract::ObjectInstance>& instances,
    EnumerateFn&& enumerate, SimFn&& sim_at_least, PrefillFn&& prefill,
    DescribeFn&& describe_pair, std::vector<int64_t>& assignment,
    std::vector<uint32_t>& considered_per_ni) {
  std::vector<bool> tracked_matched(tracked_.size(), false);
  std::vector<bool> incoming_matched(instances.size(), false);

  std::vector<StageSpec> stages;
  if (config_.enable_stage1 && config_.use_spatial_features) {
    stages.push_back({1, true, sim::SimilarityKind::kStrict, config_.theta1,
                      &stats_.stage1_matches, "match/stage1"});
  }
  if (config_.enable_stage2) {
    stages.push_back({2, false, sim::SimilarityKind::kStrict, config_.theta2,
                      &stats_.stage2_matches, "match/stage2"});
  }
  if (config_.enable_stage3) {
    stages.push_back({3, false, sim::SimilarityKind::kRelaxed, config_.theta3,
                      &stats_.stage3_matches, "match/stage3"});
  }

  // Candidate pairs and their stage similarities, reused across stages.
  std::vector<StagePair> cands;
  std::vector<double> stage_sims;
  // Per-stage candidate count of each incoming instance, kept only while
  // a provenance sink is attached (pair records report the stage-local
  // count; considered_per_ni accumulates across stages).
  std::vector<uint32_t> stage_considered;

  for (const StageSpec& stage : stages) {
    SOMR_TRACE_SCOPE_CAT("match", stage.span_name);
    // Enumerate this stage's candidate pairs in (ti, ni) order — the
    // order every later step (prefill or lazy sims, edge building, the
    // assignment solve) inherits, which is what keeps the parallel and
    // sequential paths byte-identical. The enumerator is either the full
    // sweep or the retrieval-index shortlist; both emit the same order.
    cands.clear();
    enumerate(stage, tracked_matched, incoming_matched, &cands);
    last_step_candidates_ += cands.size();
    for (const StagePair& p : cands) ++considered_per_ni[p.incoming];
    if (provenance_ != nullptr) {
      stage_considered.assign(instances.size(), 0);
      for (const StagePair& p : cands) ++stage_considered[p.incoming];
    }
    if (cands.empty()) continue;

    // Large stages fill the similarity matrix in parallel; otherwise the
    // lazy per-pair path runs below. A prefilled value must be consumed
    // from stage_sims rather than re-probed: prune outcomes are not
    // cached, so a second probe would double-count pairs_pruned.
    stage_sims.assign(cands.size(), 0.0);
    const bool prefilled =
        prefill(stage.kind, stage.threshold, cands, stage_sims);

    std::vector<WeightedEdge> edges;
    // Similarity of each edge without its tie-break perturbation, kept
    // only while a provenance sink is attached (parallel to `edges`).
    std::vector<double> edge_sims;
    for (size_t k = 0; k < cands.size(); ++k) {
      const size_t ti = cands[k].tracked;
      const size_t ni = cands[k].incoming;
      double s = prefilled
                     ? stage_sims[k]
                     : sim_at_least(stage.kind, stage.threshold, ti, ni);
      if (s < stage.threshold) continue;
      // Every edge offered to the Hungarian solve — hence every accepted
      // match — carries a similarity at or above this stage's threshold
      // (also rejects NaN similarities, which pass the `<` filter above).
      SOMR_DCHECK_GE(s, stage.threshold);
      double weight = s + TieBreakBonus(tracked_[ti],
                                        instances[ni].position,
                                        revision_index);
      edges.push_back({static_cast<int>(ti), static_cast<int>(ni),
                       weight});
      if (provenance_ != nullptr) edge_sims.push_back(s);
    }
    if (edges.empty()) continue;
    std::vector<std::pair<int, int>> matched;
    {
      SOMR_TRACE_SCOPE_CAT("match", "match/hungarian");
      matched =
          MaxWeightMatching(tracked_.size(), instances.size(), edges);
    }
    std::vector<char> edge_accepted(
        provenance_ != nullptr ? edges.size() : 0, 0);
    for (auto [ti, ni] : matched) {
      // Hungarian output must stay within this stage's unmatched rows
      // and columns — a duplicate here would fork an identity chain.
      SOMR_DCHECK(!tracked_matched[static_cast<size_t>(ti)])
          << "stage " << stage.number << " rematched tracked object " << ti;
      SOMR_DCHECK(!incoming_matched[static_cast<size_t>(ni)])
          << "stage " << stage.number << " rematched instance " << ni;
      Tracked& tracked = tracked_[static_cast<size_t>(ti)];
      tracked_matched[static_cast<size_t>(ti)] = true;
      incoming_matched[static_cast<size_t>(ni)] = true;
      assignment[static_cast<size_t>(ni)] = tracked.id;
      ++*stage.match_counter;
      if (provenance_ != nullptr) {
        for (size_t e = 0; e < edges.size(); ++e) {
          if (edges[e].left == ti && edges[e].right == ni) {
            edge_accepted[e] = 1;
            break;
          }
        }
      }
    }
    if (provenance_ != nullptr) {
      for (size_t e = 0; e < edges.size(); ++e) {
        const size_t ti = static_cast<size_t>(edges[e].left);
        const size_t ni = static_cast<size_t>(edges[e].right);
        obs::MatchDecision d;
        d.kind = edge_accepted[e] != 0
                     ? obs::MatchDecision::Kind::kMatch
                     : obs::MatchDecision::Kind::kReject;
        d.trace_id = obs::CurrentTraceId();
        d.object_type = extract::ObjectTypeName(type_);
        d.revision = revision_index;
        d.stage = stage.number;
        d.object_id = tracked_[ti].id;
        d.position = instances[ni].position;
        d.similarity = edge_sims[e];
        d.threshold = stage.threshold;
        d.candidates_considered =
            static_cast<int64_t>(stage_considered[ni]);
        TieBreakParts(tracked_[ti], instances[ni].position, revision_index,
                      &d.tiebreak_position, &d.tiebreak_lifetime);
        describe_pair(stage.kind, ti, ni, &d);
        d.reason = edge_accepted[e] != 0 ? "matched" : "lost_assignment";
        provenance_->Record(d);
      }
    }
  }
}

template <typename AppendFn>
void TemporalMatcher::CommitAssignments(
    int revision_index, const std::vector<extract::ObjectInstance>& instances,
    const std::vector<int64_t>& assignment,
    const std::vector<uint32_t>& considered_per_ni, AppendFn&& append_bag) {
  for (size_t ni = 0; ni < instances.size(); ++ni) {
    VersionRef ref{revision_index, instances[ni].position};
    int64_t object_id = assignment[ni];
    if (object_id < 0) {
      object_id = graph_.AddObject(ref);
      Tracked tracked;
      tracked.id = object_id;
      tracked.first_revision = revision_index;
      tracked_.push_back(std::move(tracked));
      ++stats_.new_objects;
      if (provenance_ != nullptr) {
        obs::MatchDecision d;
        d.kind = obs::MatchDecision::Kind::kNewObject;
        d.trace_id = obs::CurrentTraceId();
        d.object_type = extract::ObjectTypeName(type_);
        d.revision = revision_index;
        d.object_id = object_id;
        d.position = instances[ni].position;
        d.candidates_considered =
            static_cast<int64_t>(considered_per_ni[ni]);
        d.reason = "new_object";
        provenance_->Record(d);
      }
    } else {
      graph_.AppendVersion(object_id, ref);
    }
    // Update the rear-view history of the (new or matched) object.
    // Object ids are assigned sequentially, so they index tracked_.
    Tracked& t = tracked_[static_cast<size_t>(object_id)];
    append_bag(t, ni);
    t.newest_shape = retrieval::ShapeSignature(instances[ni]);
    t.last_position = instances[ni].position;
    t.last_revision = revision_index;
  }
}

void TemporalMatcher::ProcessRevision(
    int revision_index, const std::vector<extract::ObjectInstance>& instances) {
  SOMR_TRACE_SCOPE_CAT("match", MatchSpanName(type_));
  // Counter values before the step: both the registry and the per-step
  // provenance record are fed from the same deltas, so the flat and
  // legacy engines report timing/counters identically by construction.
  const size_t similarities_before = stats_.similarities_computed;
  const size_t pruned_before = stats_.pairs_pruned;
  const size_t blocked_before = stats_.pairs_blocked;
  const size_t stage1_before = stats_.stage1_matches;
  const size_t stage2_before = stats_.stage2_matches;
  const size_t stage3_before = stats_.stage3_matches;
  const size_t new_objects_before = stats_.new_objects;
  const size_t shape_filtered_before = stats_.pairs_shape_filtered;
  const size_t tracked_before = tracked_.size();
  const retrieval::RetrievalStats retrieval_before =
      index_ != nullptr ? index_->stats() : retrieval::RetrievalStats{};
  last_step_candidates_ = 0;

  // Position ranks are normally dense 0..n-1 (see the ProcessRevision
  // contract), but the matcher tolerates buggy callers passing
  // duplicates. Once duplicates appear, (revision, position) no longer
  // identifies an instance, so the graph-linearity validator must stop
  // treating repeated claims of one key as a violation.
  if (input_positions_unique_) {
    std::set<int> positions;
    for (const extract::ObjectInstance& instance : instances) {
      if (!positions.insert(instance.position).second) {
        input_positions_unique_ = false;
        break;
      }
    }
  }

  Timer timer;
  if (config_.use_flat_kernels) {
    ProcessRevisionFlat(revision_index, instances);
  } else {
    ProcessRevisionLegacy(revision_index, instances);
  }
  const double millis = timer.ElapsedMillis();
  stats_.step_millis.push_back(millis);

  MatcherMetrics& metrics = GetMatcherMetrics();
  metrics.steps->Increment();
  metrics.step_seconds->Observe(millis / 1000.0);
  auto bump = [](obs::Counter* counter, size_t now, size_t before) {
    if (now > before) counter->Increment(now - before);
  };
  bump(metrics.similarities, stats_.similarities_computed,
       similarities_before);
  bump(metrics.pairs_pruned, stats_.pairs_pruned, pruned_before);
  bump(metrics.pairs_blocked, stats_.pairs_blocked, blocked_before);
  bump(metrics.stage1_matches, stats_.stage1_matches, stage1_before);
  bump(metrics.stage2_matches, stats_.stage2_matches, stage2_before);
  bump(metrics.stage3_matches, stats_.stage3_matches, stage3_before);
  bump(metrics.new_objects, stats_.new_objects, new_objects_before);
  bump(metrics.pairs_shape_filtered, stats_.pairs_shape_filtered,
       shape_filtered_before);
  if (index_ != nullptr) {
    const retrieval::RetrievalStats& r = index_->stats();
    bump(metrics.retrieval_postings, r.postings_scanned,
         retrieval_before.postings_scanned);
    bump(metrics.retrieval_pruned, r.candidates_pruned,
         retrieval_before.candidates_pruned);
    bump(metrics.retrieval_wand_skips, r.wand_skips,
         retrieval_before.wand_skips);
  }

  if (provenance_ != nullptr) {
    obs::MatchDecision d;
    d.kind = obs::MatchDecision::Kind::kStep;
    d.trace_id = obs::CurrentTraceId();
    d.object_type = extract::ObjectTypeName(type_);
    d.revision = revision_index;
    d.similarities = stats_.similarities_computed - similarities_before;
    d.pairs_pruned = stats_.pairs_pruned - pruned_before;
    d.pairs_blocked = stats_.pairs_blocked - blocked_before;
    d.tracked_objects = tracked_before;
    d.incoming_instances = instances.size();
    d.candidates_considered = static_cast<int64_t>(last_step_candidates_);
    provenance_->Record(d);
  }

#ifndef NDEBUG
  // Step-boundary invariant sweep (debug/sanitizer builds only): any
  // violated matcher invariant aborts with the full findings list.
  {
    ValidationReport report;
    Validate(&report);
    SOMR_CHECK(report.ok()) << "matcher invariants violated after step "
                            << revision_index << "\n"
                            << report.ToString();
  }
#endif
}

void TemporalMatcher::ProcessRevisionFlat(
    int revision_index, const std::vector<extract::ObjectInstance>& instances) {
  const size_t nt = tracked_.size();
  const size_t nn = instances.size();
  const size_t window =
      static_cast<size_t>(std::max(config_.rear_view_window, 1));

  // Compile the incoming instances straight into interned flat bags.
  std::vector<FlatBag> incoming;
  incoming.reserve(nn);
  for (const extract::ObjectInstance& obj : instances) {
    incoming.push_back(extract::BuildFlatBag(obj, pool_, config_.features));
  }

  // Lazily build the retrieval index the first time an indexed step runs
  // (also rebuilt by the snapshot loader; see RebuildDerivedState).
  const bool use_index = config_.enable_retrieval_index;
  if (use_index && index_ == nullptr) RebuildDerivedState();

  // Dense token weighting for this step (Sec. IV-B2). The indexed path
  // maintains the previous-version document frequencies incrementally
  // (updated as windows roll forward in CommitAssignments) and only
  // overlays the incoming side per step; the values are bit-identical to
  // the batch rebuild the swept path runs.
  if (config_.use_idf_weighting) {
    if (use_index) {
      std::vector<const FlatBag*> new_bags;
      new_bags.reserve(nn);
      for (const FlatBag& bag : incoming) new_bags.push_back(&bag);
      weights_.BeginIncrementalStep(new_bags,
                                    static_cast<uint32_t>(pool_.size()));
    } else {
      std::vector<const FlatBag*> prev_bags;
      prev_bags.reserve(nt);
      for (const Tracked& t : tracked_) {
        if (!t.recent_flat.empty()) prev_bags.push_back(&t.recent_flat.back());
      }
      std::vector<const FlatBag*> new_bags;
      new_bags.reserve(nn);
      for (const FlatBag& bag : incoming) new_bags.push_back(&bag);
      weights_.BuildInverseObjectFrequency(prev_bags, new_bags, pool_.size());
    }
  } else {
    weights_.BuildUniform();
  }

  // Weighted totals, once per bag per step instead of once per pair:
  // they feed both the similarity kernels and the upper-bound prune.
  std::vector<double> incoming_total(nn);
  for (size_t ni = 0; ni < nn; ++ni) {
    incoming_total[ni] = sim::WeightedTotal(incoming[ni], weights_);
  }
  // History totals. The swept path precomputes a dense CSR (every pair
  // reads every history bag anyway); the indexed path fills a lazily
  // stamped per-object row instead, so only retrieval survivors pay.
  // ensure_hist must be called (sequentially) for every tracked object a
  // stage can touch before sims run — the parallel prefill only reads.
  std::vector<size_t> hist_offset;
  std::vector<double> hist_total;
  if (!use_index) {
    hist_offset.assign(nt + 1, 0);  // CSR over history bags
    for (size_t ti = 0; ti < nt; ++ti) {
      hist_offset[ti + 1] = hist_offset[ti] + tracked_[ti].recent_flat.size();
    }
    hist_total.resize(hist_offset[nt]);
    for (size_t ti = 0; ti < nt; ++ti) {
      const Tracked& t = tracked_[ti];
      for (size_t h = 0; h < t.recent_flat.size(); ++h) {
        hist_total[hist_offset[ti] + h] =
            sim::WeightedTotal(t.recent_flat[h], weights_);
      }
    }
  } else {
    ++step_serial_;
    if (hist_total_stamp_.size() < nt) hist_total_stamp_.resize(nt, 0);
    if (hist_total_cache_.size() < nt * window) {
      hist_total_cache_.resize(nt * window, 0.0);
    }
  }
  auto ensure_hist = [&](size_t ti) {
    if (hist_total_stamp_[ti] == step_serial_) return;
    hist_total_stamp_[ti] = step_serial_;
    const Tracked& t = tracked_[ti];
    double* row = &hist_total_cache_[ti * window];
    for (size_t h = 0; h < t.recent_flat.size(); ++h) {
      row[h] = sim::WeightedTotal(t.recent_flat[h], weights_);
    }
  };
  auto hist_at = [&](size_t ti, size_t h) {
    return use_index ? hist_total_cache_[ti * window + h]
                     : hist_total[hist_offset[ti] + h];
  };

  // Optional LSH candidate blocking for the non-local stages.
  std::vector<char> lsh_mask;  // empty = all pairs allowed
  if (config_.enable_lsh_blocking && nt > 0 && nn > 0 &&
      nt * nn > config_.lsh_min_pair_count) {
    const int num_hashes = config_.lsh_bands * config_.lsh_rows;
    sim::LshIndex index(config_.lsh_bands, config_.lsh_rows);
    for (size_t ni = 0; ni < nn; ++ni) {
      index.Add(static_cast<int>(ni),
                sim::ComputeMinHash(incoming[ni], num_hashes));
    }
    lsh_mask.assign(nt * nn, 0);
    for (size_t ti = 0; ti < nt; ++ti) {
      if (tracked_[ti].newest_sig.empty()) continue;
      for (int ni : index.Candidates(tracked_[ti].newest_sig)) {
        lsh_mask[ti * nn + static_cast<size_t>(ni)] = 1;
      }
    }
  }

  // Decayed upper bound for the strict measure: max over the rear-view
  // window of phi^i * min(Wa_i, Wb) / max(Wa_i, Wb). Totals only — no
  // token data touched.
  // The sim loops honor the raw window (0 = no lookback, like the legacy
  // DecayedSim); only history trimming clamps it to >= 1.
  const size_t sim_window =
      static_cast<size_t>(std::max(config_.rear_view_window, 0));

  auto pair_bound = [&](size_t ti, size_t ni) {
    const Tracked& t = tracked_[ti];
    const size_t hist = t.recent_flat.size();
    const bool cand_empty = incoming[ni].empty();
    const double wb = incoming_total[ni];
    double bound = 0.0;
    double decay = 1.0;
    size_t considered = 0;
    for (size_t back = 0; back < hist && considered < sim_window;
         ++back, ++considered) {
      if (decay <= bound) break;  // phi^i decreasing, ratios <= 1
      const size_t h = hist - 1 - back;
      bound = std::max(
          bound, decay * sim::SimilarityUpperBound(
                             sim::SimilarityKind::kStrict,
                             t.recent_flat[h].empty(), cand_empty,
                             hist_at(ti, h), wb));
      decay *= config_.decay;
    }
    return bound;
  };

  // Exact decayed similarity, skipping history versions whose bound
  // cannot beat the best seen so far (skips never change the max).
  // Counter updates go through `sims` so the parallel prefill can route
  // them into per-thread scratch instead of the shared MatchStats.
  auto exact_sim = [&](sim::SimilarityKind kind, size_t ti, size_t ni,
                       size_t* sims) {
    const Tracked& t = tracked_[ti];
    const FlatBag& cand = incoming[ni];
    const size_t hist = t.recent_flat.size();
    const double wb = incoming_total[ni];
    double best = 0.0;
    double decay = 1.0;
    size_t considered = 0;
    for (size_t back = 0; back < hist && considered < sim_window;
         ++back, ++considered) {
      if (decay <= best) break;  // sims <= 1: no later version can win
      const size_t h = hist - 1 - back;
      const FlatBag& version = t.recent_flat[h];
      const double wa = hist_at(ti, h);
      double cap = sim::SimilarityUpperBound(kind, version.empty(),
                                             cand.empty(), wa, wb);
      if (decay * cap > best) {
        ++*sims;
        best = std::max(best, decay * sim::SimilarityFromTotals(
                                          kind, version, cand, weights_,
                                          wa, wb));
      }
      decay *= config_.decay;
    }
    return best;
  };

  std::vector<double> strict_cache(nt * nn, kUnset);
  std::vector<double> relaxed_cache(nt * nn, kUnset);
  std::vector<double> strict_bound(nt * nn, kUnset);

  // One similarity probe of one pair. Thread-safe for distinct pairs:
  // every mutable touch (bound, caches) lands in that pair's own flat
  // cells, and the counters go through the caller-supplied pointers.
  auto sim_probe = [&](sim::SimilarityKind kind, double threshold,
                       size_t ti, size_t ni, size_t* sims,
                       size_t* pruned) {
    const size_t idx = ti * nn + ni;
    std::vector<double>& cache = kind == sim::SimilarityKind::kStrict
                                     ? strict_cache
                                     : relaxed_cache;
    if (!std::isnan(cache[idx])) return cache[idx];
    if (kind == sim::SimilarityKind::kStrict) {
      double& bound = strict_bound[idx];
      if (std::isnan(bound)) bound = pair_bound(ti, ni);
      if (bound < threshold) {
        // Provably below this stage's threshold: skip the merge-joins.
        // Not cached — a later stage with a lower threshold re-checks.
        ++*pruned;
        return kPruned;
      }
    }
    double s = exact_sim(kind, ti, ni, sims);
    cache[idx] = s;
    return s;
  };

  auto sim_at_least = [&](sim::SimilarityKind kind, double threshold,
                          size_t ti, size_t ni) {
    return sim_probe(kind, threshold, ti, ni,
                     &stats_.similarities_computed, &stats_.pairs_pruned);
  };

  auto pair_allowed = [&](size_t ti, size_t ni) {
    return lsh_mask.empty() || lsh_mask[ti * nn + ni] != 0;
  };

  // Intra-step parallel path: fill one stage's similarity values for all
  // candidate pairs at once with ParallelFor. Safe because each pair
  // appears exactly once per stage (writes hit distinct cache cells) and
  // counter deltas accumulate in cacheline-padded per-thread scratch,
  // folded into MatchStats afterwards — sums are commutative, so the
  // counters match the sequential path exactly.
  auto prefill = [&](sim::SimilarityKind kind, double threshold,
                     const std::vector<StagePair>& pairs,
                     std::vector<double>& out) {
    if (executor_ == nullptr || !config_.enable_parallel_stages ||
        pairs.size() < config_.parallel_min_pairs) {
      return false;
    }
    struct alignas(64) Scratch {
      size_t sims = 0;
      size_t pruned = 0;
    };
    std::vector<Scratch> scratch(executor_->num_workers() + 1);
    const size_t grain = std::max<size_t>(
        64, pairs.size() /
                (static_cast<size_t>(executor_->num_workers()) * 4 + 1));
    executor_->ParallelFor(0, pairs.size(), grain,
                           [&](size_t chunk_begin, size_t chunk_end) {
      Scratch& slot = scratch[executor_->CurrentSlot()];
      for (size_t k = chunk_begin; k < chunk_end; ++k) {
        out[k] = sim_probe(kind, threshold, pairs[k].tracked,
                           pairs[k].incoming, &slot.sims, &slot.pruned);
      }
    });
    for (const Scratch& slot : scratch) {
      stats_.similarities_computed += slot.sims;
      stats_.pairs_pruned += slot.pruned;
    }
    return true;
  };

  // Provenance-only recompute of the rear-view profile of one pair: which
  // history version produced the best decayed similarity and how many
  // versions were in reach. Never runs without a sink attached.
  auto describe_pair = [&](sim::SimilarityKind kind, size_t ti, size_t ni,
                           obs::MatchDecision* d) {
    const Tracked& t = tracked_[ti];
    const FlatBag& cand = incoming[ni];
    const size_t hist = t.recent_flat.size();
    const double wb = incoming_total[ni];
    double best = -1.0;
    int best_depth = -1;
    double decay = 1.0;
    size_t considered = 0;
    for (size_t back = 0; back < hist && considered < sim_window;
         ++back, ++considered) {
      const size_t h = hist - 1 - back;
      double s = decay * sim::SimilarityFromTotals(
                             kind, t.recent_flat[h], cand, weights_,
                             hist_at(ti, h), wb);
      if (s > best) {
        best = s;
        best_depth = static_cast<int>(back);
      }
      decay *= config_.decay;
    }
    d->rear_view_depth = best_depth;
    d->rear_view_len = static_cast<int>(considered);
  };

  // ---- Retrieval-index candidate generation (Sec. IV-B4, DESIGN.md §12).
  // One index walk per incoming instance replaces the all-pairs sweep:
  // the walk upper-bounds each object's weighted overlap against every
  // live window version, and a decayed totals bound derived from it
  // filters at the lowest threshold either similarity kind still needs.
  // Filters subtract kBoundSlack so floating-point reassociation between
  // the index accumulation order and the merge-join order can never drop
  // a pair the sweep would have scored at or above a threshold — which
  // is what keeps swept and indexed identity graphs byte-identical.
  constexpr double kBoundSlack = 1e-9;
  const bool stage1_on = config_.enable_stage1 && config_.use_spatial_features;
  const bool strict_active = stage1_on || config_.enable_stage2;
  double strict_theta = std::numeric_limits<double>::infinity();
  if (stage1_on) strict_theta = std::min(strict_theta, config_.theta1);
  if (config_.enable_stage2) {
    strict_theta = std::min(strict_theta, config_.theta2);
  }
  const double relaxed_theta = config_.theta3;
  // A non-positive threshold keeps every pair, so that kind falls back
  // to the full sweep (the index can only help when the bound prunes).
  const bool strict_indexed = use_index && strict_active && strict_theta > 0.0;
  const bool relaxed_indexed =
      use_index && config_.enable_stage3 && relaxed_theta > 0.0;

  // Decayed rear-view similarity upper bound from the retrieval overlap
  // bound: per window version, overlap <= min(ov_bound, Wa, Wb) and both
  // measures are monotone in the overlap at fixed totals.
  auto indexed_bound = [&](sim::SimilarityKind kind, size_t ti, size_t ni,
                           double ov_bound) {
    const Tracked& t = tracked_[ti];
    const size_t hist = t.recent_flat.size();
    const bool cand_empty = incoming[ni].empty();
    const double wb = incoming_total[ni];
    double bound = 0.0;
    double decay = 1.0;
    size_t considered = 0;
    for (size_t back = 0; back < hist && considered < sim_window;
         ++back, ++considered) {
      if (decay <= bound) break;  // phi^i decreasing, ratios <= 1
      const size_t h = hist - 1 - back;
      const bool version_empty = t.recent_flat[h].empty();
      const double wa = hist_at(ti, h);
      double vb;
      if (version_empty || cand_empty) {
        vb = sim::SimilarityUpperBound(kind, version_empty, cand_empty, wa,
                                       wb);
      } else {
        const double m = std::min(ov_bound, std::min(wa, wb));
        if (kind == sim::SimilarityKind::kStrict) {
          const double denom = wa + wb - m;
          vb = denom > 0.0 ? m / denom : 0.0;
        } else {
          const double smaller = std::min(wa, wb);
          vb = smaller > 0.0 ? std::min(1.0, m / smaller) : 0.0;
        }
      }
      bound = std::max(bound, decay * vb);
      decay *= config_.decay;
    }
    return bound;
  };

  // Per-kind survivor lists, one per incoming instance, each entry the
  // object id plus its decayed bound (stages re-filter at their own
  // threshold, so stage 1 at theta1 reuses the walk done at min-theta).
  struct IndexedCand {
    uint32_t tracked = 0;
    double bound = 0.0;
  };
  std::vector<std::vector<IndexedCand>> strict_cands;
  std::vector<std::vector<IndexedCand>> relaxed_cands;
  if (strict_indexed || relaxed_indexed) {
    if (strict_indexed) strict_cands.resize(nn);
    if (relaxed_indexed) relaxed_cands.resize(nn);
    retrieval::RetrievalResult rr;
    std::vector<uint32_t> empty_objects;
    bool empty_ready = false;
    uint64_t bound_pruned = 0;
    auto consider = [&](size_t ni, uint32_t obj, double ov_bound) {
      ensure_hist(obj);
      if (strict_indexed) {
        const double b =
            indexed_bound(sim::SimilarityKind::kStrict, obj, ni, ov_bound);
        if (b >= strict_theta - kBoundSlack) {
          strict_cands[ni].push_back({obj, b});
        } else {
          ++bound_pruned;
        }
      }
      if (relaxed_indexed) {
        const double b =
            indexed_bound(sim::SimilarityKind::kRelaxed, obj, ni, ov_bound);
        if (b >= relaxed_theta - kBoundSlack) {
          relaxed_cands[ni].push_back({obj, b});
        } else {
          ++bound_pruned;
        }
      }
    };
    for (size_t ni = 0; ni < nn; ++ni) {
      if (incoming[ni].empty()) {
        // An empty instance overlaps nothing; only objects with an empty
        // live version can score (empty vs empty is similarity 1, any
        // non-empty version scores 0 against it in both measures).
        if (!empty_ready) {
          index_->ValidEmptyObjects(&empty_objects);
          empty_ready = true;
        }
        for (uint32_t obj : empty_objects) consider(ni, obj, 0.0);
        continue;
      }
      // When stage 3 participates, one full walk serves both kinds
      // (containment has no query-side cap, so no early exit); a
      // strict-only configuration walks with WAND early termination.
      index_->RetrieveOverlaps(incoming[ni], weights_, incoming_total[ni],
                               strict_theta,
                               /*allow_early_exit=*/!relaxed_indexed, &rr);
      for (const retrieval::Candidate& c : rr.candidates) {
        consider(ni, c.object, c.overlap_bound + rr.slack);
      }
    }
    index_->mutable_stats()->candidates_pruned += bound_pruned;
  }

  // Shape-signature pre-filter (approximate; see MatcherConfig).
  const bool shape_on = config_.enable_shape_prefilter;
  std::vector<uint64_t> incoming_shapes;
  if (shape_on) {
    incoming_shapes.reserve(nn);
    for (const extract::ObjectInstance& obj : instances) {
      incoming_shapes.push_back(retrieval::ShapeSignature(obj));
    }
  }
  // Shared per-pair stage filters: stage 1's positional neighborhood or
  // the LSH mask, then the shape filter — identical for the swept and
  // indexed enumerators, so the two paths reject the same pairs.
  auto pair_passes = [&](const StageSpec& stage, size_t ti, size_t ni) {
    if (stage.local_only) {
      int diff =
          std::abs(tracked_[ti].last_position - instances[ni].position);
      if (diff > config_.theta_pos) return false;
    } else if (!pair_allowed(ti, ni)) {
      ++stats_.pairs_blocked;
      return false;
    }
    if (shape_on && tracked_[ti].newest_shape != incoming_shapes[ni]) {
      ++stats_.pairs_shape_filtered;
      return false;
    }
    return true;
  };
  auto enumerate = [&](const StageSpec& stage,
                       const std::vector<bool>& tracked_matched,
                       const std::vector<bool>& incoming_matched,
                       std::vector<StagePair>* cands) {
    const bool kind_indexed = stage.kind == sim::SimilarityKind::kStrict
                                  ? strict_indexed
                                  : relaxed_indexed;
    if (kind_indexed) {
      const std::vector<std::vector<IndexedCand>>& per_ni =
          stage.kind == sim::SimilarityKind::kStrict ? strict_cands
                                                     : relaxed_cands;
      for (size_t ni = 0; ni < nn; ++ni) {
        if (incoming_matched[ni]) continue;
        for (const IndexedCand& c : per_ni[ni]) {
          const size_t ti = c.tracked;
          if (tracked_matched[ti]) continue;
          if (c.bound < stage.threshold - kBoundSlack) continue;
          if (!pair_passes(stage, ti, ni)) continue;
          cands->push_back({c.tracked, static_cast<uint32_t>(ni)});
        }
      }
      // The survivor lists are per-instance; restore the (ti, ni) order
      // the downstream stages (and the swept path) rely on.
      std::sort(cands->begin(), cands->end(),
                [](const StagePair& a, const StagePair& b) {
                  return a.tracked != b.tracked ? a.tracked < b.tracked
                                                : a.incoming < b.incoming;
                });
      return;
    }
    for (size_t ti = 0; ti < nt; ++ti) {
      if (tracked_matched[ti]) continue;
      if (use_index) ensure_hist(ti);  // swept stage inside an indexed step
      for (size_t ni = 0; ni < nn; ++ni) {
        if (incoming_matched[ni]) continue;
        if (!pair_passes(stage, ti, ni)) continue;
        cands->push_back(
            {static_cast<uint32_t>(ti), static_cast<uint32_t>(ni)});
      }
    }
  };

  std::vector<int64_t> assignment(nn, -1);
  std::vector<uint32_t> considered_per_ni(nn, 0);
  RunStages(revision_index, instances, enumerate, sim_at_least, prefill,
            describe_pair, assignment, considered_per_ni);
#ifndef NDEBUG
  {
    ValidationReport report;
    ValidateAssignment(assignment, tracked_.size(), &report);
    SOMR_CHECK(report.ok()) << report.ToString();
  }
#endif
  const bool incremental_weights = use_index && config_.use_idf_weighting;
  CommitAssignments(
      revision_index, instances, assignment, considered_per_ni,
      [&](Tracked& t, size_t ni) {
        // Keep the incremental previous-version document frequencies in
        // lockstep with the newest window bag of each touched object.
        if (incremental_weights && !t.recent_flat.empty()) {
          weights_.RemovePrevBag(t.recent_flat.back());
        }
        t.recent_flat.push_back(std::move(incoming[ni]));
        if (use_index) {
          index_->AppendBag(static_cast<uint32_t>(t.id),
                            t.recent_flat.back());
        }
        while (t.recent_flat.size() > window) {
          if (use_index) index_->NoteEviction(t.recent_flat.front());
          t.recent_flat.pop_front();
        }
        if (incremental_weights) weights_.AddPrevBag(t.recent_flat.back());
        if (config_.enable_lsh_blocking) {
          t.newest_sig = sim::ComputeMinHash(
              t.recent_flat.back(), config_.lsh_bands * config_.lsh_rows);
        }
      });
}

void TemporalMatcher::ProcessRevisionLegacy(
    int revision_index, const std::vector<extract::ObjectInstance>& instances) {
  const size_t nn = instances.size();
  const size_t window =
      static_cast<size_t>(std::max(config_.rear_view_window, 1));

  // Build bags for the incoming instances.
  std::vector<BagOfWords> incoming_bags;
  incoming_bags.reserve(nn);
  for (const extract::ObjectInstance& obj : instances) {
    incoming_bags.push_back(extract::BuildBagOfWords(obj, config_.features));
  }

  // Token weighting for this step (Sec. IV-B2).
  sim::TokenWeighting weighting;
  if (config_.use_idf_weighting) {
    std::vector<const BagOfWords*> prev_bags;
    prev_bags.reserve(tracked_.size());
    for (const Tracked& t : tracked_) {
      if (!t.recent_bags.empty()) prev_bags.push_back(&t.recent_bags.back());
    }
    std::vector<const BagOfWords*> new_bags;
    new_bags.reserve(incoming_bags.size());
    for (const BagOfWords& bag : incoming_bags) new_bags.push_back(&bag);
    weighting =
        sim::TokenWeighting::InverseObjectFrequency(prev_bags, new_bags);
  }

  // Similarity caches shared across stages: stage 2 reuses stage-1 strict
  // similarities (Sec. IV-B4).
  std::vector<double> strict_cache(tracked_.size() * nn, kUnset);
  std::vector<double> relaxed_cache(tracked_.size() * nn, kUnset);

  auto sim_at_least = [&](sim::SimilarityKind kind, double /*threshold*/,
                          size_t ti, size_t ni) {
    const size_t idx = ti * nn + ni;
    std::vector<double>& cache = kind == sim::SimilarityKind::kStrict
                                     ? strict_cache
                                     : relaxed_cache;
    if (!std::isnan(cache[idx])) return cache[idx];
    double s = DecayedSim(kind, tracked_[ti], incoming_bags[ni], weighting);
    cache[idx] = s;
    return s;
  };

  // The legacy reference engine always enumerates the full sweep (no
  // LSH, no retrieval index) but honors the same shape pre-filter as the
  // flat engine so the two stay equivalent under every config.
  const bool shape_on = config_.enable_shape_prefilter;
  std::vector<uint64_t> incoming_shapes;
  if (shape_on) {
    incoming_shapes.reserve(nn);
    for (const extract::ObjectInstance& obj : instances) {
      incoming_shapes.push_back(retrieval::ShapeSignature(obj));
    }
  }
  auto enumerate = [&](const StageSpec& stage,
                       const std::vector<bool>& tracked_matched,
                       const std::vector<bool>& incoming_matched,
                       std::vector<StagePair>* cands) {
    for (size_t ti = 0; ti < tracked_.size(); ++ti) {
      if (tracked_matched[ti]) continue;
      for (size_t ni = 0; ni < nn; ++ni) {
        if (incoming_matched[ni]) continue;
        if (stage.local_only) {
          int diff = std::abs(tracked_[ti].last_position -
                              instances[ni].position);
          if (diff > config_.theta_pos) continue;
        }
        if (shape_on && tracked_[ti].newest_shape != incoming_shapes[ni]) {
          ++stats_.pairs_shape_filtered;
          continue;
        }
        cands->push_back(
            {static_cast<uint32_t>(ti), static_cast<uint32_t>(ni)});
      }
    }
  };

  // The legacy reference engine always runs the lazy sequential path.
  auto prefill = [](sim::SimilarityKind, double,
                    const std::vector<StagePair>&,
                    std::vector<double>&) { return false; };

  // Provenance-only rear-view recompute (see the flat engine); bypasses
  // DecayedSim so the similarity counter stays untouched.
  auto describe_pair = [&](sim::SimilarityKind kind, size_t ti, size_t ni,
                           obs::MatchDecision* d) {
    const Tracked& t = tracked_[ti];
    double best = -1.0;
    int best_depth = -1;
    double decay = 1.0;
    int considered = 0;
    for (auto it = t.recent_bags.rbegin();
         it != t.recent_bags.rend() && considered < config_.rear_view_window;
         ++it, ++considered) {
      double s =
          decay * sim::Similarity(kind, *it, incoming_bags[ni], weighting);
      if (s > best) {
        best = s;
        best_depth = considered;
      }
      decay *= config_.decay;
    }
    d->rear_view_depth = best_depth;
    d->rear_view_len = considered;
  };

  std::vector<int64_t> assignment(nn, -1);
  std::vector<uint32_t> considered_per_ni(nn, 0);
  RunStages(revision_index, instances, enumerate, sim_at_least, prefill,
            describe_pair, assignment, considered_per_ni);
#ifndef NDEBUG
  {
    ValidationReport report;
    ValidateAssignment(assignment, tracked_.size(), &report);
    SOMR_CHECK(report.ok()) << report.ToString();
  }
#endif
  CommitAssignments(
      revision_index, instances, assignment, considered_per_ni,
      [&](Tracked& t, size_t ni) {
        t.recent_bags.push_back(std::move(incoming_bags[ni]));
        while (t.recent_bags.size() > window) t.recent_bags.pop_front();
      });
}

void TemporalMatcher::RebuildDerivedState() {
  index_.reset();
  hist_total_cache_.clear();
  hist_total_stamp_.clear();
  step_serial_ = 0;
  if (!config_.use_flat_kernels || !config_.enable_retrieval_index) return;
  const size_t window =
      static_cast<size_t>(std::max(config_.rear_view_window, 1));
  index_ = std::make_unique<retrieval::CandidateIndex>(window);
  for (size_t ti = 0; ti < tracked_.size(); ++ti) {
    for (const FlatBag& bag : tracked_[ti].recent_flat) {
      index_->AppendBag(static_cast<uint32_t>(ti), bag);
    }
  }
  if (config_.use_idf_weighting) {
    // Seed the incremental previous-version document frequencies from
    // the newest window bag of every tracked object (exactly the
    // prev-side the batch builder would count).
    weights_.ResetIncremental(static_cast<uint32_t>(pool_.size()));
    for (const Tracked& t : tracked_) {
      if (!t.recent_flat.empty()) weights_.AddPrevBag(t.recent_flat.back());
    }
  }
}

PageMatcher::PageMatcher(MatcherConfig config)
    : tables_(extract::ObjectType::kTable, config),
      infoboxes_(extract::ObjectType::kInfobox, config),
      lists_(extract::ObjectType::kList, config) {}

void PageMatcher::SetProvenanceSink(obs::ProvenanceSink* sink) {
  tables_.SetProvenanceSink(sink);
  infoboxes_.SetProvenanceSink(sink);
  lists_.SetProvenanceSink(sink);
}

void PageMatcher::SetExecutor(parallel::Executor* executor) {
  tables_.SetExecutor(executor);
  infoboxes_.SetExecutor(executor);
  lists_.SetExecutor(executor);
}

void PageMatcher::ProcessRevision(int revision_index,
                                  const extract::PageObjects& objects) {
  tables_.ProcessRevision(revision_index, objects.tables);
  infoboxes_.ProcessRevision(revision_index, objects.infoboxes);
  lists_.ProcessRevision(revision_index, objects.lists);
}

TemporalMatcher& PageMatcher::MatcherFor(extract::ObjectType type) {
  switch (type) {
    case extract::ObjectType::kTable:
      return tables_;
    case extract::ObjectType::kInfobox:
      return infoboxes_;
    case extract::ObjectType::kList:
      return lists_;
  }
  std::abort();  // unreachable: all ObjectType values handled above
}

const IdentityGraph& PageMatcher::GraphFor(extract::ObjectType type) const {
  switch (type) {
    case extract::ObjectType::kTable:
      return tables_.graph();
    case extract::ObjectType::kInfobox:
      return infoboxes_.graph();
    case extract::ObjectType::kList:
      return lists_.graph();
  }
  std::abort();  // unreachable: all ObjectType values handled above
}

const MatchStats& PageMatcher::StatsFor(extract::ObjectType type) const {
  switch (type) {
    case extract::ObjectType::kTable:
      return tables_.stats();
    case extract::ObjectType::kInfobox:
      return infoboxes_.stats();
    case extract::ObjectType::kList:
      return lists_.stats();
  }
  std::abort();  // unreachable: all ObjectType values handled above
}

IdentityGraph PageMatcher::TakeGraph(extract::ObjectType type) {
  return MatcherFor(type).TakeGraph();
}

MatchStats PageMatcher::TakeStats(extract::ObjectType type) {
  return MatcherFor(type).TakeStats();
}

}  // namespace somr::matching
