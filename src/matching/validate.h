#pragma once

// Invariant validators for the matching subsystem (DESIGN.md §11).
// Validators append findings to a ValidationReport instead of aborting;
// callers decide whether a violation is fatal (the matcher's debug-build
// step hook turns any finding into a SOMR_CHECK failure, `somr_process
// --validate` prints them all and exits non-zero).

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "matching/identity_graph.h"
#include "matching/matcher.h"

namespace somr::matching {

/// Algorithm 1 linearity: every instance (revision, position) belongs to
/// exactly one object and appears exactly once in its version chain;
/// revision ids within a chain are strictly increasing (one successor per
/// object per revision); chains are non-empty; object ids are unique and
/// index-aligned (ids are assigned sequentially); positions are
/// non-negative. Pass `positions_unique = false` when the input history
/// contained duplicate position ranks (a tolerated caller bug): then
/// (revision, position) no longer identifies an instance and the
/// claim-uniqueness check is skipped.
void ValidateIdentityGraph(const IdentityGraph& graph,
                           ValidationReport* report,
                           bool positions_unique = true);

/// One step's assignment (instance index -> object id or -1): every
/// non-negative id names an existing object at most once (the Hungarian
/// output is a valid one-to-one matching).
void ValidateAssignment(const std::vector<int64_t>& assignment,
                        size_t object_count, ValidationReport* report);

/// Cross-checks a finished graph against the extracted instance history
/// it was built from: every version ref points at an instance that
/// exists in its revision (`position` within that revision's instances
/// of the graph's type), and every extracted instance is covered by
/// exactly one chain (Alg. 1 leaves no orphans — unmatched instances
/// start new objects). Combined with ValidateIdentityGraph this is the
/// full "matching output is a valid matching" property.
void ValidateGraphAgainstHistory(
    const IdentityGraph& graph,
    const std::vector<extract::PageObjects>& revisions,
    ValidationReport* report);

/// Stage-threshold ordering and window sanity: theta1 >= theta2 >= theta3
/// (a later stage must not be stricter than an earlier one — Sec. IV-B3),
/// thresholds within [0, 1], rear_view_window >= 1, decay in (0, 1].
void ValidateMatcherConfig(const MatcherConfig& config,
                           ValidationReport* report);

SOMR_REGISTER_VALIDATOR(identity_graph, "identity_graph",
                        "identity graphs are sets of linear, strictly "
                        "revision-monotone version chains (Alg. 1)");
SOMR_REGISTER_VALIDATOR(matching, "matching",
                        "step assignments are one-to-one onto existing "
                        "objects; rear-view depth <= k; accepted "
                        "similarities reach their stage threshold");

}  // namespace somr::matching
