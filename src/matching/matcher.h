#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "extract/features.h"
#include "extract/object.h"
#include "matching/identity_graph.h"
#include "matching/interface.h"
#include "obs/provenance.h"
#include "retrieval/candidate_index.h"
#include "sim/minhash.h"
#include "sim/similarity.h"
#include "text/bag_of_words.h"
#include "text/flat_bag.h"
#include "text/token_pool.h"

namespace somr {
class ValidationReport;  // invariant findings (src/common/check.h)
}  // namespace somr

namespace somr::state {
class MatcherSerde;  // snapshot serializer (src/state/snapshot.cc)
}  // namespace somr::state

namespace somr::parallel {
class Executor;  // work-stealing pool (src/parallel/executor.h)
}  // namespace somr::parallel

namespace somr::matching {

/// Configuration of the multi-stage matcher, defaults set to the paper's
/// published parameter choices (Sec. V-C).
struct MatcherConfig {
  /// Stage-1 neighborhood: |pos(x) - pos(o)| <= theta_pos.
  int theta_pos = 2;
  /// Stage-1 similarity threshold (strict measure, local candidates).
  double theta1 = 0.8;
  /// Stage-2 threshold (strict measure, all pairs).
  double theta2 = 0.6;
  /// Stage-3 threshold (relaxed measure, all pairs).
  double theta3 = 0.4;
  /// Rear-view mirror window k: number of recent non-empty versions of an
  /// object compared against each new instance (Sec. IV-A2).
  int rear_view_window = 5;
  /// Decay factor phi applied per skipped version in the rear view.
  double decay = 0.9;
  /// Inverse-object-frequency token weighting (Sec. IV-B2).
  bool use_idf_weighting = true;
  /// Spatial features: stage 1 and the position tie-breaker. Disabled for
  /// contexts without an order, e.g. the Socrata data lake (Sec. V-B).
  bool use_spatial_features = true;
  /// Stage 1 can be disabled independently for the runtime ablation
  /// (Fig. 11) while keeping the position tie-breaker.
  bool enable_stage1 = true;
  /// Stages 2 and 3 can be disabled for the stage-composition ablation
  /// (stage 2 drives precision, stage 3 recall — Sec. IV-B3).
  bool enable_stage2 = true;
  bool enable_stage3 = true;
  /// Lifetime tie-breaker (prefer objects with longer histories).
  bool enable_lifetime_tiebreak = true;
  /// Interned-token similarity engine: tokens are interned into a
  /// per-matcher TokenPool, bags are compiled to sorted FlatBags, and
  /// similarities run as merge-joins with a weighted-total upper-bound
  /// prune. Exact — produces the same identity graph as the legacy
  /// string-hash path, which is kept (flag off) as the reference
  /// implementation for the equivalence test.
  bool use_flat_kernels = true;
  /// Optional MinHash/LSH candidate blocking for the non-local stages
  /// (2 and 3), engaged only when |tracked| * |incoming| exceeds
  /// lsh_min_pair_count. APPROXIMATE: pairs that share no LSH band are
  /// never compared, which can drop low-similarity matches — see
  /// DESIGN.md ("Similarity kernel & blocking") for when this is safe.
  /// Off by default; below the pair threshold the matcher always falls
  /// back to the exact all-pairs path. Flat engine only.
  bool enable_lsh_blocking = false;
  size_t lsh_min_pair_count = 4096;
  int lsh_bands = 16;
  int lsh_rows = 4;
  /// Intra-step parallelism (flat engine, only with an Executor attached
  /// via SetExecutor): when a stage's candidate-pair count reaches
  /// parallel_min_pairs, the stage similarity matrix is filled with
  /// Executor::ParallelFor before the (always sequential) assignment
  /// solve. Exact — identity graphs and MatchStats counters are
  /// byte-identical at any thread count, so these knobs are perf-only
  /// and deliberately excluded from the snapshot config fingerprint.
  bool enable_parallel_stages = true;
  size_t parallel_min_pairs = 4096;
  /// Inverted-index candidate retrieval (flat engine): each incoming
  /// instance retrieves the tracked objects it shares tokens with from
  /// an incremental inverted index (WAND-style early termination, see
  /// src/retrieval/), instead of every stage sweeping all tracked
  /// objects. Exact — candidates are filtered with sound upper bounds,
  /// so identity graphs, stage counts and new-object counts are
  /// byte-identical to the sweep; only work-rate counters
  /// (similarities_computed, pairs_pruned/blocked) differ. Perf-only,
  /// hence excluded from the snapshot config fingerprint like the
  /// parallel knobs; the index itself is rebuilt from the rear-view
  /// windows on snapshot restore rather than serialized.
  bool enable_retrieval_index = true;
  /// Structural-skeleton pre-filter (both engines): skip candidate pairs
  /// whose shape signatures (object type + log-bucketed row count / row
  /// width / schema size, src/retrieval/shape.h) differ, before any
  /// bag-of-words scoring. APPROXIMATE: an object that changes shape
  /// between revisions can lose its match (split identity), so this is
  /// off by default and participates in the snapshot config fingerprint
  /// like the LSH knobs.
  bool enable_shape_prefilter = false;
  /// Bag-of-words construction options.
  extract::FeatureOptions features;
};

/// One candidate pair of a matching stage: indexes into the tracked
/// objects and the incoming instances of the current step.
struct StagePair {
  uint32_t tracked = 0;
  uint32_t incoming = 0;
};

/// Runtime accounting for the performance experiments (Fig. 11).
struct MatchStats {
  std::vector<double> step_millis;  // wall time of each matching step
  size_t similarities_computed = 0;
  size_t stage1_matches = 0;
  size_t stage2_matches = 0;
  size_t stage3_matches = 0;
  size_t new_objects = 0;
  /// Pairs skipped because the weighted-total upper bound proved the
  /// decayed similarity below the stage threshold (no merge-join run).
  size_t pairs_pruned = 0;
  /// Pairs never compared because LSH blocking filtered them.
  size_t pairs_blocked = 0;
  /// Pairs never compared because the structural-skeleton pre-filter
  /// (enable_shape_prefilter) rejected them.
  size_t pairs_shape_filtered = 0;
};

/// Matches the object instances of one object type on one page across its
/// revision stream, building the identity graph incrementally (online):
/// call ProcessRevision once per page version, in order. This implements
/// Algorithm 1 with the three stages of Sec. IV-B3.
class TemporalMatcher : public RevisionMatcher {
 public:
  explicit TemporalMatcher(extract::ObjectType type,
                           MatcherConfig config = {});

  /// Processes one page version. `instances` must be the instances of
  /// this matcher's object type, in page order (position ranks 0..n-1).
  void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) override;

  const IdentityGraph& graph() const override { return graph_; }
  const MatchStats& stats() const { return stats_; }
  const MatcherConfig& config() const { return config_; }

  /// Attaches a match-decision provenance sink (nullptr detaches). The
  /// sink must outlive every subsequent ProcessRevision call; decision
  /// records are only built while one is attached.
  void SetProvenanceSink(obs::ProvenanceSink* sink) { provenance_ = sink; }

  /// Attaches a work-stealing pool for intra-step parallelism (nullptr
  /// detaches — the matcher then runs fully sequentially). The executor
  /// must outlive every subsequent ProcessRevision call. Attaching one
  /// never changes results, only wall time; see MatcherConfig's
  /// enable_parallel_stages / parallel_min_pairs.
  void SetExecutor(parallel::Executor* executor) { executor_ = executor; }

  /// Destructive accessors for pipeline code that owns the matcher and
  /// wants the result without copying the graph. TakeStats leaves a
  /// fully zeroed MatchStats behind (a plain move would reset only the
  /// step_millis vector and keep the counters, so stats() would read
  /// inconsistent values afterwards).
  IdentityGraph TakeGraph() { return std::move(graph_); }
  MatchStats TakeStats() { return std::exchange(stats_, MatchStats{}); }

  /// Appends every violated matcher invariant to `report` (config
  /// threshold ordering, graph linearity, tracked-table/graph agreement,
  /// rear-view depth <= k). Debug builds run this automatically at every
  /// step boundary; see src/matching/validate.h.
  void Validate(somr::ValidationReport* report) const;

 private:
  // The snapshot subsystem persists and restores the full matcher state
  // (pool, tracked windows, graph, stats) for checkpointed ingestion.
  friend class somr::state::MatcherSerde;

  struct Tracked {
    int64_t id = 0;
    std::deque<BagOfWords> recent_bags;  // legacy engine: oldest..newest
    std::deque<FlatBag> recent_flat;     // flat engine: oldest..newest
    sim::MinHashSignature newest_sig;    // only kept for LSH blocking
    uint64_t newest_shape = 0;           // shape signature, newest version
    int last_position = 0;
    int first_revision = 0;
    int last_revision = 0;
  };

  /// One matching stage's parameters, shared between the stage loop and
  /// the candidate enumerators.
  struct StageSpec {
    int number = 0;             // 1..3, for stats and provenance
    bool local_only = false;    // stage 1: positional neighborhood only
    sim::SimilarityKind kind = sim::SimilarityKind::kStrict;
    double threshold = 0.0;
    size_t* match_counter = nullptr;  // stats_.stageN_matches
    const char* span_name = "";       // static, for SOMR_TRACE_SCOPE
  };

  void ProcessRevisionFlat(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances);
  void ProcessRevisionLegacy(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances);

  /// Runs the enabled matching stages over the unmatched pairs.
  /// `enumerate(stage, tracked_matched, incoming_matched, &pairs)` fills
  /// `pairs` with the stage's candidate pairs in ascending (tracked,
  /// incoming) order — either the full sweep or the retrieval-index
  /// shortlist; `sim_at_least(kind, threshold, ti, ni)` returns the
  /// exact decayed similarity, or -infinity when the pair is provably
  /// below `threshold`; `prefill(kind, threshold, pairs, out)` may fill
  /// `out[k]` with the sim_at_least value of `pairs[k]` for the whole
  /// stage at once (the intra-step parallel path) and return true, or
  /// return false to keep the lazy per-pair path; `describe_pair(kind,
  /// ti, ni, &decision)` fills the rear-view fields of a provenance
  /// record (called only for candidate edges, and only while a
  /// provenance sink is attached). `considered_per_ni` accumulates how
  /// many candidate pairs each incoming instance appeared in across all
  /// stages (provenance: candidates_considered).
  template <typename EnumerateFn, typename SimFn, typename PrefillFn,
            typename DescribeFn>
  void RunStages(int revision_index,
                 const std::vector<extract::ObjectInstance>& instances,
                 EnumerateFn&& enumerate, SimFn&& sim_at_least,
                 PrefillFn&& prefill, DescribeFn&& describe_pair,
                 std::vector<int64_t>& assignment,
                 std::vector<uint32_t>& considered_per_ni);

  /// Applies `assignment` to the graph: appends matched instances to
  /// their objects, creates new objects for the rest (Alg. 1 line 7),
  /// and updates each touched object's rear-view history via
  /// `append_bag(tracked, ni)`.
  template <typename AppendFn>
  void CommitAssignments(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances,
      const std::vector<int64_t>& assignment,
      const std::vector<uint32_t>& considered_per_ni,
      AppendFn&& append_bag);

  /// Rebuilds everything derivable from the core state (tracked windows,
  /// pool, config): the retrieval index and the incremental IOF document
  /// frequencies. Called lazily before the first indexed step and by the
  /// snapshot loader after restoring the core state — an index rebuilt
  /// here retrieves identically to one maintained incrementally, which
  /// is why snapshots don't serialize it.
  void RebuildDerivedState();

  double DecayedSim(sim::SimilarityKind kind, const Tracked& tracked,
                    const BagOfWords& candidate,
                    const sim::TokenWeighting& weighting);

  /// Tie-break perturbation added to a similarity score; strictly smaller
  /// than any meaningful similarity difference. The position and
  /// lifetime components are also reported separately in provenance
  /// records, hence the split accessor.
  void TieBreakParts(const Tracked& tracked, int new_position,
                     int revision_index, double* position_part,
                     double* lifetime_part) const;
  double TieBreakBonus(const Tracked& tracked, int new_position,
                       int revision_index) const;

  extract::ObjectType type_;
  MatcherConfig config_;
  IdentityGraph graph_;
  MatchStats stats_;
  // False once any processed revision contained duplicate position
  // ranks (a tolerated caller bug): from then on (revision, position)
  // no longer identifies an instance, so Validate skips the
  // graph-linearity claim-uniqueness check. Not persisted by snapshots —
  // a restored matcher conservatively assumes well-formed history.
  bool input_positions_unique_ = true;
  std::vector<Tracked> tracked_;
  TokenPool pool_;                   // flat engine: page-lifetime interning
  sim::DenseTokenWeights weights_;   // flat engine: per-step IDF weights
  /// Inverted index over the rear-view windows (flat engine, created
  /// lazily when enable_retrieval_index; never serialized — see
  /// RebuildDerivedState).
  std::unique_ptr<retrieval::CandidateIndex> index_;
  /// Lazy per-(tracked, window-slot) weighted totals for the indexed
  /// path, stamped per step so only retrieval candidates pay for them
  /// (the swept path precomputes a dense CSR instead). Stride is the
  /// rear-view window.
  std::vector<double> hist_total_cache_;
  std::vector<uint64_t> hist_total_stamp_;
  uint64_t step_serial_ = 0;
  /// Candidate pairs enumerated across all stages of the last step (the
  /// step provenance record's candidates_considered).
  size_t last_step_candidates_ = 0;
  obs::ProvenanceSink* provenance_ = nullptr;  // optional, not owned
  parallel::Executor* executor_ = nullptr;     // optional, not owned
};

/// Convenience driver that runs three TemporalMatchers (tables, infoboxes,
/// lists) over a stream of PageObjects.
class PageMatcher {
 public:
  explicit PageMatcher(MatcherConfig config = {});

  void ProcessRevision(int revision_index,
                       const extract::PageObjects& objects);

  /// Attaches a provenance sink to all three matchers (nullptr detaches).
  void SetProvenanceSink(obs::ProvenanceSink* sink);

  /// Attaches an executor to all three matchers (nullptr detaches).
  void SetExecutor(parallel::Executor* executor);

  const IdentityGraph& GraphFor(extract::ObjectType type) const;
  const MatchStats& StatsFor(extract::ObjectType type) const;

  IdentityGraph TakeGraph(extract::ObjectType type);
  MatchStats TakeStats(extract::ObjectType type);

  /// Validates all three per-type matchers into `report`.
  void Validate(somr::ValidationReport* report) const;

  const MatcherConfig& config() const { return tables_.config(); }

 private:
  friend class somr::state::MatcherSerde;

  TemporalMatcher& MatcherFor(extract::ObjectType type);

  TemporalMatcher tables_;
  TemporalMatcher infoboxes_;
  TemporalMatcher lists_;
};

}  // namespace somr::matching
