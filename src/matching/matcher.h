#ifndef SOMR_MATCHING_MATCHER_H_
#define SOMR_MATCHING_MATCHER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "extract/features.h"
#include "extract/object.h"
#include "matching/identity_graph.h"
#include "matching/interface.h"
#include "sim/similarity.h"
#include "text/bag_of_words.h"

namespace somr::matching {

/// Configuration of the multi-stage matcher, defaults set to the paper's
/// published parameter choices (Sec. V-C).
struct MatcherConfig {
  /// Stage-1 neighborhood: |pos(x) - pos(o)| <= theta_pos.
  int theta_pos = 2;
  /// Stage-1 similarity threshold (strict measure, local candidates).
  double theta1 = 0.8;
  /// Stage-2 threshold (strict measure, all pairs).
  double theta2 = 0.6;
  /// Stage-3 threshold (relaxed measure, all pairs).
  double theta3 = 0.4;
  /// Rear-view mirror window k: number of recent non-empty versions of an
  /// object compared against each new instance (Sec. IV-A2).
  int rear_view_window = 5;
  /// Decay factor phi applied per skipped version in the rear view.
  double decay = 0.9;
  /// Inverse-object-frequency token weighting (Sec. IV-B2).
  bool use_idf_weighting = true;
  /// Spatial features: stage 1 and the position tie-breaker. Disabled for
  /// contexts without an order, e.g. the Socrata data lake (Sec. V-B).
  bool use_spatial_features = true;
  /// Stage 1 can be disabled independently for the runtime ablation
  /// (Fig. 11) while keeping the position tie-breaker.
  bool enable_stage1 = true;
  /// Stages 2 and 3 can be disabled for the stage-composition ablation
  /// (stage 2 drives precision, stage 3 recall — Sec. IV-B3).
  bool enable_stage2 = true;
  bool enable_stage3 = true;
  /// Lifetime tie-breaker (prefer objects with longer histories).
  bool enable_lifetime_tiebreak = true;
  /// Bag-of-words construction options.
  extract::FeatureOptions features;
};

/// Runtime accounting for the performance experiments (Fig. 11).
struct MatchStats {
  std::vector<double> step_millis;  // wall time of each matching step
  size_t similarities_computed = 0;
  size_t stage1_matches = 0;
  size_t stage2_matches = 0;
  size_t stage3_matches = 0;
  size_t new_objects = 0;
};

/// Matches the object instances of one object type on one page across its
/// revision stream, building the identity graph incrementally (online):
/// call ProcessRevision once per page version, in order. This implements
/// Algorithm 1 with the three stages of Sec. IV-B3.
class TemporalMatcher : public RevisionMatcher {
 public:
  explicit TemporalMatcher(extract::ObjectType type,
                           MatcherConfig config = {});

  /// Processes one page version. `instances` must be the instances of
  /// this matcher's object type, in page order (position ranks 0..n-1).
  void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) override;

  const IdentityGraph& graph() const override { return graph_; }
  const MatchStats& stats() const { return stats_; }
  const MatcherConfig& config() const { return config_; }

 private:
  struct Tracked {
    int64_t id = 0;
    std::deque<BagOfWords> recent_bags;  // oldest .. newest, size <= k
    int last_position = 0;
    int first_revision = 0;
    int last_revision = 0;
  };

  double DecayedSim(sim::SimilarityKind kind, const Tracked& tracked,
                    const BagOfWords& candidate,
                    const sim::TokenWeighting& weighting);

  /// Tie-break perturbation added to a similarity score; strictly smaller
  /// than any meaningful similarity difference.
  double TieBreakBonus(const Tracked& tracked, int new_position,
                       int revision_index) const;

  extract::ObjectType type_;
  MatcherConfig config_;
  IdentityGraph graph_;
  MatchStats stats_;
  std::vector<Tracked> tracked_;
};

/// Convenience driver that runs three TemporalMatchers (tables, infoboxes,
/// lists) over a stream of PageObjects.
class PageMatcher {
 public:
  explicit PageMatcher(MatcherConfig config = {});

  void ProcessRevision(int revision_index,
                       const extract::PageObjects& objects);

  const IdentityGraph& GraphFor(extract::ObjectType type) const;
  const MatchStats& StatsFor(extract::ObjectType type) const;

 private:
  TemporalMatcher tables_;
  TemporalMatcher infoboxes_;
  TemporalMatcher lists_;
};

}  // namespace somr::matching

#endif  // SOMR_MATCHING_MATCHER_H_
