#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "extract/object.h"

namespace somr::matching {

/// Identifies one object instance within one page's revision stream: the
/// revision index and the instance's position rank among objects of the
/// same type in that revision.
struct VersionRef {
  int revision = 0;
  int position = 0;

  auto operator<=>(const VersionRef&) const = default;
};

/// An identity edge connects an object instance to its successor instance
/// (Definition 1).
using IdentityEdge = std::pair<VersionRef, VersionRef>;

/// One identified object: the chronologically ordered list of its
/// instances across revisions. Adjacent versions may come from
/// non-consecutive revisions (the object was deleted in between).
struct TrackedObjectRecord {
  int64_t object_id = 0;
  extract::ObjectType type = extract::ObjectType::kTable;
  std::vector<VersionRef> versions;
};

/// The identity graph of one page for one object type: a set of linear
/// version chains. This is both the matcher's output and the ground-truth
/// representation of the generator.
class IdentityGraph {
 public:
  IdentityGraph() = default;
  explicit IdentityGraph(extract::ObjectType type) : type_(type) {}

  extract::ObjectType type() const { return type_; }

  /// Starts a new object whose first instance is `ref`; returns its id.
  int64_t AddObject(VersionRef ref);

  /// Appends `ref` as the newest version of `object_id`.
  void AppendVersion(int64_t object_id, VersionRef ref);

  const std::vector<TrackedObjectRecord>& objects() const {
    return objects_;
  }

  size_t ObjectCount() const { return objects_.size(); }
  size_t VersionCount() const;

  /// All identity edges (consecutive version pairs of every object).
  std::vector<IdentityEdge> Edges() const;

  /// Edges as a set for fast lookup during evaluation.
  std::set<IdentityEdge> EdgeSet() const;

  /// The predecessor of instance `ref`, if any.
  std::vector<std::pair<VersionRef, VersionRef>> PredecessorPairs() const;

  /// Object id that contains instance `ref`, or -1.
  int64_t ObjectIdOf(VersionRef ref) const;

 private:
  extract::ObjectType type_ = extract::ObjectType::kTable;
  std::vector<TrackedObjectRecord> objects_;
};

}  // namespace somr::matching
