#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "matching/identity_graph.h"

namespace somr::matching {

/// Serializes an identity graph to a line-oriented text format suitable
/// for publishing matching outputs (the paper releases its gold standard
/// and output datasets in this spirit):
///
///   # somr-identity-graph v1 type=table
///   object 0
///   0 0
///   1 0
///   object 1
///   0 1
///
/// Each object lists its versions as "revision position" pairs in
/// chronological order.
std::string SerializeIdentityGraph(const IdentityGraph& graph);

/// Parses the format written by SerializeIdentityGraph.
StatusOr<IdentityGraph> ParseIdentityGraph(std::string_view text);

}  // namespace somr::matching
