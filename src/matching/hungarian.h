#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace somr::matching {

/// One weighted edge of a bipartite graph.
struct WeightedEdge {
  int left = 0;
  int right = 0;
  double weight = 0.0;
};

/// Computes a maximum-weight bipartite matching (not necessarily perfect)
/// of the given edges over `num_left` x `num_right` nodes using the
/// Hungarian algorithm on a zero-padded square matrix. All edge weights
/// must be positive; absent pairs are treated as weight 0 and never
/// matched. Returns (left, right) index pairs.
///
/// Used by every matching stage (Alg. 1 line 5). The solve runs on the
/// submatrix of nodes actually touched by an edge, so complexity is
/// O(|edges|^3) in the worst case and independent of num_left/num_right
/// — with the retrieval index shortlisting candidates, tracked-object
/// counts far beyond a page's usual few dozen stay within budget.
std::vector<std::pair<int, int>> MaxWeightMatching(
    size_t num_left, size_t num_right,
    const std::vector<WeightedEdge>& edges);

}  // namespace somr::matching
