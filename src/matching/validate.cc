#include "matching/validate.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "retrieval/validate.h"

namespace somr::matching {

void ValidateIdentityGraph(const IdentityGraph& graph,
                           ValidationReport* report,
                           bool positions_unique) {
  std::set<int64_t> seen_ids;
  std::map<VersionRef, int64_t> owner_of;
  const std::vector<TrackedObjectRecord>& objects = graph.objects();
  for (size_t i = 0; i < objects.size(); ++i) {
    const TrackedObjectRecord& object = objects[i];
    if (!seen_ids.insert(object.object_id).second) {
      report->AddIssue("identity_graph")
          << "duplicate object id " << object.object_id;
    }
    if (object.object_id != static_cast<int64_t>(i)) {
      report->AddIssue("identity_graph")
          << "object id " << object.object_id << " at index " << i
          << " (ids must be sequential)";
    }
    if (object.type != graph.type()) {
      report->AddIssue("identity_graph")
          << "object " << object.object_id << " type mismatch";
    }
    if (object.versions.empty()) {
      report->AddIssue("identity_graph")
          << "object " << object.object_id << " has no versions";
      continue;
    }
    for (size_t v = 0; v < object.versions.size(); ++v) {
      const VersionRef& ref = object.versions[v];
      if (ref.revision < 0 || ref.position < 0) {
        report->AddIssue("identity_graph")
            << "object " << object.object_id << " version " << v
            << " has negative revision/position (" << ref.revision << ", "
            << ref.position << ")";
      }
      if (v > 0 && object.versions[v - 1].revision >= ref.revision) {
        report->AddIssue("identity_graph")
            << "object " << object.object_id
            << " revisions not strictly increasing at version " << v
            << " (" << object.versions[v - 1].revision << " -> "
            << ref.revision << ")";
      }
      if (positions_unique) {
        auto [it, inserted] = owner_of.emplace(ref, object.object_id);
        if (!inserted) {
          report->AddIssue("identity_graph")
              << "instance (r" << ref.revision << ", p" << ref.position
              << ") claimed by objects " << it->second << " and "
              << object.object_id << " (graph must be linear)";
        }
      }
    }
  }
}

void ValidateAssignment(const std::vector<int64_t>& assignment,
                        size_t object_count, ValidationReport* report) {
  std::set<int64_t> used;
  for (size_t ni = 0; ni < assignment.size(); ++ni) {
    const int64_t id = assignment[ni];
    if (id < 0) continue;  // new object
    if (id >= static_cast<int64_t>(object_count)) {
      report->AddIssue("matching")
          << "instance " << ni << " assigned to unknown object " << id
          << " (only " << object_count << " objects exist)";
    }
    if (!used.insert(id).second) {
      report->AddIssue("matching")
          << "object " << id
          << " matched to more than one incoming instance "
             "(assignment must be one-to-one)";
    }
  }
}

void ValidateGraphAgainstHistory(
    const IdentityGraph& graph,
    const std::vector<extract::PageObjects>& revisions,
    ValidationReport* report) {
  // Instances covered per revision; compared against the extraction
  // counts afterwards to find orphans.
  std::map<int, std::set<int>> covered;
  for (const TrackedObjectRecord& object : graph.objects()) {
    for (const VersionRef& ref : object.versions) {
      if (ref.revision < 0 ||
          ref.revision >= static_cast<int>(revisions.size())) {
        report->AddIssue("matching")
            << "object " << object.object_id << " references revision "
            << ref.revision << " outside the " << revisions.size()
            << "-revision history";
        continue;
      }
      const std::vector<extract::ObjectInstance>& instances =
          revisions[static_cast<size_t>(ref.revision)].OfType(graph.type());
      if (ref.position < 0 ||
          ref.position >= static_cast<int>(instances.size())) {
        report->AddIssue("matching")
            << "object " << object.object_id << " references position "
            << ref.position << " in revision " << ref.revision
            << " which has only " << instances.size() << " instances";
        continue;
      }
      covered[ref.revision].insert(ref.position);
    }
  }
  for (size_t r = 0; r < revisions.size(); ++r) {
    const size_t extracted = revisions[r].OfType(graph.type()).size();
    const size_t matched = covered[static_cast<int>(r)].size();
    if (matched != extracted) {
      report->AddIssue("matching")
          << "revision " << r << " has " << extracted << " extracted "
          << extract::ObjectTypeName(graph.type()) << " instances but "
          << matched << " are covered by identity chains (orphans)";
    }
  }
}

void ValidateMatcherConfig(const MatcherConfig& config,
                           ValidationReport* report) {
  auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in_unit(config.theta1) || !in_unit(config.theta2) ||
      !in_unit(config.theta3)) {
    report->AddIssue("matching")
        << "stage thresholds must lie in [0, 1] (theta1=" << config.theta1
        << ", theta2=" << config.theta2 << ", theta3=" << config.theta3
        << ")";
  }
  if (config.theta1 < config.theta2 || config.theta2 < config.theta3) {
    report->AddIssue("matching")
        << "stage thresholds must be non-increasing, theta1 >= theta2 >= "
           "theta3 (got "
        << config.theta1 << ", " << config.theta2 << ", " << config.theta3
        << ")";
  }
  if (config.rear_view_window < 1) {
    report->AddIssue("matching")
        << "rear_view_window must be >= 1 (got "
        << config.rear_view_window << ")";
  }
  if (config.decay <= 0.0 || config.decay > 1.0) {
    report->AddIssue("matching")
        << "decay must lie in (0, 1] (got " << config.decay << ")";
  }
  if (config.theta_pos < 0) {
    report->AddIssue("matching")
        << "theta_pos must be >= 0 (got " << config.theta_pos << ")";
  }
}

void TemporalMatcher::Validate(ValidationReport* report) const {
  ValidateMatcherConfig(config_, report);
  ValidateIdentityGraph(graph_, report, input_positions_unique_);
  if (tracked_.size() != graph_.ObjectCount()) {
    report->AddIssue("matching")
        << "tracked-object table has " << tracked_.size()
        << " entries but the graph has " << graph_.ObjectCount()
        << " objects";
    return;
  }
  const size_t window = static_cast<size_t>(config_.rear_view_window);
  for (size_t i = 0; i < tracked_.size(); ++i) {
    const Tracked& t = tracked_[i];
    if (t.id != static_cast<int64_t>(i)) {
      report->AddIssue("matching")
          << "tracked entry " << i << " carries id " << t.id;
    }
    if (t.recent_bags.size() > window || t.recent_flat.size() > window) {
      report->AddIssue("matching")
          << "object " << t.id << " rear-view depth "
          << std::max(t.recent_bags.size(), t.recent_flat.size())
          << " exceeds window k=" << window;
    }
    const std::vector<TrackedObjectRecord>& objects = graph_.objects();
    if (i < objects.size() && !objects[i].versions.empty()) {
      const VersionRef& newest = objects[i].versions.back();
      if (t.last_revision != newest.revision ||
          t.last_position != newest.position) {
        report->AddIssue("matching")
            << "object " << t.id << " tracked tail (r" << t.last_revision
            << ", p" << t.last_position << ") disagrees with graph tail (r"
            << newest.revision << ", p" << newest.position << ")";
      }
      if (objects[i].versions.front().revision < t.first_revision) {
        report->AddIssue("matching")
            << "object " << t.id << " first_revision " << t.first_revision
            << " is newer than its first graph version r"
            << objects[i].versions.front().revision;
      }
    }
  }
  // Cross-check the retrieval index against the rear-view windows it
  // shadows (the "retrieval_index" registered validator).
  if (index_ != nullptr) {
    std::vector<const std::deque<FlatBag>*> windows;
    windows.reserve(tracked_.size());
    for (const Tracked& t : tracked_) windows.push_back(&t.recent_flat);
    retrieval::ValidateCandidateIndex(*index_, windows, report);
  }
}

void PageMatcher::Validate(ValidationReport* report) const {
  tables_.Validate(report);
  infoboxes_.Validate(report);
  lists_.Validate(report);
}

}  // namespace somr::matching
