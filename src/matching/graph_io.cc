#include "matching/graph_io.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace somr::matching {

std::string SerializeIdentityGraph(const IdentityGraph& graph) {
  std::string out = "# somr-identity-graph v1 type=";
  out += extract::ObjectTypeName(graph.type());
  out += '\n';
  for (const TrackedObjectRecord& object : graph.objects()) {
    out += "object " + std::to_string(object.object_id) + "\n";
    for (const VersionRef& version : object.versions) {
      out += std::to_string(version.revision) + " " +
             std::to_string(version.position) + "\n";
    }
  }
  return out;
}

StatusOr<IdentityGraph> ParseIdentityGraph(std::string_view text) {
  std::vector<std::string_view> lines = SplitString(text, '\n');
  if (lines.empty()) return Status::ParseError("empty identity graph");
  std::string_view header = StripAsciiWhitespace(lines[0]);
  if (header.substr(0, 28) != "# somr-identity-graph v1 typ") {
    return Status::ParseError("missing identity-graph header");
  }
  extract::ObjectType type = extract::ObjectType::kTable;
  size_t eq = header.rfind('=');
  if (eq != std::string_view::npos) {
    std::string_view name = header.substr(eq + 1);
    if (name == "infobox") {
      type = extract::ObjectType::kInfobox;
    } else if (name == "list") {
      type = extract::ObjectType::kList;
    } else if (name != "table") {
      return Status::ParseError("unknown object type: " +
                                std::string(name));
    }
  }

  IdentityGraph graph(type);
  int64_t current = -1;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = StripAsciiWhitespace(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    if (line.substr(0, 7) == "object ") {
      current = -2;  // next version line starts the object
      continue;
    }
    int revision = 0, position = 0;
    if (std::sscanf(std::string(line).c_str(), "%d %d", &revision,
                    &position) != 2) {
      return Status::ParseError("bad version line: " + std::string(line));
    }
    if (current == -1) {
      return Status::ParseError("version line before any object");
    }
    if (current == -2) {
      current = graph.AddObject({revision, position});
    } else {
      graph.AppendVersion(current, {revision, position});
    }
  }
  return graph;
}

}  // namespace somr::matching
