#pragma once

#include <vector>

#include "extract/object.h"
#include "matching/identity_graph.h"

namespace somr::matching {

/// Common interface of all temporal-matching approaches (ours and the
/// baselines), so the evaluation harness can drive them uniformly. All
/// implementations are online: one call per page version, in order.
class RevisionMatcher {
 public:
  virtual ~RevisionMatcher() = default;

  /// Processes the instances of this matcher's object type for one page
  /// version, in page order (position ranks 0..n-1).
  virtual void ProcessRevision(
      int revision_index,
      const std::vector<extract::ObjectInstance>& instances) = 0;

  /// The identity graph built so far.
  virtual const IdentityGraph& graph() const = 0;
};

}  // namespace somr::matching
