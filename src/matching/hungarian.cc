#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

namespace somr::matching {

std::vector<std::pair<int, int>> MaxWeightMatching(
    size_t num_left, size_t num_right,
    const std::vector<WeightedEdge>& edges) {
  if (num_left == 0 || num_right == 0 || edges.empty()) return {};

  // Square cost matrix (1-indexed), minimization of negated weights.
  // Padding rows/columns have cost 0, so leaving a node unmatched is
  // always an option.
  const size_t n = std::max(num_left, num_right);
  std::vector<std::vector<double>> cost(n + 1,
                                        std::vector<double>(n + 1, 0.0));
  for (const WeightedEdge& e : edges) {
    if (e.left < 0 || static_cast<size_t>(e.left) >= num_left) continue;
    if (e.right < 0 || static_cast<size_t>(e.right) >= num_right) continue;
    // Keep the best weight for duplicate pairs.
    double c = -e.weight;
    double& slot = cost[static_cast<size_t>(e.left) + 1]
                       [static_cast<size_t>(e.right) + 1];
    slot = std::min(slot, c);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[i0][j] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::pair<int, int>> matching;
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i == 0) continue;
    if (i <= num_left && j <= num_right && cost[i][j] < 0.0) {
      matching.emplace_back(static_cast<int>(i - 1),
                            static_cast<int>(j - 1));
    }
  }
  std::sort(matching.begin(), matching.end());
  return matching;
}

}  // namespace somr::matching
