#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

namespace somr::matching {

std::vector<std::pair<int, int>> MaxWeightMatching(
    size_t num_left, size_t num_right,
    const std::vector<WeightedEdge>& edges) {
  if (num_left == 0 || num_right == 0 || edges.empty()) return {};

  // Only nodes touched by an edge can appear in the matching (padding
  // costs 0 and the result filter below demands cost < 0), so the solve
  // runs on the touched submatrix: with e edges it is O(e^3) regardless
  // of how many candidate-free nodes the caller's id spaces hold. The
  // ascending relabeling preserves the relative row/column order of the
  // full matrix, so the solver walks the same sub-structure it would
  // inside the padded solve.
  std::vector<int> lefts, rights;
  lefts.reserve(edges.size());
  rights.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    if (e.left < 0 || static_cast<size_t>(e.left) >= num_left) continue;
    if (e.right < 0 || static_cast<size_t>(e.right) >= num_right) continue;
    lefts.push_back(e.left);
    rights.push_back(e.right);
  }
  std::sort(lefts.begin(), lefts.end());
  lefts.erase(std::unique(lefts.begin(), lefts.end()), lefts.end());
  std::sort(rights.begin(), rights.end());
  rights.erase(std::unique(rights.begin(), rights.end()), rights.end());
  if (lefts.empty() || rights.empty()) return {};
  const size_t compact_left = lefts.size();
  const size_t compact_right = rights.size();

  // Square cost matrix (1-indexed), minimization of negated weights.
  // Padding rows/columns have cost 0, so leaving a node unmatched is
  // always an option.
  const size_t n = std::max(compact_left, compact_right);
  std::vector<std::vector<double>> cost(n + 1,
                                        std::vector<double>(n + 1, 0.0));
  for (const WeightedEdge& e : edges) {
    if (e.left < 0 || static_cast<size_t>(e.left) >= num_left) continue;
    if (e.right < 0 || static_cast<size_t>(e.right) >= num_right) continue;
    const size_t li = static_cast<size_t>(
        std::lower_bound(lefts.begin(), lefts.end(), e.left) -
        lefts.begin());
    const size_t ri = static_cast<size_t>(
        std::lower_bound(rights.begin(), rights.end(), e.right) -
        rights.begin());
    // Keep the best weight for duplicate pairs.
    double c = -e.weight;
    double& slot = cost[li + 1][ri + 1];
    slot = std::min(slot, c);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[i0][j] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::pair<int, int>> matching;
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i == 0) continue;
    if (i <= compact_left && j <= compact_right && cost[i][j] < 0.0) {
      matching.emplace_back(lefts[i - 1], rights[j - 1]);
    }
  }
  std::sort(matching.begin(), matching.end());
  return matching;
}

}  // namespace somr::matching
