#include "matching/identity_graph.h"

namespace somr::matching {

int64_t IdentityGraph::AddObject(VersionRef ref) {
  TrackedObjectRecord record;
  record.object_id = static_cast<int64_t>(objects_.size());
  record.type = type_;
  record.versions.push_back(ref);
  objects_.push_back(std::move(record));
  return objects_.back().object_id;
}

void IdentityGraph::AppendVersion(int64_t object_id, VersionRef ref) {
  objects_[static_cast<size_t>(object_id)].versions.push_back(ref);
}

size_t IdentityGraph::VersionCount() const {
  size_t total = 0;
  for (const TrackedObjectRecord& obj : objects_) {
    total += obj.versions.size();
  }
  return total;
}

std::vector<IdentityEdge> IdentityGraph::Edges() const {
  std::vector<IdentityEdge> edges;
  for (const TrackedObjectRecord& obj : objects_) {
    for (size_t i = 1; i < obj.versions.size(); ++i) {
      edges.emplace_back(obj.versions[i - 1], obj.versions[i]);
    }
  }
  return edges;
}

std::set<IdentityEdge> IdentityGraph::EdgeSet() const {
  std::vector<IdentityEdge> edges = Edges();
  return std::set<IdentityEdge>(edges.begin(), edges.end());
}

std::vector<std::pair<VersionRef, VersionRef>>
IdentityGraph::PredecessorPairs() const {
  return Edges();
}

int64_t IdentityGraph::ObjectIdOf(VersionRef ref) const {
  for (const TrackedObjectRecord& obj : objects_) {
    for (const VersionRef& v : obj.versions) {
      if (v == ref) return obj.object_id;
    }
  }
  return -1;
}

}  // namespace somr::matching
