#include "baselines/schema_baseline.h"

#include <gtest/gtest.h>

namespace somr::baselines {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance WithSchema(int position, std::vector<std::string> schema) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = position;
  obj.schema = std::move(schema);
  obj.rows = {obj.schema, {"data", "row"}};
  return obj;
}

TEST(SchemaBaselineTest, SameSchemaMatches) {
  SchemaBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {WithSchema(0, {"Year", "Result"})});
  baseline.ProcessRevision(1, {WithSchema(0, {"Year", "Result"})});
  EXPECT_EQ(baseline.graph().ObjectCount(), 1u);
}

TEST(SchemaBaselineTest, ContentChangesIrrelevant) {
  SchemaBaseline baseline(ObjectType::kTable);
  ObjectInstance a = WithSchema(0, {"Year", "Result"});
  ObjectInstance b = WithSchema(0, {"Year", "Result"});
  b.rows = {b.schema, {"other", "cells"}, {"more", "data"}};
  baseline.ProcessRevision(0, {a});
  baseline.ProcessRevision(1, {b});
  EXPECT_EQ(baseline.graph().ObjectCount(), 1u);
}

TEST(SchemaBaselineTest, DifferentSchemaIsNewObject) {
  SchemaBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {WithSchema(0, {"Year", "Result"})});
  baseline.ProcessRevision(1, {WithSchema(0, {"Name", "Location"})});
  EXPECT_EQ(baseline.graph().ObjectCount(), 2u);
}

TEST(SchemaBaselineTest, SameSchemaTwiceNeedsTieBreak) {
  // Two tables with identical schema: position decides (lifetimes equal).
  SchemaBaseline baseline(ObjectType::kTable);
  ObjectInstance a = WithSchema(0, {"Year", "Result"});
  ObjectInstance b = WithSchema(1, {"Year", "Result"});
  baseline.ProcessRevision(0, {a, b});
  baseline.ProcessRevision(1, {a, b});
  const auto& objects = baseline.graph().objects();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].versions[1].position, 0);
  EXPECT_EQ(objects[1].versions[1].position, 1);
}

TEST(SchemaBaselineTest, HeaderlessTablesMatchOnEmptySchemas) {
  SchemaBaseline baseline(ObjectType::kTable);
  ObjectInstance bare;
  bare.type = ObjectType::kTable;
  bare.position = 0;
  bare.rows = {{"just", "data"}};
  baseline.ProcessRevision(0, {bare});
  baseline.ProcessRevision(1, {bare});
  // Ruzicka of two empty schema bags is 1.0, so header-less tables
  // collapse onto each other — a known weakness of this baseline.
  EXPECT_EQ(baseline.graph().ObjectCount(), 1u);
}

TEST(SchemaBaselineTest, PartialSchemaOverlapAboveThreshold) {
  SchemaBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(
      0, {WithSchema(0, {"Year", "Result", "Category"})});
  // One header renamed: token overlap 2/4 = 0.5 >= default threshold.
  baseline.ProcessRevision(1,
                           {WithSchema(0, {"Year", "Result", "Prize"})});
  EXPECT_EQ(baseline.graph().ObjectCount(), 1u);
}

}  // namespace
}  // namespace somr::baselines
