#include "baselines/subject_column.h"

#include <gtest/gtest.h>

namespace somr::baselines {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance MakeTable(std::vector<std::string> schema,
                         std::vector<std::vector<std::string>> data) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.schema = std::move(schema);
  if (!obj.schema.empty()) obj.rows.push_back(obj.schema);
  for (auto& row : data) obj.rows.push_back(std::move(row));
  return obj;
}

TEST(SubjectColumnTest, PrefersUniqueTextColumn) {
  ObjectInstance table = MakeTable(
      {"Rank", "City", "Population"},
      {{"1", "Berlin", "3700000"},
       {"2", "Hamburg", "1800000"},
       {"3", "Munich", "1500000"}});
  EXPECT_EQ(DetectSubjectColumn(table), 1);
}

TEST(SubjectColumnTest, LeftBiasBreaksNearTies) {
  ObjectInstance table = MakeTable(
      {"Name", "Partner"},
      {{"Alice", "Xavier"}, {"Bob", "Yann"}, {"Cara", "Zoe"}});
  EXPECT_EQ(DetectSubjectColumn(table), 0);
}

TEST(SubjectColumnTest, DuplicatedColumnLoses) {
  ObjectInstance table = MakeTable(
      {"Category", "Work"},
      {{"Best Actor", "Film A"},
       {"Best Actor", "Film B"},
       {"Best Actor", "Film C"}});
  EXPECT_EQ(DetectSubjectColumn(table), 1);
}

TEST(SubjectColumnTest, EmptyTableReturnsMinusOne) {
  ObjectInstance empty;
  empty.type = ObjectType::kTable;
  EXPECT_EQ(DetectSubjectColumn(empty), -1);
  // Header-only table has no data rows.
  ObjectInstance header_only = MakeTable({"A", "B"}, {});
  EXPECT_EQ(DetectSubjectColumn(header_only), -1);
}

TEST(SubjectColumnTest, ColumnValuesSkipHeaderRow) {
  ObjectInstance table = MakeTable(
      {"Name", "Year"}, {{"Alpha", "2001"}, {"Beta", "2002"}});
  auto values = ColumnValues(table, 0);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "Alpha");
  EXPECT_EQ(values[1], "Beta");
}

TEST(SubjectColumnTest, ColumnValuesHandleRaggedRows) {
  ObjectInstance table = MakeTable({"A", "B"}, {{"x"}, {"y", "z"}});
  auto values = ColumnValues(table, 1);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "z");
}

TEST(SubjectColumnTest, NoSchemaUsesAllRows) {
  ObjectInstance table;
  table.type = ObjectType::kTable;
  table.rows = {{"Alpha", "1"}, {"Beta", "2"}};
  auto values = ColumnValues(table, 0);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(DetectSubjectColumn(table), 0);
}

}  // namespace
}  // namespace somr::baselines
