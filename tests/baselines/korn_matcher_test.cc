#include "baselines/korn_matcher.h"

#include <gtest/gtest.h>

namespace somr::baselines {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance AwardTable(int position, std::vector<std::string> works) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = position;
  obj.schema = {"Year", "Work", "Result"};
  obj.rows.push_back(obj.schema);
  int year = 2000;
  for (std::string& work : works) {
    obj.rows.push_back({std::to_string(year++), std::move(work),
                        "Nominated"});
  }
  return obj;
}

TEST(KornMatcherTest, StableSubjectEntitiesMatch) {
  KornMatcher matcher;
  ObjectInstance t = AwardTable(0, {"Film A", "Film B", "Film C"});
  matcher.ProcessRevision(0, {t});
  matcher.ProcessRevision(1, {t});
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
}

TEST(KornMatcherTest, GrowingEntitySetStillMatches) {
  KornMatcher matcher;
  matcher.ProcessRevision(0, {AwardTable(0, {"Film A", "Film B",
                                             "Film C"})});
  // One work added: overlap 3/4 = 0.75 >= threshold.
  matcher.ProcessRevision(
      1, {AwardTable(0, {"Film A", "Film B", "Film C", "Film D"})});
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
}

TEST(KornMatcherTest, DisjointEntitiesAreNewObjects) {
  KornMatcher matcher;
  matcher.ProcessRevision(0, {AwardTable(0, {"Film A", "Film B"})});
  matcher.ProcessRevision(1, {AwardTable(0, {"Film X", "Film Y"})});
  EXPECT_EQ(matcher.graph().ObjectCount(), 2u);
}

TEST(KornMatcherTest, MovedTableFollowedByEntities) {
  KornMatcher matcher;
  ObjectInstance a = AwardTable(0, {"Film A", "Film B"});
  ObjectInstance b = AwardTable(1, {"Film X", "Film Y"});
  matcher.ProcessRevision(0, {a, b});
  a.position = 1;
  b.position = 0;
  matcher.ProcessRevision(1, {b, a});
  const auto& objects = matcher.graph().objects();
  ASSERT_EQ(objects.size(), 2u);
  // Object 0 (subject entities A/B) must now be at position 1.
  EXPECT_EQ(objects[0].versions[1].position, 1);
}

TEST(KornMatcherTest, TablesWithoutSubjectColumnsCollapseGracefully) {
  KornMatcher matcher;
  ObjectInstance empty;
  empty.type = ObjectType::kTable;
  empty.position = 0;
  matcher.ProcessRevision(0, {empty});
  matcher.ProcessRevision(1, {empty});
  // Two empty entity sets have Jaccard 1.0 by convention: matched.
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
}

TEST(KornMatcherTest, ChoosesBestOverlapAmongCandidates) {
  KornMatcher matcher;
  ObjectInstance a = AwardTable(0, {"Film A", "Film B", "Film C"});
  ObjectInstance b = AwardTable(1, {"Film D", "Film E", "Film F"});
  matcher.ProcessRevision(0, {a, b});
  // New revision: the tables swap places; one keeps 2 of A's films, the
  // other keeps 2 of B's.
  ObjectInstance b2 = AwardTable(0, {"Film D", "Film E", "Film H"});
  ObjectInstance a2 = AwardTable(1, {"Film A", "Film B", "Film G"});
  matcher.ProcessRevision(1, {b2, a2});
  const auto& graph = matcher.graph();
  EXPECT_EQ(graph.ObjectCount(), 2u);
  // Object 0 (entities A*) continues at position 1 in revision 1.
  EXPECT_EQ(graph.objects()[0].versions[1].position, 1);
}

}  // namespace
}  // namespace somr::baselines
