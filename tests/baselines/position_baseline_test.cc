#include "baselines/position_baseline.h"

#include <gtest/gtest.h>

namespace somr::baselines {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance At(int position) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = position;
  obj.rows = {{"content " + std::to_string(position)}};
  return obj;
}

TEST(PositionBaselineTest, SamePositionMatches) {
  PositionBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {At(0), At(1)});
  baseline.ProcessRevision(1, {At(0), At(1)});
  EXPECT_EQ(baseline.graph().ObjectCount(), 2u);
  EXPECT_EQ(baseline.graph().Edges().size(), 2u);
}

TEST(PositionBaselineTest, IgnoresContentEntirely) {
  PositionBaseline baseline(ObjectType::kTable);
  ObjectInstance a = At(0);
  baseline.ProcessRevision(0, {a});
  ObjectInstance b = At(0);
  b.rows = {{"totally different"}};
  baseline.ProcessRevision(1, {b});
  // Content changed, same position: still matched.
  EXPECT_EQ(baseline.graph().ObjectCount(), 1u);
}

TEST(PositionBaselineTest, NewTrailingPositionIsNewObject) {
  PositionBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {At(0), At(1)});
  baseline.ProcessRevision(1, {At(0), At(1), At(2)});
  EXPECT_EQ(baseline.graph().ObjectCount(), 3u);
}

TEST(PositionBaselineTest, ShrinkingPageDropsTail) {
  PositionBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {At(0), At(1), At(2)});
  baseline.ProcessRevision(1, {At(0)});
  baseline.ProcessRevision(2, {At(0), At(1)});
  // Position 1 in revision 2 cannot match the revision-0 object (the
  // baseline has no rear view): it becomes a new object.
  EXPECT_EQ(baseline.graph().ObjectCount(), 4u);
}

TEST(PositionBaselineTest, EmptyRevisionResetsAll) {
  PositionBaseline baseline(ObjectType::kTable);
  baseline.ProcessRevision(0, {At(0)});
  baseline.ProcessRevision(1, {});
  baseline.ProcessRevision(2, {At(0)});
  EXPECT_EQ(baseline.graph().ObjectCount(), 2u);
  EXPECT_TRUE(baseline.graph().Edges().empty());
}

TEST(PositionBaselineTest, GraphTypeMatchesConstruction) {
  PositionBaseline baseline(ObjectType::kInfobox);
  EXPECT_EQ(baseline.graph().type(), ObjectType::kInfobox);
}

}  // namespace
}  // namespace somr::baselines
