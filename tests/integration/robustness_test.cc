// Failure-injection / robustness tests: all parsers must be total (never
// crash, never loop) on mutated and adversarial input, and their output
// must stay well-formed enough to re-serialize.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "extract/html_extractor.h"
#include "extract/wikitext_extractor.h"
#include "html/parser.h"
#include "matching/matcher.h"
#include "wikigen/evolver.h"
#include "wikitext/parser.h"
#include "wikitext/serializer.h"
#include "xmldump/dump.h"

namespace somr {
namespace {

/// Applies `n` random byte mutations (insert / delete / replace).
std::string Mutate(std::string input, Rng& rng, int n) {
  for (int i = 0; i < n; ++i) {
    if (input.empty()) {
      input.push_back(static_cast<char>(rng.UniformInt(32, 126)));
      continue;
    }
    size_t pos = rng.Index(input.size());
    switch (rng.UniformInt(0, 2)) {
      case 0:
        input[pos] = static_cast<char>(rng.UniformInt(1, 255));
        break;
      case 1:
        input.erase(pos, 1);
        break;
      default:
        input.insert(pos, 1, static_cast<char>(rng.UniformInt(1, 255)));
    }
  }
  return input;
}

std::string SampleWikitext(uint64_t seed) {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 4;
  config.num_revisions = 5;
  config.seed = seed;
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  return page.revisions.back().wikitext;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, WikitextParserIsTotal) {
  Rng rng(GetParam());
  std::string source = SampleWikitext(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::string mutated = Mutate(source, rng, 1 + round);
    wikitext::Document doc = wikitext::ParseWikitext(mutated);
    // Whatever was parsed must re-serialize and re-parse without crash.
    std::string reserialized = wikitext::SerializeDocument(doc);
    wikitext::ParseWikitext(reserialized);
    extract::ExtractFromWikitextSource(mutated);
  }
}

TEST_P(ParserFuzz, HtmlParserIsTotal) {
  Rng rng(GetParam() + 1000);
  wikigen::EvolverConfig config;
  config.num_revisions = 3;
  config.seed = GetParam();
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  std::string source = page.revisions.back().html;
  for (int round = 0; round < 20; ++round) {
    std::string mutated = Mutate(source, rng, 1 + round);
    std::unique_ptr<html::Node> doc = html::ParseHtml(mutated);
    ASSERT_NE(doc, nullptr);
    doc->OuterHtml();  // serialization must not crash either
    extract::ExtractFromHtmlSource(mutated);
  }
}

TEST_P(ParserFuzz, XmlDumpReaderIsTotal) {
  Rng rng(GetParam() + 2000);
  xmldump::Dump dump;
  xmldump::PageHistory history;
  history.title = "T";
  xmldump::Revision rev;
  rev.text = SampleWikitext(GetParam());
  history.revisions.push_back(rev);
  dump.pages.push_back(history);
  std::string xml = xmldump::WriteDump(dump);
  for (int round = 0; round < 20; ++round) {
    std::string mutated = Mutate(xml, rng, 1 + 2 * round);
    auto result = xmldump::ReadDump(mutated);  // ok or error, never crash
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(0, 10));

TEST(RobustnessTest, PureGarbageInputs) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::string garbage;
    size_t length = rng.Index(500);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(1, 255)));
    }
    wikitext::ParseWikitext(garbage);
    html::ParseHtml(garbage);
    (void)xmldump::ReadDump(garbage);
  }
}

TEST(RobustnessTest, PathologicalMarkup) {
  // Deeply "nested" and unbalanced constructs must not recurse or loop.
  std::string opens(20000, '{');
  wikitext::ParseWikitext(opens);
  std::string brackets(20000, '[');
  wikitext::ParseWikitext(brackets);
  std::string tags;
  for (int i = 0; i < 5000; ++i) tags += "<div>";
  html::ParseHtml(tags);
  std::string mixed = "{|\n";
  for (int i = 0; i < 5000; ++i) mixed += "|-\n| x\n";
  wikitext::Document doc = wikitext::ParseWikitext(mixed);
  EXPECT_EQ(doc.elements.size(), 1u);
}

TEST(RobustnessTest, MatcherToleratesAdversarialPositions) {
  // Positions are normally dense 0..n-1; a buggy caller might pass
  // duplicates or gaps. The matcher must not crash and must still
  // account for every instance.
  matching::TemporalMatcher matcher(extract::ObjectType::kTable);
  extract::ObjectInstance a;
  a.type = extract::ObjectType::kTable;
  a.position = 5;  // gap
  a.rows = {{"alpha"}};
  extract::ObjectInstance b = a;
  b.position = 5;  // duplicate position
  b.rows = {{"beta"}};
  matcher.ProcessRevision(0, {a, b});
  matcher.ProcessRevision(1, {a});
  EXPECT_GE(matcher.graph().ObjectCount(), 2u);
  EXPECT_EQ(matcher.graph().VersionCount(), 3u);
}

TEST(RobustnessTest, EmptyAndWhitespaceRevisions) {
  matching::TemporalMatcher matcher(extract::ObjectType::kList);
  for (int r = 0; r < 5; ++r) {
    matcher.ProcessRevision(r, {});
  }
  EXPECT_EQ(matcher.graph().ObjectCount(), 0u);
  extract::PageObjects objects = extract::ExtractFromWikitextSource("   \n\n  ");
  EXPECT_EQ(objects.TotalCount(), 0u);
}

}  // namespace
}  // namespace somr
