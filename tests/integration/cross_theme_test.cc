// Consolidated cross-theme properties: over every page theme, the full
// pipeline must preserve its invariants and our approach must dominate
// the position baseline on pooled edge quality.

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "extract/html_extractor.h"
#include "extract/wikitext_extractor.h"
#include "wikigen/evolver.h"

namespace somr {
namespace {

constexpr wikigen::PageTheme kThemes[] = {
    wikigen::PageTheme::kAwards, wikigen::PageTheme::kSettlement,
    wikigen::PageTheme::kSports, wikigen::PageTheme::kDiscography,
    wikigen::PageTheme::kGeneric};

class CrossTheme : public ::testing::TestWithParam<int> {};

std::vector<std::vector<extract::ObjectInstance>> Instances(
    const wikigen::GeneratedPage& page, extract::ObjectType type) {
  std::vector<std::vector<extract::ObjectInstance>> instances;
  for (const auto& rev : page.revisions) {
    instances.push_back(
        extract::ExtractFromWikitextSource(rev.wikitext).OfType(type));
  }
  return instances;
}

TEST_P(CrossTheme, TruthMatchesExtractionForAllTypes) {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 5;
  config.num_revisions = 35;
  config.theme = kThemes[GetParam()];
  config.seed = 900 + static_cast<uint64_t>(GetParam());
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    auto instances = Instances(page, type);
    size_t extracted = 0;
    for (const auto& revision : instances) extracted += revision.size();
    EXPECT_EQ(page.TruthFor(type).VersionCount(), extracted)
        << extract::ObjectTypeName(type);
  }
}

TEST_P(CrossTheme, OursBeatsPositionPooled) {
  eval::EdgeMetrics ours, position;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    wikigen::EvolverConfig config;
    config.focal_type = extract::ObjectType::kTable;
    config.max_focal_objects = 6;
    config.num_revisions = 50;
    config.theme = kThemes[GetParam()];
    config.seed = 7000 + seed;
    wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
    auto instances = Instances(page, extract::ObjectType::kTable);
    ours.Add(eval::CompareEdges(
        page.truth_tables,
        eval::RunApproachOnPage(eval::Approach::kOurs,
                                extract::ObjectType::kTable, instances)));
    position.Add(eval::CompareEdges(
        page.truth_tables,
        eval::RunApproachOnPage(eval::Approach::kPosition,
                                extract::ObjectType::kTable, instances)));
  }
  EXPECT_GE(ours.F1(), position.F1())
      << "theme " << GetParam();
  EXPECT_GT(ours.F1(), 0.97) << "theme " << GetParam();
}

TEST_P(CrossTheme, HtmlAndWikitextPipelinesAgree) {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 4;
  config.num_revisions = 25;
  config.theme = kThemes[GetParam()];
  config.seed = 1200 + static_cast<uint64_t>(GetParam());
  config.html_web_chrome = GetParam() % 2 == 0;
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  for (size_t r = 0; r < page.revisions.size(); ++r) {
    extract::PageObjects wiki =
        extract::ExtractFromWikitextSource(page.revisions[r].wikitext);
    extract::PageObjects html =
        extract::ExtractFromHtmlSource(page.revisions[r].html);
    ASSERT_EQ(wiki.tables.size(), html.tables.size()) << "revision " << r;
    ASSERT_EQ(wiki.lists.size(), html.lists.size()) << "revision " << r;
    ASSERT_EQ(wiki.infoboxes.size(), html.infoboxes.size())
        << "revision " << r;
    for (size_t i = 0; i < wiki.tables.size(); ++i) {
      EXPECT_EQ(wiki.tables[i].rows, html.tables[i].rows);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Themes, CrossTheme, ::testing::Range(0, 5));

}  // namespace
}  // namespace somr
