// Integration tests exercising the full stack: generator -> XML dump ->
// parsing -> extraction -> matching -> evaluation, including the
// validation datasets (Internet-Archive crawls, Socrata).

#include <gtest/gtest.h>

#include "archive/crawl_sampler.h"
#include "archive/socrata.h"
#include "core/changes.h"
#include "core/pipeline.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/trivial.h"
#include "wikigen/corpus.h"

namespace somr {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    wikigen::CorpusConfig config;
    config.focal_type = extract::ObjectType::kTable;
    config.strata_caps = {2, 6};
    config.pages_per_stratum = 3;
    config.min_revisions = 30;
    config.max_revisions = 60;
    config.seed = 123;
    corpus_ = new wikigen::GoldCorpus(wikigen::GenerateGoldCorpus(config));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static wikigen::GoldCorpus* corpus_;
};

wikigen::GoldCorpus* EndToEnd::corpus_ = nullptr;

TEST_F(EndToEnd, DumpPipelineBeatsBaselinesOnEdges) {
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(*corpus_));
  auto dump = xmldump::ReadDump(xml);
  ASSERT_TRUE(dump.ok());

  eval::EdgeMetrics ours_total, position_total;
  for (size_t p = 0; p < dump->pages.size(); ++p) {
    auto revisions = eval::ExtractRevisionObjects(dump->pages[p]);
    auto tables = eval::SliceType(revisions, extract::ObjectType::kTable);
    auto ours = eval::RunApproachOnPage(eval::Approach::kOurs,
                                        extract::ObjectType::kTable,
                                        tables);
    auto position = eval::RunApproachOnPage(eval::Approach::kPosition,
                                            extract::ObjectType::kTable,
                                            tables);
    const auto& truth = corpus_->pages[p].truth_tables;
    eval::EdgeMetrics ours_m = eval::CompareEdges(truth, ours);
    eval::EdgeMetrics pos_m = eval::CompareEdges(truth, position);
    ours_total.true_positives += ours_m.true_positives;
    ours_total.false_positives += ours_m.false_positives;
    ours_total.false_negatives += ours_m.false_negatives;
    position_total.true_positives += pos_m.true_positives;
    position_total.false_positives += pos_m.false_positives;
    position_total.false_negatives += pos_m.false_negatives;
  }
  EXPECT_GT(ours_total.F1(), 0.97);
  EXPECT_GT(ours_total.F1(), position_total.F1());
}

TEST_F(EndToEnd, NonTrivialEdgeMetricsComputable) {
  xmldump::Dump dump = wikigen::CorpusToDump(*corpus_);
  const auto& page = corpus_->pages[0];
  auto revisions = eval::ExtractRevisionObjects(dump.pages[0]);
  auto tables = eval::SliceType(revisions, extract::ObjectType::kTable);
  auto nontrivial = eval::NonTrivialEdges(tables, page.truth_tables);
  // Non-trivial edges are a strict subset of all edges.
  EXPECT_LT(nontrivial.size(), page.truth_tables.EdgeSet().size());
  auto ours = eval::RunApproachOnPage(
      eval::Approach::kOurs, extract::ObjectType::kTable, tables);
  eval::EdgeMetrics m =
      eval::CompareEdges(page.truth_tables, ours, &nontrivial);
  EXPECT_GE(m.Precision(), 0.0);  // just exercises the path
}

TEST_F(EndToEnd, InternetArchiveCrawlsStillMatchable) {
  Rng rng(55);
  const auto& page = corpus_->pages.back();
  archive::SampledHistory sampled = archive::SampleCrawls(page, 30.0, rng);
  ASSERT_GT(sampled.page.revisions.size(), 2u);
  auto revisions = eval::ExtractRevisionObjects(sampled.page);
  auto tables = eval::SliceType(revisions, extract::ObjectType::kTable);
  // Truth restriction and HTML extraction agree instance-for-instance.
  size_t extracted = 0;
  for (const auto& r : tables) extracted += r.size();
  EXPECT_EQ(extracted, sampled.truth_tables.VersionCount());
  auto ours = eval::RunApproachOnPage(
      eval::Approach::kOurs, extract::ObjectType::kTable, tables);
  eval::EdgeMetrics m = eval::CompareEdges(sampled.truth_tables, ours);
  EXPECT_GT(m.F1(), 0.8);  // lower resolution makes the problem harder
}

TEST_F(EndToEnd, SocrataMatchingWithoutSpatialFeatures) {
  archive::SocrataConfig config;
  config.datasets_per_subdomain = 15;
  config.num_snapshots = 6;
  config.seed = 77;
  auto contexts = archive::GenerateSocrata(config);
  matching::MatcherConfig matcher_config;
  matcher_config.use_spatial_features = false;
  for (const archive::SocrataContext& context : contexts) {
    matching::TemporalMatcher matcher(extract::ObjectType::kTable,
                                      matcher_config);
    for (size_t s = 0; s < context.snapshots.size(); ++s) {
      matcher.ProcessRevision(static_cast<int>(s), context.snapshots[s]);
    }
    eval::EdgeMetrics m =
        eval::CompareEdges(context.truth, matcher.graph());
    // Large datasets carry lots of evidence: near-perfect matching.
    EXPECT_GT(m.F1(), 0.97) << context.subdomain;
  }
}

TEST_F(EndToEnd, PipelineMatchesHarnessResults) {
  xmldump::Dump dump = wikigen::CorpusToDump(*corpus_);
  core::Pipeline pipeline;
  core::PageResult result = pipeline.ProcessPage(dump.pages[0]);
  auto revisions = eval::ExtractRevisionObjects(dump.pages[0]);
  auto tables = eval::SliceType(revisions, extract::ObjectType::kTable);
  auto direct = eval::RunApproachOnPage(
      eval::Approach::kOurs, extract::ObjectType::kTable, tables);
  EXPECT_EQ(result.tables.EdgeSet(), direct.EdgeSet());
}

TEST_F(EndToEnd, ChangeLogCoversAllInstances) {
  xmldump::Dump dump = wikigen::CorpusToDump(*corpus_);
  core::Pipeline pipeline;
  core::PageResult result = pipeline.ProcessPage(dump.pages[0]);
  auto changes = core::ExtractChanges(
      result.tables, result.revisions, extract::ObjectType::kTable,
      static_cast<int>(result.revisions.size()));
  size_t non_delete = 0;
  for (const auto& c : changes) {
    if (c.kind != core::ChangeKind::kDelete) ++non_delete;
  }
  EXPECT_EQ(non_delete, result.tables.VersionCount());
}

}  // namespace
}  // namespace somr
