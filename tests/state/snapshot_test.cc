#include "state/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "extract/wikitext_extractor.h"
#include "wikigen/corpus.h"
#include "xmldump/dump.h"

namespace somr::state {
namespace {

wikigen::CorpusConfig TinyConfig() {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.strata_caps = {3};
  config.pages_per_stratum = 1;
  config.min_revisions = 12;
  config.max_revisions = 18;
  config.seed = 21;
  return config;
}

// Builds a live PageState by running the matcher over a generated page
// history, stopping after `limit` revisions (SIZE_MAX = all).
PageState StateFromPage(const xmldump::PageHistory& page,
                        size_t limit = static_cast<size_t>(-1),
                        matching::MatcherConfig config = {}) {
  PageState state(config);
  state.title = page.title;
  state.page_id = page.page_id;
  for (const xmldump::Revision& rev : page.revisions) {
    if (state.revisions_ingested >= limit) break;
    extract::PageObjects objects =
        extract::ExtractFromWikitextSource(rev.text);
    state.matcher.ProcessRevision(
        static_cast<int>(state.revisions_ingested), objects);
    state.revisions.push_back(std::move(objects));
    state.timestamps.push_back(rev.timestamp);
    state.last_revision_id = rev.id;
    state.last_timestamp = rev.timestamp;
    ++state.revisions_ingested;
  }
  return state;
}

xmldump::PageHistory SamplePage() {
  xmldump::Dump dump =
      wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(TinyConfig()));
  return dump.pages[0];
}

std::string Snapshot(const PageState& state) {
  std::ostringstream out;
  Status status = SavePageSnapshot(state, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  xmldump::PageHistory page = SamplePage();
  PageState original = StateFromPage(page);
  std::string bytes = Snapshot(original);

  std::istringstream in(bytes);
  PageState loaded;
  Status status = LoadPageSnapshot(in, matching::MatcherConfig{}, &loaded);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(loaded.title, original.title);
  EXPECT_EQ(loaded.page_id, original.page_id);
  EXPECT_EQ(loaded.last_revision_id, original.last_revision_id);
  EXPECT_EQ(loaded.last_timestamp, original.last_timestamp);
  EXPECT_EQ(loaded.revisions_ingested, original.revisions_ingested);
  EXPECT_EQ(loaded.revisions.size(), original.revisions.size());
  EXPECT_EQ(loaded.timestamps, original.timestamps);
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    EXPECT_EQ(loaded.matcher.GraphFor(type).EdgeSet(),
              original.matcher.GraphFor(type).EdgeSet());
    EXPECT_EQ(loaded.matcher.StatsFor(type).stage1_matches,
              original.matcher.StatsFor(type).stage1_matches);
    EXPECT_EQ(loaded.matcher.StatsFor(type).new_objects,
              original.matcher.StatsFor(type).new_objects);
  }
}

TEST(SnapshotTest, SaveIsDeterministic) {
  PageState state = StateFromPage(SamplePage());
  EXPECT_EQ(Snapshot(state), Snapshot(state));
}

TEST(SnapshotTest, ReloadedStateReserializesIdentically) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  std::istringstream in(bytes);
  PageState loaded;
  ASSERT_TRUE(
      LoadPageSnapshot(in, matching::MatcherConfig{}, &loaded).ok());
  EXPECT_EQ(Snapshot(loaded), bytes);
}

TEST(SnapshotTest, ResumedMatcherContinuesExactly) {
  xmldump::PageHistory page = SamplePage();
  const size_t half = page.revisions.size() / 2;

  // Checkpoint at `half`, reload, apply the rest.
  std::string bytes = Snapshot(StateFromPage(page, half));
  std::istringstream in(bytes);
  PageState resumed;
  ASSERT_TRUE(
      LoadPageSnapshot(in, matching::MatcherConfig{}, &resumed).ok());
  for (size_t r = half; r < page.revisions.size(); ++r) {
    extract::PageObjects objects =
        extract::ExtractFromWikitextSource(page.revisions[r].text);
    resumed.matcher.ProcessRevision(
        static_cast<int>(resumed.revisions_ingested), objects);
    resumed.revisions.push_back(std::move(objects));
    resumed.timestamps.push_back(page.revisions[r].timestamp);
    ++resumed.revisions_ingested;
  }

  PageState batch = StateFromPage(page);
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    EXPECT_EQ(resumed.matcher.GraphFor(type).EdgeSet(),
              batch.matcher.GraphFor(type).EdgeSet());
  }
}

TEST(SnapshotTest, EmptyStateRoundTrips) {
  PageState empty;
  empty.title = "untouched";
  std::string bytes = Snapshot(empty);
  std::istringstream in(bytes);
  PageState loaded;
  ASSERT_TRUE(
      LoadPageSnapshot(in, matching::MatcherConfig{}, &loaded).ok());
  EXPECT_EQ(loaded.title, "untouched");
  EXPECT_EQ(loaded.revisions_ingested, 0u);
  EXPECT_EQ(loaded.matcher.GraphFor(extract::ObjectType::kTable)
                .ObjectCount(),
            0u);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  bytes[0] = 'X';
  std::istringstream in(bytes);
  PageState state;
  Status status = LoadPageSnapshot(in, matching::MatcherConfig{}, &state);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsUnknownFormatVersion) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  bytes[8] = static_cast<char>(0xEE);  // format version little-endian LSB
  std::istringstream in(bytes);
  PageState state;
  Status status = LoadPageSnapshot(in, matching::MatcherConfig{}, &state);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsConfigFingerprintMismatch) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  matching::MatcherConfig other;
  other.rear_view_window = 7;
  std::istringstream in(bytes);
  PageState state(other);
  Status status = LoadPageSnapshot(in, other, &state);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsEveryTruncationWithoutCrashing) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  // Every strict prefix must fail cleanly; stride keeps the test fast
  // while still probing every region of the format.
  const size_t stride = bytes.size() / 97 + 1;
  for (size_t len = 0; len < bytes.size(); len += stride) {
    std::istringstream in(bytes.substr(0, len));
    PageState state;
    Status status =
        LoadPageSnapshot(in, matching::MatcherConfig{}, &state);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST(SnapshotTest, RejectsPayloadCorruption) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  // Flip one byte in every region of the file; each flip must either be
  // caught (checksum, bounds, validation) — never accepted silently as
  // the original state, never a crash.
  const size_t stride = bytes.size() / 53 + 1;
  for (size_t pos = 24; pos < bytes.size(); pos += stride) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x41);
    std::istringstream in(corrupt);
    PageState state;
    Status status =
        LoadPageSnapshot(in, matching::MatcherConfig{}, &state);
    EXPECT_FALSE(status.ok()) << "flip at byte " << pos << " accepted";
  }
}

TEST(SnapshotTest, FailedLoadLeavesStateUntouched) {
  std::string bytes = Snapshot(StateFromPage(SamplePage()));
  bytes.resize(bytes.size() / 2);  // truncate mid-section
  std::istringstream in(bytes);
  PageState state;
  state.title = "sentinel";
  ASSERT_FALSE(
      LoadPageSnapshot(in, matching::MatcherConfig{}, &state).ok());
  EXPECT_EQ(state.title, "sentinel");  // no partial restore
}

// Applies revisions [state.revisions_ingested, limit) of `page`.
void ExtendState(PageState& state, const xmldump::PageHistory& page,
                 size_t limit) {
  for (size_t r = state.revisions_ingested;
       r < page.revisions.size() && r < limit; ++r) {
    extract::PageObjects objects =
        extract::ExtractFromWikitextSource(page.revisions[r].text);
    state.matcher.ProcessRevision(
        static_cast<int>(state.revisions_ingested), objects);
    state.revisions.push_back(std::move(objects));
    state.timestamps.push_back(page.revisions[r].timestamp);
    state.last_revision_id = page.revisions[r].id;
    state.last_timestamp = page.revisions[r].timestamp;
    ++state.revisions_ingested;
  }
}

std::string Delta(const PageState& state, const SnapshotWatermark& base) {
  std::ostringstream out;
  Status status = SavePageDelta(state, base, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

TEST(DeltaSnapshotTest, SingleDeltaReplayIsByteIdentical) {
  xmldump::PageHistory page = SamplePage();
  const size_t half = page.revisions.size() / 2;

  PageState state = StateFromPage(page, half);
  const std::string base_bytes = Snapshot(state);
  const SnapshotWatermark base = CaptureWatermark(state);
  ExtendState(state, page, page.revisions.size());
  const std::string delta_bytes = Delta(state, base);

  // Replay: full snapshot of the base, then the delta.
  std::istringstream base_in(base_bytes);
  PageState replayed;
  ASSERT_TRUE(
      LoadPageSnapshot(base_in, matching::MatcherConfig{}, &replayed).ok());
  std::istringstream delta_in(delta_bytes);
  Status applied =
      ApplyPageDelta(delta_in, matching::MatcherConfig{}, &replayed);
  ASSERT_TRUE(applied.ok()) << applied.ToString();

  EXPECT_EQ(Snapshot(replayed), Snapshot(state));
}

TEST(DeltaSnapshotTest, DeltaIsMuchSmallerThanFullSnapshot) {
  xmldump::PageHistory page = SamplePage();
  PageState state = StateFromPage(page, page.revisions.size() - 1);
  const SnapshotWatermark base = CaptureWatermark(state);
  ExtendState(state, page, page.revisions.size());

  const std::string full = Snapshot(state);
  const std::string delta = Delta(state, base);
  // One revision's worth of change vs the whole history: the entire
  // point of delta checkpoints.
  EXPECT_LT(delta.size() * 2, full.size())
      << "delta " << delta.size() << "B vs full " << full.size() << "B";
}

TEST(DeltaSnapshotTest, EmptyDeltaReplaysToSameState) {
  PageState state = StateFromPage(SamplePage());
  const SnapshotWatermark base = CaptureWatermark(state);
  const std::string delta_bytes = Delta(state, base);  // nothing changed

  std::istringstream full_in(Snapshot(state));
  PageState replayed;
  ASSERT_TRUE(
      LoadPageSnapshot(full_in, matching::MatcherConfig{}, &replayed).ok());
  std::istringstream delta_in(delta_bytes);
  ASSERT_TRUE(
      ApplyPageDelta(delta_in, matching::MatcherConfig{}, &replayed).ok());
  EXPECT_EQ(Snapshot(replayed), Snapshot(state));
}

// The acceptance bar: a chain of deltas over randomized page histories,
// one corpus per focal object type, replays to the exact bytes a direct
// full snapshot produces — at every intermediate checkpoint.
TEST(DeltaSnapshotTest, RandomizedChainReplayMatchesDirectSnapshot) {
  for (extract::ObjectType focal :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    for (unsigned seed : {11u, 47u}) {
      wikigen::CorpusConfig config = TinyConfig();
      config.focal_type = focal;
      config.seed = seed;
      xmldump::Dump dump =
          wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config));
      const xmldump::PageHistory& page = dump.pages[0];
      const size_t n = page.revisions.size();
      // Checkpoints: anchor at ~1/4, then three delta saves.
      const size_t marks[] = {n / 4, n / 2, 3 * n / 4, n};

      PageState state = StateFromPage(page, marks[0]);
      std::istringstream anchor_in(Snapshot(state));
      PageState replayed;
      ASSERT_TRUE(LoadPageSnapshot(anchor_in, matching::MatcherConfig{},
                                   &replayed)
                      .ok());
      for (size_t m = 1; m < 4; ++m) {
        const SnapshotWatermark base = CaptureWatermark(state);
        ExtendState(state, page, marks[m]);
        std::istringstream delta_in(Delta(state, base));
        Status applied =
            ApplyPageDelta(delta_in, matching::MatcherConfig{}, &replayed);
        ASSERT_TRUE(applied.ok())
            << applied.ToString() << " (focal " << static_cast<int>(focal)
            << " seed " << seed << " mark " << m << ")";
        ASSERT_EQ(Snapshot(replayed), Snapshot(state))
            << "focal " << static_cast<int>(focal) << " seed " << seed
            << " diverged at mark " << m;
      }
    }
  }
}

TEST(DeltaSnapshotTest, NonDescendantBaseIsInvalidArgument) {
  xmldump::PageHistory page = SamplePage();
  PageState full = StateFromPage(page);
  PageState half = StateFromPage(page, page.revisions.size() / 2);
  // Base "ahead" of the state: counts would run backwards.
  const SnapshotWatermark base = CaptureWatermark(full);
  std::ostringstream out;
  EXPECT_EQ(SavePageDelta(half, base, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaSnapshotTest, DeltaOnWrongBaseIsParseError) {
  xmldump::PageHistory page = SamplePage();
  const size_t half = page.revisions.size() / 2;
  PageState state = StateFromPage(page, half);
  const SnapshotWatermark base = CaptureWatermark(state);
  ExtendState(state, page, page.revisions.size());
  const std::string delta_bytes = Delta(state, base);

  // Applying to a fresh (empty) state, not the base: refused.
  PageState not_base;
  not_base.title = state.title;
  std::istringstream in(delta_bytes);
  Status status =
      ApplyPageDelta(in, matching::MatcherConfig{}, &not_base);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(DeltaSnapshotTest, RejectsDeltaCorruptionEverywhere) {
  xmldump::PageHistory page = SamplePage();
  const size_t half = page.revisions.size() / 2;
  PageState state = StateFromPage(page, half);
  const std::string base_bytes = Snapshot(state);
  const SnapshotWatermark base = CaptureWatermark(state);
  ExtendState(state, page, page.revisions.size());
  const std::string delta_bytes = Delta(state, base);
  const std::string want = Snapshot(state);

  const size_t stride = delta_bytes.size() / 53 + 1;
  for (size_t pos = 0; pos < delta_bytes.size(); pos += stride) {
    std::string corrupt = delta_bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x41);
    // A failed apply may leave the base partially mutated; rebuild it
    // from the anchor snapshot for every flip.
    std::istringstream base_in(base_bytes);
    PageState replayed;
    ASSERT_TRUE(LoadPageSnapshot(base_in, matching::MatcherConfig{},
                                 &replayed)
                    .ok());
    std::istringstream in(corrupt);
    Status status =
        ApplyPageDelta(in, matching::MatcherConfig{}, &replayed);
    if (status.ok()) {
      // The flip must at minimum never silently yield the wrong state.
      EXPECT_EQ(Snapshot(replayed), want) << "flip at byte " << pos;
    }
  }
}

TEST(ConfigFingerprintTest, StableAndSensitive) {
  matching::MatcherConfig a, b;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.theta2 = 0.61;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.use_idf_weighting = false;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.rear_view_window = 6;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
}

}  // namespace
}  // namespace somr::state
