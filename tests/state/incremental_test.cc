#include "state/incremental_pipeline.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/change_cube.h"
#include "core/pipeline.h"
#include "matching/graph_io.h"
#include "wikigen/corpus.h"

namespace somr::state {
namespace {

constexpr extract::ObjectType kAllTypes[] = {
    extract::ObjectType::kTable, extract::ObjectType::kInfobox,
    extract::ObjectType::kList};

wikigen::GoldCorpus CorpusFor(extract::ObjectType focal, uint64_t seed) {
  wikigen::CorpusConfig config;
  config.focal_type = focal;
  config.strata_caps = {3};
  config.pages_per_stratum = 1;
  config.min_revisions = 12;
  config.max_revisions = 16;
  config.seed = seed;
  return wikigen::GenerateGoldCorpus(config);
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-inc-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  // A fresh store subdirectory (distinct per call within one test).
  std::string FreshDir() {
    return dir_ + "/s" + std::to_string(next_store_++);
  }

  std::string dir_;
  int next_store_ = 0;
};

// Ingests `page` in chunks of `chunk` revisions, tearing down and
// reopening the store between chunks — every chunk boundary is a real
// checkpoint/resume cycle through the snapshot files on disk.
core::PageResult ChunkedIngest(const xmldump::PageHistory& page,
                               size_t chunk, const std::string& dir) {
  for (size_t done = 0; done < page.revisions.size(); done += chunk) {
    xmldump::PageHistory prefix = page;
    prefix.revisions.resize(
        std::min(page.revisions.size(), done + chunk));
    ContextStore store(dir);
    Status opened = store.Open(/*create=*/true);
    EXPECT_TRUE(opened.ok()) << opened.ToString();
    IncrementalPipeline pipeline(&store);
    StatusOr<IngestReport> report = pipeline.IngestPage(prefix);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->new_revisions, prefix.revisions.size() - done);
    EXPECT_EQ(report->skipped_revisions, done);
  }
  ContextStore store(dir);
  EXPECT_TRUE(store.Open(/*create=*/false).ok());
  IncrementalPipeline pipeline(&store);
  StatusOr<core::PageResult> result = pipeline.ResultFor(page.title);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

// The correctness contract: identical serialized graphs, identical change
// cubes, identical stats counters (timing excluded) vs the batch run.
void ExpectBatchEquivalent(const core::PageResult& incremental,
                           const core::PageResult& batch) {
  EXPECT_EQ(incremental.title, batch.title);
  ASSERT_EQ(incremental.revisions.size(), batch.revisions.size());
  EXPECT_EQ(incremental.timestamps, batch.timestamps);
  for (extract::ObjectType type : kAllTypes) {
    EXPECT_EQ(matching::SerializeIdentityGraph(incremental.GraphFor(type)),
              matching::SerializeIdentityGraph(batch.GraphFor(type)))
        << "graph mismatch for " << extract::ObjectTypeName(type);
    EXPECT_EQ(core::ChangeCubeToCsv(core::BuildChangeCube(
                  incremental, type, incremental.timestamps)),
              core::ChangeCubeToCsv(core::BuildChangeCube(
                  batch, type, batch.timestamps)))
        << "cube mismatch for " << extract::ObjectTypeName(type);
  }
  const matching::MatchStats* inc_stats[] = {
      &incremental.table_stats, &incremental.infobox_stats,
      &incremental.list_stats};
  const matching::MatchStats* batch_stats[] = {
      &batch.table_stats, &batch.infobox_stats, &batch.list_stats};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(inc_stats[i]->similarities_computed,
              batch_stats[i]->similarities_computed);
    EXPECT_EQ(inc_stats[i]->stage1_matches, batch_stats[i]->stage1_matches);
    EXPECT_EQ(inc_stats[i]->stage2_matches, batch_stats[i]->stage2_matches);
    EXPECT_EQ(inc_stats[i]->stage3_matches, batch_stats[i]->stage3_matches);
    EXPECT_EQ(inc_stats[i]->new_objects, batch_stats[i]->new_objects);
    EXPECT_EQ(inc_stats[i]->pairs_pruned, batch_stats[i]->pairs_pruned);
    EXPECT_EQ(inc_stats[i]->pairs_blocked, batch_stats[i]->pairs_blocked);
    EXPECT_EQ(inc_stats[i]->step_millis.size(),
              batch_stats[i]->step_millis.size());
  }
}

// The headline test: for each object type's gold corpus, split the
// revision stream at EVERY boundary, checkpoint the prefix, resume with
// the suffix, and demand byte-identical outputs vs the one-shot run.
TEST_F(IncrementalTest, SplitAtEveryBoundaryMatchesBatch) {
  uint64_t seed = 31;
  for (extract::ObjectType focal : kAllTypes) {
    wikigen::GoldCorpus corpus = CorpusFor(focal, seed++);
    xmldump::Dump dump = wikigen::CorpusToDump(corpus);
    const xmldump::PageHistory& page = dump.pages[0];
    core::PageResult batch = core::Pipeline().ProcessPage(page);

    for (size_t split = 1; split < page.revisions.size(); ++split) {
      std::string dir = FreshDir();
      xmldump::PageHistory prefix = page;
      prefix.revisions.resize(split);
      {
        ContextStore store(dir);
        ASSERT_TRUE(store.Open(/*create=*/true).ok());
        IncrementalPipeline pipeline(&store);
        StatusOr<IngestReport> report = pipeline.IngestPage(prefix);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        ASSERT_EQ(report->new_revisions, split);
      }
      // Fresh store object: the resume goes through disk, not memory.
      ContextStore store(dir);
      ASSERT_TRUE(store.Open(/*create=*/false).ok());
      IncrementalPipeline pipeline(&store);
      StatusOr<IngestReport> report = pipeline.IngestPage(page);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->skipped_revisions, split);
      EXPECT_EQ(report->new_revisions, page.revisions.size() - split);

      StatusOr<core::PageResult> result = pipeline.ResultFor(page.title);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBatchEquivalent(*result, batch);
    }
  }
}

// Checkpoint/reload after every k revisions (k=1 reloads after every
// single revision — the worst case for serialization fidelity).
TEST_F(IncrementalTest, ChunkedIngestionMatchesBatch) {
  wikigen::GoldCorpus corpus =
      CorpusFor(extract::ObjectType::kTable, 47);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  const xmldump::PageHistory& page = dump.pages[0];
  core::PageResult batch = core::Pipeline().ProcessPage(page);
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}}) {
    core::PageResult incremental = ChunkedIngest(page, chunk, FreshDir());
    ExpectBatchEquivalent(incremental, batch);
  }
}

TEST_F(IncrementalTest, ReingestIsIdempotent) {
  wikigen::GoldCorpus corpus = CorpusFor(extract::ObjectType::kList, 5);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  ContextStore store(FreshDir());
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  IncrementalPipeline pipeline(&store);
  ASSERT_TRUE(pipeline.IngestPage(dump.pages[0]).ok());
  StatusOr<IngestReport> again = pipeline.IngestPage(dump.pages[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->new_revisions, 0u);
  EXPECT_EQ(again->skipped_revisions, dump.pages[0].revisions.size());
}

TEST_F(IncrementalTest, IngestDumpMatchesBatchPerPage) {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kInfobox;
  config.strata_caps = {2, 4};
  config.pages_per_stratum = 2;
  config.min_revisions = 8;
  config.max_revisions = 12;
  config.seed = 13;
  xmldump::Dump dump =
      wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config));
  std::string xml = xmldump::WriteDump(dump);

  auto batch = core::Pipeline().ProcessDumpXml(xml);
  ASSERT_TRUE(batch.ok());

  ContextStore store(FreshDir());
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  IncrementalPipeline pipeline(&store);
  std::istringstream in(xml);
  StatusOr<IngestReport> report = pipeline.IngestDump(in, /*threads=*/3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages, batch->size());

  for (const core::PageResult& expected : *batch) {
    StatusOr<core::PageResult> result = pipeline.ResultFor(expected.title);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBatchEquivalent(*result, expected);
  }
}

TEST_F(IncrementalTest, IngestDumpMoreThreadsThanPages) {
  wikigen::GoldCorpus corpus = CorpusFor(extract::ObjectType::kTable, 3);
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  ContextStore store(FreshDir());
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  IncrementalPipeline pipeline(&store);
  std::istringstream in(xml);
  StatusOr<IngestReport> report = pipeline.IngestDump(in, /*threads=*/8);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages, corpus.pages.size());
}

TEST_F(IncrementalTest, IngestEmptyDump) {
  ContextStore store(FreshDir());
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  IncrementalPipeline pipeline(&store);
  std::istringstream in("<mediawiki>\n</mediawiki>\n");
  StatusOr<IngestReport> report = pipeline.IngestDump(in, /*threads=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages, 0u);
  EXPECT_TRUE(store.Pages().empty());
}

TEST_F(IncrementalTest, ResultForUnknownPageIsNotFound) {
  ContextStore store(FreshDir());
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  IncrementalPipeline pipeline(&store);
  EXPECT_EQ(pipeline.ResultFor("ghost").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace somr::state
