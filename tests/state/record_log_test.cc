#include "state/record_log.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace somr::state {
namespace {

namespace fs = std::filesystem;

class RecordLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-reclog-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  RecordLog::Options SmallOptions() {
    RecordLog::Options options;
    options.shard_count = 2;
    options.compact_min_bytes = 64;  // let tiny tests trigger compaction
    return options;
  }

  // The single nonempty shard file for single-key tests.
  std::string OnlyShardFile() {
    std::string found;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("records-", 0) != 0) continue;
      if (fs::file_size(entry.path()) == 0) continue;
      EXPECT_TRUE(found.empty()) << "two nonempty shards: " << found
                                 << " and " << name;
      found = entry.path().string();
    }
    EXPECT_FALSE(found.empty());
    return found;
  }

  std::string dir_;
};

TEST_F(RecordLogTest, OpenWithoutCreateIsNotFound) {
  RecordLog log(dir_ + "/missing", SmallOptions());
  EXPECT_EQ(log.Open(/*create=*/false).code(), StatusCode::kNotFound);
}

TEST_F(RecordLogTest, AppendAndReadChain) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kFull, "base",
                         /*start_chain=*/true)
                  .ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kDelta, "d1",
                         /*start_chain=*/false)
                  .ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kDelta, "d2",
                         /*start_chain=*/false)
                  .ok());

  StatusOr<std::vector<ChainRecord>> chain = log.ReadChain("k");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->size(), 3u);
  EXPECT_EQ((*chain)[0].kind, RecordKind::kFull);
  EXPECT_EQ((*chain)[0].payload, "base");
  EXPECT_EQ((*chain)[1].payload, "d1");
  EXPECT_EQ((*chain)[2].kind, RecordKind::kDelta);
  EXPECT_EQ((*chain)[2].payload, "d2");
  EXPECT_EQ(log.ChainDepth("k"), 3u);
  EXPECT_GT(log.ChainBytes("k"), 0u);
  EXPECT_EQ(log.ReadChain("other").status().code(), StatusCode::kNotFound);
}

TEST_F(RecordLogTest, StartChainSupersedesOldRecords) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kFull, "old",
                         /*start_chain=*/true)
                  .ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kDelta, "old-delta",
                         /*start_chain=*/false)
                  .ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kFull, "new",
                         /*start_chain=*/true)
                  .ok());

  StatusOr<std::vector<ChainRecord>> chain = log.ReadChain("k");
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_EQ((*chain)[0].payload, "new");

  // Old frames are still on disk but no longer live.
  std::vector<ShardStats> shards = log.Shards();
  uint64_t superseded = 0;
  for (const ShardStats& s : shards) superseded += s.superseded_bytes;
  EXPECT_GT(superseded, 0u);
}

TEST_F(RecordLogTest, ChainShapeIsEnforced) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  // Delta without a chain.
  EXPECT_FALSE(log.Append("k", RecordKind::kDelta, "d",
                          /*start_chain=*/false)
                   .ok());
  EXPECT_FALSE(log.Contains("k"));
  // Chain cannot start with a delta.
  EXPECT_FALSE(log.Append("k", RecordKind::kDelta, "d",
                          /*start_chain=*/true)
                   .ok());
  EXPECT_FALSE(log.Contains("k"));
  ASSERT_TRUE(log.Append("k", RecordKind::kFull, "f",
                         /*start_chain=*/true)
                  .ok());
  // Full record cannot extend a chain.
  EXPECT_FALSE(log.Append("k", RecordKind::kFull, "f2",
                          /*start_chain=*/false)
                   .ok());
}

TEST_F(RecordLogTest, CommitThenReopenKeepsChains) {
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    ASSERT_TRUE(log.Append("alpha", RecordKind::kFull, "a-payload",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Append("alpha", RecordKind::kDelta, "a-delta",
                           /*start_chain=*/false)
                    .ok());
    ASSERT_TRUE(log.Append("beta", RecordKind::kFull, "b-payload",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_EQ(reopened.ChainDepth("alpha"), 2u);
  StatusOr<std::vector<ChainRecord>> chain = reopened.ReadChain("alpha");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ((*chain)[0].payload, "a-payload");
  EXPECT_EQ((*chain)[1].payload, "a-delta");
  chain = reopened.ReadChain("beta");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ((*chain)[0].payload, "b-payload");
}

TEST_F(RecordLogTest, UncommittedAppendsDroppedOnReopen) {
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    ASSERT_TRUE(log.Append("durable", RecordKind::kFull, "yes",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Commit().ok());
    // Appended but never committed: must not survive the "crash".
    ASSERT_TRUE(log.Append("lost", RecordKind::kFull, "no",
                           /*start_chain=*/true)
                    .ok());
  }
  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_TRUE(reopened.Contains("durable"));
  EXPECT_FALSE(reopened.Contains("lost"));
  uint64_t recovered = 0;
  for (const ShardStats& s : reopened.Shards()) {
    recovered += s.tail_recovered_bytes;
  }
  EXPECT_GT(recovered, 0u);
}

TEST_F(RecordLogTest, TornFinalRecordIsSkippedNotFatal) {
  uint64_t committed_size = 0;
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    ASSERT_TRUE(log.Append("k", RecordKind::kFull, "committed payload",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  const std::string shard_file = OnlyShardFile();
  committed_size = fs::file_size(shard_file);
  {
    // A torn write: half a frame's worth of garbage at the tail, as if
    // the process died mid-pwrite.
    std::ofstream out(shard_file, std::ios::binary | std::ios::app);
    out << "SRLF\x02torn-partial-garbage";
  }
  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_EQ(fs::file_size(shard_file), committed_size);  // tail truncated
  StatusOr<std::vector<ChainRecord>> chain = reopened.ReadChain("k");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ((*chain)[0].payload, "committed payload");
}

TEST_F(RecordLogTest, CorruptCommittedRecordIsCleanParseError) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  ASSERT_TRUE(log.Append("k", RecordKind::kFull,
                         "payload long enough to flip a byte inside",
                         /*start_chain=*/true)
                  .ok());
  ASSERT_TRUE(log.Commit().ok());

  const std::string shard_file = OnlyShardFile();
  const uint64_t size = fs::file_size(shard_file);
  {
    std::fstream f(shard_file, std::ios::binary | std::ios::in |
                                   std::ios::out);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(byte ^ 0x41));
  }
  StatusOr<std::vector<ChainRecord>> chain = log.ReadChain("k");
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kParseError);
}

TEST_F(RecordLogTest, AwkwardKeysSurviveTheIndex) {
  const std::string awkward = "A/B\\C\td\ne \"quoted\" \xc3\xa9";
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    ASSERT_TRUE(log.Append(awkward, RecordKind::kFull, "payload",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  ASSERT_TRUE(reopened.Contains(awkward));
  StatusOr<std::vector<ChainRecord>> chain = reopened.ReadChain(awkward);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ((*chain)[0].payload, "payload");
}

TEST_F(RecordLogTest, CompactionReclaimsSupersededBytes) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  const std::string big(512, 'x');
  // Rewrite the same keys over and over: all but the last generation of
  // each is superseded.
  for (int round = 0; round < 8; ++round) {
    for (const char* key : {"a", "b", "c", "d"}) {
      ASSERT_TRUE(log.Append(key, RecordKind::kFull,
                             big + key + std::to_string(round),
                             /*start_chain=*/true)
                      .ok());
    }
  }
  ASSERT_TRUE(log.Commit().ok());

  std::vector<uint32_t> due = log.ShardsNeedingCompaction();
  ASSERT_FALSE(due.empty());
  for (uint32_t shard : due) {
    StatusOr<bool> ran = log.Compact(shard);
    ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    EXPECT_TRUE(*ran);
  }
  EXPECT_TRUE(log.ShardsNeedingCompaction().empty());

  for (const ShardStats& s : log.Shards()) {
    EXPECT_EQ(s.superseded_bytes, 0u) << "shard " << s.shard;
  }
  // Every live chain still reads back, post-swap.
  for (const char* key : {"a", "b", "c", "d"}) {
    StatusOr<std::vector<ChainRecord>> chain = log.ReadChain(key);
    ASSERT_TRUE(chain.ok()) << chain.status().ToString();
    ASSERT_EQ(chain->size(), 1u);
    EXPECT_EQ((*chain)[0].payload, big + key + "7");
  }
}

TEST_F(RecordLogTest, CompactionSurvivesReopen) {
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    const std::string big(512, 'y');
    for (int round = 0; round < 6; ++round) {
      for (const char* key : {"a", "b", "c", "d"}) {
        ASSERT_TRUE(log.Append(key, RecordKind::kFull,
                               big + key + std::to_string(round),
                               /*start_chain=*/true)
                        .ok());
      }
    }
    ASSERT_TRUE(log.Commit().ok());
    for (uint32_t shard : log.ShardsNeedingCompaction()) {
      ASSERT_TRUE(log.Compact(shard).ok());
    }
  }
  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  const std::string big(512, 'y');
  for (const char* key : {"a", "b", "c", "d"}) {
    StatusOr<std::vector<ChainRecord>> chain = reopened.ReadChain(key);
    ASSERT_TRUE(chain.ok()) << chain.status().ToString();
    EXPECT_EQ((*chain)[0].payload, big + key + "5");
  }
  // Exactly one generation file per shard: old generations are gone.
  size_t rec_files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("records-", 0) == 0 &&
        name.find(".tmp") == std::string::npos) {
      ++rec_files;
    }
  }
  EXPECT_EQ(rec_files, 2u);
}

TEST_F(RecordLogTest, StaleGenerationFromCrashedCompactionIsRemoved) {
  {
    RecordLog log(dir_, SmallOptions());
    ASSERT_TRUE(log.Open(/*create=*/true).ok());
    ASSERT_TRUE(log.Append("k", RecordKind::kFull, "payload",
                           /*start_chain=*/true)
                    .ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  // Simulate a crash between writing generation 2 and committing the
  // index that references it.
  const std::string orphan =
      (fs::path(dir_) / "records-0000-g000002.rec").string();
  std::ofstream(orphan, std::ios::binary) << "half-written generation";
  ASSERT_TRUE(fs::exists(orphan));

  RecordLog reopened(dir_, SmallOptions());
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(reopened.Contains("k"));
}

TEST_F(RecordLogTest, ConcurrentReadsDuringCompaction) {
  RecordLog log(dir_, SmallOptions());
  ASSERT_TRUE(log.Open(/*create=*/true).ok());
  const std::string big(256, 'z');
  const std::vector<std::string> keys = {"r0", "r1", "r2", "r3",
                                         "r4", "r5", "r6", "r7"};
  for (const std::string& key : keys) {
    ASSERT_TRUE(log.Append(key, RecordKind::kFull, big + key,
                           /*start_chain=*/true)
                    .ok());
  }
  ASSERT_TRUE(log.Commit().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& key = keys[i++ % keys.size()];
        StatusOr<std::vector<ChainRecord>> chain = log.ReadChain(key);
        if (!chain.ok() || chain->size() != 1 ||
            (*chain)[0].payload != big + key) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  // Writer churn + repeated compaction swaps while readers hammer.
  for (int round = 0; round < 20; ++round) {
    for (const std::string& key : keys) {
      ASSERT_TRUE(log.Append(key, RecordKind::kFull, big + key,
                             /*start_chain=*/true)
                      .ok());
    }
    ASSERT_TRUE(log.Commit().ok());
    for (uint32_t shard : log.ShardsNeedingCompaction()) {
      StatusOr<bool> ran = log.Compact(shard);
      ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RecordLogTest, EscapeKeyRoundTrips) {
  for (const std::string key :
       {std::string("plain"), std::string("tab\there"),
        std::string("nl\nthere"), std::string("back\\slash"),
        std::string("\t\n\\"), std::string()}) {
    EXPECT_EQ(UnescapeKey(EscapeKey(key)), key);
  }
  // Escaped forms are single-line and tab-free (index file safety).
  EXPECT_EQ(EscapeKey("a\tb\nc").find('\t'), std::string::npos);
  EXPECT_EQ(EscapeKey("a\tb\nc").find('\n'), std::string::npos);
}

}  // namespace
}  // namespace somr::state
