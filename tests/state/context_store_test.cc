#include "state/context_store.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "extract/wikitext_extractor.h"
#include "wikigen/corpus.h"
#include "xmldump/dump.h"

namespace somr::state {
namespace {

// Fresh store directory per test, removed on teardown.
class ContextStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-store-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  PageState MakeState(const std::string& title, int64_t last_rev) {
    PageState state;
    state.title = title;
    state.page_id = 7;
    state.last_revision_id = last_rev;
    state.last_timestamp = 1600000000 + last_rev;
    state.revisions_ingested = static_cast<uint32_t>(last_rev);
    for (int64_t r = 0; r < last_rev; ++r) {
      state.revisions.emplace_back();
      state.timestamps.push_back(1600000000 + r);
    }
    return state;
  }

  // A state with live matcher content, grown revision by revision — what
  // the delta path actually has to reproduce byte-for-byte.
  static xmldump::PageHistory SamplePage() {
    wikigen::CorpusConfig config;
    config.focal_type = extract::ObjectType::kTable;
    config.strata_caps = {3};
    config.pages_per_stratum = 1;
    config.min_revisions = 12;
    config.max_revisions = 18;
    config.seed = 33;
    return wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config))
        .pages[0];
  }

  static void ApplyRevision(PageState& state,
                            const xmldump::Revision& rev) {
    extract::PageObjects objects =
        extract::ExtractFromWikitextSource(rev.text);
    state.matcher.ProcessRevision(
        static_cast<int>(state.revisions_ingested), objects);
    state.revisions.push_back(std::move(objects));
    state.timestamps.push_back(rev.timestamp);
    state.last_revision_id = rev.id;
    state.last_timestamp = rev.timestamp;
    ++state.revisions_ingested;
  }

  static std::string SnapshotBytes(const PageState& state) {
    std::ostringstream out;
    Status status = SavePageSnapshot(state, out);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out.str();
  }

  // The one nonempty record shard file (single-page tests).
  std::string OnlyShardFile() {
    namespace fs = std::filesystem;
    std::string found;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("records-", 0) != 0) continue;
      if (fs::file_size(entry.path()) == 0) continue;
      EXPECT_TRUE(found.empty());
      found = entry.path().string();
    }
    EXPECT_FALSE(found.empty());
    return found;
  }

  std::string dir_;
};

TEST_F(ContextStoreTest, OpenWithoutCreateIsNotFound) {
  ContextStore store(dir_ + "/missing");
  EXPECT_EQ(store.Open(/*create=*/false).code(), StatusCode::kNotFound);
}

TEST_F(ContextStoreTest, CreateThenReopen) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
    ASSERT_TRUE(store.Save(MakeState("Beta", 5)).ok());
  }
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_TRUE(reopened.Contains("Alpha"));
  EXPECT_TRUE(reopened.Contains("Beta"));
  EXPECT_FALSE(reopened.Contains("Gamma"));

  std::vector<ContextStore::PageInfo> pages = reopened.Pages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0].title, "Alpha");  // sorted by title
  EXPECT_EQ(pages[0].last_revision_id, 3);
  EXPECT_EQ(pages[1].title, "Beta");
  EXPECT_EQ(pages[1].revisions_ingested, 5u);
}

TEST_F(ContextStoreTest, LookupIsManifestIndexProbe) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  EXPECT_FALSE(store.Lookup("Alpha").has_value());

  ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
  std::optional<ContextStore::PageInfo> info = store.Lookup("Alpha");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->title, "Alpha");
  EXPECT_EQ(info->last_revision_id, 3);
  EXPECT_EQ(info->revisions_ingested, 3u);
  EXPECT_GT(info->chain_bytes, 0u);
  EXPECT_EQ(info->delta_depth, 0u);  // first save is the chain anchor
  EXPECT_FALSE(store.Lookup("Beta").has_value());
}

TEST_F(ContextStoreTest, VersionBumpsPerSaveAndResetsOnOpen) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 1)).ok());
  EXPECT_EQ(store.Lookup("Alpha")->version, 1u);
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  EXPECT_EQ(store.Lookup("Alpha")->version, 2u);
  ASSERT_TRUE(store.Save(MakeState("Beta", 1)).ok());
  EXPECT_EQ(store.Lookup("Beta")->version, 1u);

  // Versions are in-memory generations, not persisted: a reopened store
  // starts every manifest entry at 1 again.
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_EQ(reopened.Lookup("Alpha")->version, 1u);
  EXPECT_EQ(reopened.Lookup("Beta")->version, 1u);
}

TEST_F(ContextStoreTest, LoadRestoresSavedState) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 4)).ok());

  StatusOr<PageState> loaded = store.Load("Alpha");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->title, "Alpha");
  EXPECT_EQ(loaded->page_id, 7);
  EXPECT_EQ(loaded->last_revision_id, 4);
  EXPECT_EQ(loaded->revisions.size(), 4u);
}

TEST_F(ContextStoreTest, LoadUnknownPageIsNotFound) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  EXPECT_EQ(store.Load("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(ContextStoreTest, SaveOverwritesAtomically) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 9)).ok());
  StatusOr<PageState> loaded = store.Load("Alpha");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_revision_id, 9);
  ASSERT_EQ(store.Pages().size(), 1u);
  EXPECT_EQ(store.Pages()[0].last_revision_id, 9);
}

TEST_F(ContextStoreTest, AwkwardTitlesSurviveTheManifest) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  const std::string awkward = "A/B\\C\td\ne \"quoted\" \xc3\xa9";
  ASSERT_TRUE(store.Save(MakeState(awkward, 1)).ok());

  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  ASSERT_TRUE(reopened.Contains(awkward));
  StatusOr<PageState> loaded = reopened.Load(awkward);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->title, awkward);
}

TEST_F(ContextStoreTest, RefusesDifferentConfigFingerprint) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Alpha", 1)).ok());
  }
  matching::MatcherConfig other;
  other.theta1 = 0.75;
  ContextStore mismatched(dir_, other);
  EXPECT_EQ(mismatched.Open(/*create=*/false).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ContextStoreTest, CorruptRecordIsCleanError) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  // Flip a byte of Alpha's committed record behind the store's back.
  const std::string shard_file = OnlyShardFile();
  const auto size =
      static_cast<std::streamoff>(std::filesystem::file_size(shard_file));
  {
    std::fstream f(shard_file,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(size / 2);
    char byte = 0;
    f.get(byte);
    f.seekp(size / 2);
    f.put(static_cast<char>(byte ^ 0x41));
  }
  StatusOr<PageState> loaded = store.Load("Alpha");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(ContextStoreTest, GarbageManifestIsCleanError) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  std::ofstream(dir_ + "/manifest.tsv", std::ios::trunc)
      << "not a manifest\n";
  ContextStore reopened(dir_);
  EXPECT_FALSE(reopened.Open(/*create=*/false).ok());
}

TEST_F(ContextStoreTest, NoTempFilesLeftBehind) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
  std::string cmd = "ls '" + dir_ + "' | grep -c '\\.tmp$' > /dev/null";
  EXPECT_NE(std::system(cmd.c_str()), 0);  // grep -c finds none -> exit 1
}

TEST_F(ContextStoreTest, RefusesV1StoreWithMigrationMessage) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/manifest.tsv")
      << "# somr-context-store v1 config=0123456789abcdef\n";
  ContextStore store(dir_);
  Status status = store.Open(/*create=*/false);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("re-ingest"), std::string::npos)
      << status.ToString();
}

TEST_F(ContextStoreTest, DeltaChainCadenceReanchors) {
  StoreOptions options;
  options.full_snapshot_every = 3;
  ContextStore store(dir_, {}, options);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());

  xmldump::PageHistory page = SamplePage();
  PageState state;
  state.title = page.title;
  state.page_id = page.page_id;
  // Save after every revision: depths must cycle 0,1,2,0,1,2,...
  const uint32_t expected_cycle[] = {0, 1, 2};
  for (size_t r = 0; r < 7 && r < page.revisions.size(); ++r) {
    ApplyRevision(state, page.revisions[r]);
    ASSERT_TRUE(store.Save(state).ok());
    EXPECT_EQ(store.Lookup(page.title)->delta_depth, expected_cycle[r % 3])
        << "save " << r;
    // Every checkpoint, replayed, is byte-identical to the live state.
    StatusOr<PageState> loaded = store.Load(page.title);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(SnapshotBytes(*loaded), SnapshotBytes(state))
        << "replay diverged at save " << r;
  }
}

TEST_F(ContextStoreTest, DeltaChainSurvivesReopen) {
  StoreOptions options;
  options.full_snapshot_every = 8;
  xmldump::PageHistory page = SamplePage();
  PageState state;
  state.title = page.title;
  state.page_id = page.page_id;
  {
    ContextStore store(dir_, {}, options);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    for (size_t r = 0; r < 5 && r < page.revisions.size(); ++r) {
      ApplyRevision(state, page.revisions[r]);
      ASSERT_TRUE(store.Save(state).ok());
    }
    ASSERT_EQ(store.Lookup(page.title)->delta_depth, 4u);
  }
  ContextStore reopened(dir_, {}, options);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_EQ(reopened.Lookup(page.title)->delta_depth, 4u);
  StatusOr<PageState> loaded = reopened.Load(page.title);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SnapshotBytes(*loaded), SnapshotBytes(state));

  // A reopened store keeps extending the chain via deltas — the replayed
  // state is a valid delta base. Step timings are wall-clock and differ
  // between the two fresh ProcessRevision calls, so drain the stats from
  // both sides before comparing bytes.
  if (page.revisions.size() > 5) {
    PageState resumed = std::move(*loaded);
    ApplyRevision(resumed, page.revisions[5]);
    ApplyRevision(state, page.revisions[5]);
    ASSERT_TRUE(reopened.Save(resumed).ok());
    EXPECT_EQ(reopened.Lookup(page.title)->delta_depth, 5u);
    StatusOr<PageState> again = reopened.Load(page.title);
    ASSERT_TRUE(again.ok());
    for (extract::ObjectType type :
         {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
          extract::ObjectType::kList}) {
      again->matcher.TakeStats(type);
      state.matcher.TakeStats(type);
    }
    EXPECT_EQ(SnapshotBytes(*again), SnapshotBytes(state));
  }
}

TEST_F(ContextStoreTest, FullSnapshotEveryOneDisablesDeltas) {
  StoreOptions options;
  options.full_snapshot_every = 1;
  ContextStore store(dir_, {}, options);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  for (int64_t rev = 1; rev <= 4; ++rev) {
    ASSERT_TRUE(store.Save(MakeState("Alpha", rev)).ok());
    EXPECT_EQ(store.Lookup("Alpha")->delta_depth, 0u);
  }
}

TEST_F(ContextStoreTest, UncommittedSavesDroppedOnReopen) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Durable", 1)).ok());
    // Appended but never committed — lost in the "crash", like a torn
    // checkpoint.
    ASSERT_TRUE(store.SaveUncommitted(MakeState("Lost", 1)).ok());
  }
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_TRUE(reopened.Contains("Durable"));
  EXPECT_FALSE(reopened.Contains("Lost"));
}

TEST_F(ContextStoreTest, TornShardTailRecoveredOnOpen) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
  }
  {
    // Garbage after the committed prefix: a write torn by power loss.
    std::ofstream out(OnlyShardFile(), std::ios::binary | std::ios::app);
    out << "SRLF partial frame that never finished";
  }
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  StatusOr<PageState> loaded = reopened.Load("Alpha");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->last_revision_id, 3);
  uint64_t recovered = 0;
  for (const ShardStats& s : reopened.Stats().shards) {
    recovered += s.tail_recovered_bytes;
  }
  EXPECT_GT(recovered, 0u);
}

TEST_F(ContextStoreTest, CompactionKeepsStoreBounded) {
  StoreOptions options;
  options.full_snapshot_every = 1;  // every save supersedes the previous
  options.compact_min_bytes = 256;
  options.compact_ratio = 0.5;
  ContextStore store(dir_, {}, options);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());

  // Saves run compaction inline (no executor attached), so after any
  // Save every shard must already be back under the configured ratio.
  for (int round = 0; round < 12; ++round) {
    for (const char* title : {"Alpha", "Beta", "Gamma"}) {
      ASSERT_TRUE(store.Save(MakeState(title, round + 1)).ok());
    }
  }
  ContextStore::StoreStats stats = store.Stats();
  for (const ShardStats& shard : stats.shards) {
    if (shard.size_bytes == 0) continue;
    const bool under_floor =
        shard.superseded_bytes < options.compact_min_bytes;
    const bool under_ratio =
        static_cast<double>(shard.superseded_bytes) <=
        options.compact_ratio * static_cast<double>(shard.size_bytes);
    EXPECT_TRUE(under_floor || under_ratio)
        << "shard " << shard.shard << ": " << shard.superseded_bytes
        << " superseded of " << shard.size_bytes;
  }
  // Data is intact after however many compactions ran.
  for (const char* title : {"Alpha", "Beta", "Gamma"}) {
    StatusOr<PageState> loaded = store.Load(title);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->last_revision_id, 12);
  }
}

TEST_F(ContextStoreTest, StatsJsonHasStoreShape) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  const std::string json = store.StatsJson();
  EXPECT_NE(json.find("\"shard_count\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"live_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"superseded_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"pending_compactions\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
}

// Satellite of the concurrency story: one thread faulting contexts in
// (serve-style) while compactions rewrite and swap the shard files they
// are reading from. Every fault must see a consistent record chain.
TEST_F(ContextStoreTest, CompactionUnderConcurrentFault) {
  StoreOptions options;
  options.full_snapshot_every = 1;
  options.compact_min_bytes = 256;
  options.shard_count = 2;
  ContextStore store(dir_, {}, options);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());

  const std::vector<std::string> titles = {"P0", "P1", "P2", "P3",
                                           "P4", "P5", "P6", "P7"};
  for (const std::string& title : titles) {
    ASSERT_TRUE(store.Save(MakeState(title, 1)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& title = titles[i++ % titles.size()];
        StatusOr<PageState> loaded = store.Load(title);
        if (!loaded.ok() || loaded->title != title ||
            loaded->last_revision_id < 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  // Writer: keeps superseding records so Save()'s commit path has to
  // compact (inline — no executor) while the readers fault.
  for (int round = 2; round < 30; ++round) {
    for (const std::string& title : titles) {
      ASSERT_TRUE(store.Save(MakeState(title, round)).ok());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace somr::state
