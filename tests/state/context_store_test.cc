#include "state/context_store.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace somr::state {
namespace {

// Fresh store directory per test, removed on teardown.
class ContextStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-store-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  PageState MakeState(const std::string& title, int64_t last_rev) {
    PageState state;
    state.title = title;
    state.page_id = 7;
    state.last_revision_id = last_rev;
    state.last_timestamp = 1600000000 + last_rev;
    state.revisions_ingested = static_cast<uint32_t>(last_rev);
    for (int64_t r = 0; r < last_rev; ++r) {
      state.revisions.emplace_back();
      state.timestamps.push_back(1600000000 + r);
    }
    return state;
  }

  std::string dir_;
};

TEST_F(ContextStoreTest, OpenWithoutCreateIsNotFound) {
  ContextStore store(dir_ + "/missing");
  EXPECT_EQ(store.Open(/*create=*/false).code(), StatusCode::kNotFound);
}

TEST_F(ContextStoreTest, CreateThenReopen) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
    ASSERT_TRUE(store.Save(MakeState("Beta", 5)).ok());
  }
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_TRUE(reopened.Contains("Alpha"));
  EXPECT_TRUE(reopened.Contains("Beta"));
  EXPECT_FALSE(reopened.Contains("Gamma"));

  std::vector<ContextStore::PageInfo> pages = reopened.Pages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0].title, "Alpha");  // sorted by title
  EXPECT_EQ(pages[0].last_revision_id, 3);
  EXPECT_EQ(pages[1].title, "Beta");
  EXPECT_EQ(pages[1].revisions_ingested, 5u);
}

TEST_F(ContextStoreTest, LookupIsManifestIndexProbe) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  EXPECT_FALSE(store.Lookup("Alpha").has_value());

  ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
  std::optional<ContextStore::PageInfo> info = store.Lookup("Alpha");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->title, "Alpha");
  EXPECT_EQ(info->last_revision_id, 3);
  EXPECT_EQ(info->revisions_ingested, 3u);
  EXPECT_FALSE(info->file.empty());
  EXPECT_FALSE(store.Lookup("Beta").has_value());
}

TEST_F(ContextStoreTest, VersionBumpsPerSaveAndResetsOnOpen) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 1)).ok());
  EXPECT_EQ(store.Lookup("Alpha")->version, 1u);
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  EXPECT_EQ(store.Lookup("Alpha")->version, 2u);
  ASSERT_TRUE(store.Save(MakeState("Beta", 1)).ok());
  EXPECT_EQ(store.Lookup("Beta")->version, 1u);

  // Versions are in-memory generations, not persisted: a reopened store
  // starts every manifest entry at 1 again.
  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  EXPECT_EQ(reopened.Lookup("Alpha")->version, 1u);
  EXPECT_EQ(reopened.Lookup("Beta")->version, 1u);
}

TEST_F(ContextStoreTest, LoadRestoresSavedState) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 4)).ok());

  StatusOr<PageState> loaded = store.Load("Alpha");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->title, "Alpha");
  EXPECT_EQ(loaded->page_id, 7);
  EXPECT_EQ(loaded->last_revision_id, 4);
  EXPECT_EQ(loaded->revisions.size(), 4u);
}

TEST_F(ContextStoreTest, LoadUnknownPageIsNotFound) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  EXPECT_EQ(store.Load("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(ContextStoreTest, SaveOverwritesAtomically) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 9)).ok());
  StatusOr<PageState> loaded = store.Load("Alpha");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_revision_id, 9);
  ASSERT_EQ(store.Pages().size(), 1u);
  EXPECT_EQ(store.Pages()[0].last_revision_id, 9);
}

TEST_F(ContextStoreTest, AwkwardTitlesSurviveTheManifest) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  const std::string awkward = "A/B\\C\td\ne \"quoted\" \xc3\xa9";
  ASSERT_TRUE(store.Save(MakeState(awkward, 1)).ok());

  ContextStore reopened(dir_);
  ASSERT_TRUE(reopened.Open(/*create=*/false).ok());
  ASSERT_TRUE(reopened.Contains(awkward));
  StatusOr<PageState> loaded = reopened.Load(awkward);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->title, awkward);
}

TEST_F(ContextStoreTest, RefusesDifferentConfigFingerprint) {
  {
    ContextStore store(dir_);
    ASSERT_TRUE(store.Open(/*create=*/true).ok());
    ASSERT_TRUE(store.Save(MakeState("Alpha", 1)).ok());
  }
  matching::MatcherConfig other;
  other.theta1 = 0.75;
  ContextStore mismatched(dir_, other);
  EXPECT_EQ(mismatched.Open(/*create=*/false).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ContextStoreTest, CorruptSnapshotFileIsCleanError) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 2)).ok());
  // Truncate the snapshot file behind the store's back.
  std::string file = store.Pages()[0].file;
  std::ofstream(dir_ + "/" + file, std::ios::trunc) << "SOMR";
  StatusOr<PageState> loaded = store.Load("Alpha");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(ContextStoreTest, GarbageManifestIsCleanError) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  std::ofstream(dir_ + "/manifest.tsv", std::ios::trunc)
      << "not a manifest\n";
  ContextStore reopened(dir_);
  EXPECT_FALSE(reopened.Open(/*create=*/false).ok());
}

TEST_F(ContextStoreTest, NoTempFilesLeftBehind) {
  ContextStore store(dir_);
  ASSERT_TRUE(store.Open(/*create=*/true).ok());
  ASSERT_TRUE(store.Save(MakeState("Alpha", 3)).ok());
  std::string cmd = "ls '" + dir_ + "' | grep -c '\\.tmp$' > /dev/null";
  EXPECT_NE(std::system(cmd.c_str()), 0);  // grep -c finds none -> exit 1
}

}  // namespace
}  // namespace somr::state
