// Tests for the snapshot-container validator (src/state/validate.h): a
// freshly written snapshot passes, and each seeded byte-level corruption
// (magic, truncation, checksum, fingerprint) is caught.

#include "state/validate.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "extract/object.h"
#include "matching/matcher.h"
#include "state/snapshot.h"

namespace somr::state {
namespace {

PageState MakeState() {
  PageState state;
  state.title = "Validator fixture";
  state.page_id = 7;
  extract::PageObjects rev;
  extract::ObjectInstance table;
  table.type = extract::ObjectType::kTable;
  table.position = 0;
  table.rows = {{"cell"}};
  rev.tables = {table};
  state.matcher.ProcessRevision(0, rev);
  state.revisions.push_back(rev);
  state.timestamps.push_back(1000);
  state.revisions_ingested = 1;
  return state;
}

std::string SnapshotBytes(const PageState& state) {
  std::ostringstream out;
  EXPECT_TRUE(SavePageSnapshot(state, out).ok());
  return out.str();
}

TEST(ValidateSnapshotTest, FreshSnapshotPasses) {
  PageState state = MakeState();
  std::string bytes = SnapshotBytes(state);
  matching::MatcherConfig config;
  ValidationReport report;
  ValidateSnapshotBytes(bytes, &config, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateSnapshotTest, CatchesBadMagic) {
  std::string bytes = SnapshotBytes(MakeState());
  bytes[0] = 'X';
  ValidationReport report;
  ValidateSnapshotBytes(bytes, nullptr, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("magic"), std::string::npos)
      << report.ToString();
}

TEST(ValidateSnapshotTest, CatchesTruncation) {
  std::string bytes = SnapshotBytes(MakeState());
  bytes.resize(bytes.size() / 2);
  ValidationReport report;
  ValidateSnapshotBytes(bytes, nullptr, &report);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateSnapshotTest, CatchesPayloadCorruption) {
  std::string bytes = SnapshotBytes(MakeState());
  // Flip one payload byte near the end; the section checksum must trip.
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x5a);
  ValidationReport report;
  ValidateSnapshotBytes(bytes, nullptr, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("checksum"), std::string::npos)
      << report.ToString();
}

TEST(ValidateSnapshotTest, CatchesFingerprintMismatch) {
  std::string bytes = SnapshotBytes(MakeState());
  matching::MatcherConfig other;
  other.rear_view_window += 3;  // resumed under a different window
  ValidationReport report;
  ValidateSnapshotBytes(bytes, &other, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("fingerprint"), std::string::npos)
      << report.ToString();
}

TEST(ValidateSnapshotTest, MissingFileIsReported) {
  ValidationReport report;
  ValidateSnapshotFile("/nonexistent/somr.snap", nullptr, &report);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace somr::state
