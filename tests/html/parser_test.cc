#include "html/parser.h"

#include <gtest/gtest.h>

namespace somr::html {
namespace {

TEST(HtmlParserTest, SimpleNesting) {
  auto doc = ParseHtml("<div><p>text</p></div>");
  auto divs = doc->Descendants("div");
  ASSERT_EQ(divs.size(), 1u);
  auto ps = divs[0]->ChildElements("p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->InnerText(), "text");
}

TEST(HtmlParserTest, TableStructure) {
  auto doc = ParseHtml(
      "<table><tr><th>H1</th><th>H2</th></tr>"
      "<tr><td>a</td><td>b</td></tr></table>");
  auto tables = doc->Descendants("table");
  ASSERT_EQ(tables.size(), 1u);
  auto rows = tables[0]->ChildElements("tr");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->ChildElements("th").size(), 2u);
  EXPECT_EQ(rows[1]->ChildElements("td").size(), 2u);
}

TEST(HtmlParserTest, ImpliedEndTagsInTables) {
  // No </td> or </tr> anywhere — browsers recover; so do we.
  auto doc = ParseHtml(
      "<table><tr><td>a<td>b<tr><td>c<td>d</table>");
  auto tables = doc->Descendants("table");
  ASSERT_EQ(tables.size(), 1u);
  auto rows = tables[0]->ChildElements("tr");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->ChildElements("td").size(), 2u);
  EXPECT_EQ(rows[1]->ChildElements("td").size(), 2u);
  EXPECT_EQ(rows[1]->ChildElements("td")[1]->InnerText(), "d");
}

TEST(HtmlParserTest, ImpliedLiEndTags) {
  auto doc = ParseHtml("<ul><li>one<li>two<li>three</ul>");
  auto uls = doc->Descendants("ul");
  ASSERT_EQ(uls.size(), 1u);
  auto lis = uls[0]->ChildElements("li");
  ASSERT_EQ(lis.size(), 3u);
  EXPECT_EQ(lis[1]->InnerText(), "two");
}

TEST(HtmlParserTest, ParagraphClosedByBlockElement) {
  auto doc = ParseHtml("<p>intro<table><tr><td>x</td></tr></table>");
  auto ps = doc->Descendants("p");
  ASSERT_EQ(ps.size(), 1u);
  // The table must NOT be inside the paragraph.
  EXPECT_TRUE(ps[0]->Descendants("table").empty());
  EXPECT_EQ(doc->Descendants("table").size(), 1u);
}

TEST(HtmlParserTest, TbodyRows) {
  auto doc = ParseHtml(
      "<table><thead><tr><th>h</th></tr></thead>"
      "<tbody><tr><td>1</td></tr><tr><td>2</td></tr></tbody></table>");
  auto tables = doc->Descendants("table");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0]->Descendants("tr").size(), 3u);
}

TEST(HtmlParserTest, StrayEndTagIgnored) {
  auto doc = ParseHtml("<div>a</span>b</div>");
  auto divs = doc->Descendants("div");
  ASSERT_EQ(divs.size(), 1u);
  // Text nodes are joined with single spaces by InnerText.
  EXPECT_EQ(divs[0]->InnerText(), "a b");
}

TEST(HtmlParserTest, MismatchedEndTagDoesNotEscapeCell) {
  auto doc = ParseHtml(
      "<table><tr><td><b>x</i></td><td>y</td></tr></table>");
  auto tds = doc->Descendants("td");
  ASSERT_EQ(tds.size(), 2u);
  EXPECT_EQ(tds[1]->InnerText(), "y");
}

TEST(HtmlParserTest, VoidElements) {
  auto doc = ParseHtml("<p>a<br>b<img src=\"x\">c</p>");
  auto ps = doc->Descendants("p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->InnerText(), "a b c");
  // br must not swallow following content as children.
  auto brs = doc->Descendants("br");
  ASSERT_EQ(brs.size(), 1u);
  EXPECT_TRUE(brs[0]->children().empty());
}

TEST(HtmlParserTest, NestedTables) {
  auto doc = ParseHtml(
      "<table><tr><td><table><tr><td>inner</td></tr></table></td></tr>"
      "</table>");
  EXPECT_EQ(doc->Descendants("table").size(), 2u);
}

TEST(HtmlParserTest, RoundTripWellFormed) {
  std::string html =
      "<div class=\"x\"><p>hello <b>world</b></p><ul><li>a</li>"
      "<li>b</li></ul></div>";
  auto doc = ParseHtml(html);
  EXPECT_EQ(doc->OuterHtml(), html);
}

TEST(HtmlParserTest, UnclosedElementsAtEof) {
  auto doc = ParseHtml("<div><p>unclosed");
  EXPECT_EQ(doc->Descendants("p").size(), 1u);
  EXPECT_EQ(doc->Descendants("p")[0]->InnerText(), "unclosed");
}

TEST(HtmlParserTest, EmptyDocument) {
  auto doc = ParseHtml("");
  EXPECT_EQ(doc->type(), NodeType::kDocument);
  EXPECT_TRUE(doc->children().empty());
}

TEST(HtmlParserTest, FullDocumentSkeleton) {
  auto doc = ParseHtml(
      "<!DOCTYPE html><html><head><title>T</title></head>"
      "<body><h1>T</h1><p>b</p></body></html>");
  EXPECT_EQ(doc->Descendants("title").size(), 1u);
  EXPECT_EQ(doc->Descendants("h1")[0]->InnerText(), "T");
}

}  // namespace
}  // namespace somr::html
