#include "html/entities.h"

#include <gtest/gtest.h>

namespace somr::html {
namespace {

TEST(DecodeEntitiesTest, NamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeEntities("&lt;tag&gt;"), "<tag>");
  EXPECT_EQ(DecodeEntities("&quot;x&quot;"), "\"x\"");
  EXPECT_EQ(DecodeEntities("&nbsp;"), "\xC2\xA0");
  EXPECT_EQ(DecodeEntities("&ndash;"), "\xE2\x80\x93");
}

TEST(DecodeEntitiesTest, NumericDecimal) {
  EXPECT_EQ(DecodeEntities("&#65;"), "A");
  EXPECT_EQ(DecodeEntities("&#228;"), "\xC3\xA4");
}

TEST(DecodeEntitiesTest, NumericHex) {
  EXPECT_EQ(DecodeEntities("&#x41;"), "A");
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xE2\x82\xAC");  // euro sign
  EXPECT_EQ(DecodeEntities("&#X41;"), "A");
}

TEST(DecodeEntitiesTest, UnknownPassesThrough) {
  EXPECT_EQ(DecodeEntities("&bogus;"), "&bogus;");
  EXPECT_EQ(DecodeEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeEntities("&#x;"), "&#x;");
}

TEST(DecodeEntitiesTest, UnterminatedAmpersandIsLiteral) {
  EXPECT_EQ(DecodeEntities("fish & chips"), "fish & chips");
  EXPECT_EQ(DecodeEntities("&"), "&");
  EXPECT_EQ(DecodeEntities("a&verylongnonentity..."),
            "a&verylongnonentity...");
}

TEST(DecodeEntitiesTest, InvalidCodePointsBecomeReplacement) {
  EXPECT_EQ(DecodeEntities("&#xD800;"), "\xEF\xBF\xBD");
  EXPECT_EQ(DecodeEntities("&#x110000;"), "\xEF\xBF\xBD");
}


TEST(DecodeEntitiesTest, ExtendedNamedEntities) {
  EXPECT_EQ(DecodeEntities("caf&eacute;"), "caf\xC3\xA9");
  EXPECT_EQ(DecodeEntities("&uuml;ber"), "\xC3\xBC" "ber");
  EXPECT_EQ(DecodeEntities("5&euro;"), "5\xE2\x82\xAC");
  EXPECT_EQ(DecodeEntities("&plusmn;2"), "\xC2\xB1" "2");
  EXPECT_EQ(DecodeEntities("&rsquo;"), "\xE2\x80\x99");
}

TEST(EscapeEntitiesTest, EscapesAll5) {
  EXPECT_EQ(EscapeEntities("<a href=\"x\">&'</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&apos;&lt;/a&gt;");
}

TEST(EscapeEntitiesTest, RoundTripWithDecode) {
  std::string original = "a<b & \"c\" 'd'>";
  EXPECT_EQ(DecodeEntities(EscapeEntities(original)), original);
}

TEST(AppendUtf8Test, EncodingLengths) {
  std::string out;
  AppendUtf8('A', out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  AppendUtf8(0xE4, out);  // ä
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  AppendUtf8(0x20AC, out);  // €
  EXPECT_EQ(out.size(), 3u);
  out.clear();
  AppendUtf8(0x1F600, out);  // emoji
  EXPECT_EQ(out.size(), 4u);
}

}  // namespace
}  // namespace somr::html
