#include "html/tokenizer.h"

#include <gtest/gtest.h>

namespace somr::html {
namespace {

TEST(HtmlTokenizerTest, SimpleElement) {
  auto tokens = TokenizeHtml("<p>hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[0].name, "p");
  EXPECT_EQ(tokens[1].type, TokenType::kText);
  EXPECT_EQ(tokens[1].text, "hello");
  EXPECT_EQ(tokens[2].type, TokenType::kEndTag);
  EXPECT_EQ(tokens[2].name, "p");
}

TEST(HtmlTokenizerTest, TagNamesLowercased) {
  auto tokens = TokenizeHtml("<DIV></DIV>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "div");
  EXPECT_EQ(tokens[1].name, "div");
}

TEST(HtmlTokenizerTest, QuotedAttributes) {
  auto tokens = TokenizeHtml("<a href=\"x.html\" title='hi there'>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].Attribute("href"), "x.html");
  EXPECT_EQ(tokens[0].Attribute("title"), "hi there");
  EXPECT_EQ(tokens[0].Attribute("missing"), "");
}

TEST(HtmlTokenizerTest, UnquotedAndValuelessAttributes) {
  auto tokens = TokenizeHtml("<input type=checkbox checked>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].Attribute("type"), "checkbox");
  EXPECT_EQ(tokens[0].Attribute("checked"), "");
  EXPECT_EQ(tokens[0].attributes.size(), 2u);
}

TEST(HtmlTokenizerTest, AttributeEntityDecoding) {
  auto tokens = TokenizeHtml("<a title=\"a &amp; b\">");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].Attribute("title"), "a & b");
}

TEST(HtmlTokenizerTest, SelfClosing) {
  auto tokens = TokenizeHtml("<br/><img src=\"x\"/>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_TRUE(tokens[1].self_closing);
}

TEST(HtmlTokenizerTest, Comment) {
  auto tokens = TokenizeHtml("a<!-- hidden -->b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kComment);
  EXPECT_EQ(tokens[1].text, " hidden ");
}

TEST(HtmlTokenizerTest, Doctype) {
  auto tokens = TokenizeHtml("<!DOCTYPE html><html></html>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kDoctype);
}

TEST(HtmlTokenizerTest, TextEntityDecoding) {
  auto tokens = TokenizeHtml("<p>a &lt; b</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "a < b");
}

TEST(HtmlTokenizerTest, BareLessThanIsText) {
  auto tokens = TokenizeHtml("3 < 4");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "3 < 4");
}

TEST(HtmlTokenizerTest, ScriptIsRawText) {
  auto tokens = TokenizeHtml("<script>if (a<b) {x}</script>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].name, "script");
  EXPECT_EQ(tokens[1].text, "if (a<b) {x}");
  EXPECT_EQ(tokens[2].type, TokenType::kEndTag);
}

TEST(HtmlTokenizerTest, UnterminatedTagAtEof) {
  auto tokens = TokenizeHtml("<div class=\"x");
  // Must not crash; produces a start tag.
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].name, "div");
}

TEST(HtmlTokenizerTest, EmptyInput) {
  EXPECT_TRUE(TokenizeHtml("").empty());
}

}  // namespace
}  // namespace somr::html
