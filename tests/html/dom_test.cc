#include "html/dom.h"

#include <gtest/gtest.h>

namespace somr::html {
namespace {

TEST(DomTest, BuildTree) {
  auto doc = Node::MakeDocument();
  Node* div = doc->AppendChild(Node::MakeElement("div"));
  div->AppendChild(Node::MakeText("hello"));
  EXPECT_EQ(doc->children().size(), 1u);
  EXPECT_EQ(div->parent(), doc.get());
  EXPECT_EQ(div->children()[0]->text(), "hello");
}

TEST(DomTest, Attributes) {
  auto el = Node::MakeElement("a");
  el->SetAttribute("href", "x");
  EXPECT_EQ(el->Attribute("href"), "x");
  EXPECT_TRUE(el->HasAttribute("href"));
  EXPECT_FALSE(el->HasAttribute("title"));
  el->SetAttribute("href", "y");  // overwrite
  EXPECT_EQ(el->Attribute("href"), "y");
  EXPECT_EQ(el->attributes().size(), 1u);
}

TEST(DomTest, DescendantsDocumentOrder) {
  auto doc = Node::MakeDocument();
  Node* outer = doc->AppendChild(Node::MakeElement("div"));
  Node* first = outer->AppendChild(Node::MakeElement("span"));
  first->AppendChild(Node::MakeElement("span"));
  outer->AppendChild(Node::MakeElement("span"));
  auto spans = doc->Descendants("span");
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0], first);
}

TEST(DomTest, ChildElementsFiltersByTag) {
  auto parent = Node::MakeElement("tr");
  parent->AppendChild(Node::MakeElement("td"));
  parent->AppendChild(Node::MakeText("x"));
  parent->AppendChild(Node::MakeElement("th"));
  parent->AppendChild(Node::MakeElement("td"));
  EXPECT_EQ(parent->ChildElements("td").size(), 2u);
  EXPECT_EQ(parent->ChildElements("th").size(), 1u);
}

TEST(DomTest, InnerTextCollapsesWhitespace) {
  auto div = Node::MakeElement("div");
  div->AppendChild(Node::MakeText("  a "));
  Node* span = div->AppendChild(Node::MakeElement("span"));
  span->AppendChild(Node::MakeText(" b\n"));
  EXPECT_EQ(div->InnerText(), "a b");
}

TEST(DomTest, OuterHtmlSerialization) {
  auto div = Node::MakeElement("div");
  div->SetAttribute("class", "x");
  div->AppendChild(Node::MakeText("a<b"));
  EXPECT_EQ(div->OuterHtml(), "<div class=\"x\">a&lt;b</div>");
}

TEST(DomTest, VoidElementSerialization) {
  auto br = Node::MakeElement("br");
  EXPECT_EQ(br->OuterHtml(), "<br>");
}

TEST(DomTest, CommentSerialization) {
  auto doc = Node::MakeDocument();
  doc->AppendChild(Node::MakeComment("note"));
  EXPECT_EQ(doc->OuterHtml(), "<!--note-->");
}

TEST(DomTest, HasClass) {
  auto el = Node::MakeElement("table");
  el->SetAttribute("class", "infobox vcard");
  EXPECT_TRUE(el->HasClass("infobox"));
  EXPECT_TRUE(el->HasClass("vcard"));
  EXPECT_FALSE(el->HasClass("info"));
  EXPECT_FALSE(el->HasClass(""));
}

TEST(DomTest, SubtreeSize) {
  auto doc = Node::MakeDocument();
  Node* div = doc->AppendChild(Node::MakeElement("div"));
  div->AppendChild(Node::MakeText("x"));
  div->AppendChild(Node::MakeElement("span"));
  EXPECT_EQ(doc->SubtreeSize(), 4u);
}

}  // namespace
}  // namespace somr::html
