#include "common/flags.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

FlagParser MakeParser() {
  FlagParser parser;
  parser.AddString("output", "out.csv", "output path");
  parser.AddInt("threads", 1, "worker threads");
  parser.AddDouble("scale", 1.0, "corpus scale");
  parser.AddBool("verbose", false, "chatty output");
  parser.AddBool("spatial", true, "use spatial features");
  return parser;
}

Status ParseArgs(FlagParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsHold) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_EQ(parser.GetString("output"), "out.csv");
  EXPECT_EQ(parser.GetInt("threads"), 1);
  EXPECT_DOUBLE_EQ(parser.GetDouble("scale"), 1.0);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_TRUE(parser.GetBool("spatial"));
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--output=x.json", "--threads=8",
                                 "--scale=2.5", "--verbose=true"})
                  .ok());
  EXPECT_EQ(parser.GetString("output"), "x.json");
  EXPECT_EQ(parser.GetInt("threads"), 8);
  EXPECT_DOUBLE_EQ(parser.GetDouble("scale"), 2.5);
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSeparatedForm) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--threads", "4", "--output", "y"}).ok());
  EXPECT_EQ(parser.GetInt("threads"), 4);
  EXPECT_EQ(parser.GetString("output"), "y");
}

TEST(FlagParserTest, BareBooleanSetsTrue) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--verbose"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, NoPrefixClearsBoolean) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--no-spatial"}).ok());
  EXPECT_FALSE(parser.GetBool("spatial"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(
      ParseArgs(parser, {"input.xml", "--verbose", "second"}).ok());
  ASSERT_EQ(parser.Positional().size(), 2u);
  EXPECT_EQ(parser.Positional()[0], "input.xml");
  EXPECT_EQ(parser.Positional()[1], "second");
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser = MakeParser();
  Status status = ParseArgs(parser, {"--bogus=1"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadIntegerIsError) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--threads=lots"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--threads=4x"}).ok());
}

TEST(FlagParserTest, MissingValueIsError) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--output"}).ok());
}

TEST(FlagParserTest, BadBooleanIsError) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, UsageMentionsEveryFlag) {
  FlagParser parser = MakeParser();
  std::string usage = parser.Usage("tool");
  for (const char* name :
       {"--output", "--threads", "--scale", "--verbose", "--spatial"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace somr
