#include "common/time_util.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(TimeUtilTest, EpochFormats) {
  EXPECT_EQ(FormatIso8601(0), "1970-01-01T00:00:00Z");
}

TEST(TimeUtilTest, KnownTimestamp) {
  // 2019-09-01T00:00:00Z — the paper's dump date.
  UnixSeconds t = FromCivil(2019, 9, 1);
  EXPECT_EQ(FormatIso8601(t), "2019-09-01T00:00:00Z");
}

TEST(TimeUtilTest, RoundTripVariousDates) {
  for (UnixSeconds t : {int64_t{0}, int64_t{951782400} /* 2000-02-29 */,
                        int64_t{1567296000}, int64_t{86399}, int64_t{86400},
                        int64_t{-86400} /* 1969-12-31 */}) {
    auto parsed = ParseIso8601(FormatIso8601(t));
    ASSERT_TRUE(parsed.ok()) << FormatIso8601(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(TimeUtilTest, ParseAcceptsSpaceSeparator) {
  auto t = ParseIso8601("2019-09-01 12:30:45");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatIso8601(*t), "2019-09-01T12:30:45Z");
}

TEST(TimeUtilTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseIso8601("not a date").ok());
  EXPECT_FALSE(ParseIso8601("2019-13-01T00:00:00Z").ok());
  EXPECT_FALSE(ParseIso8601("2019-01-32T00:00:00Z").ok());
  EXPECT_FALSE(ParseIso8601("2019-01-01T25:00:00Z").ok());
  EXPECT_FALSE(ParseIso8601("").ok());
}

TEST(TimeUtilTest, LeapYearHandling) {
  UnixSeconds feb29 = FromCivil(2000, 2, 29);
  UnixSeconds mar1 = FromCivil(2000, 3, 1);
  EXPECT_EQ(mar1 - feb29, kSecondsPerDay);
  EXPECT_EQ(FormatIso8601(feb29), "2000-02-29T00:00:00Z");
}

TEST(TimeUtilTest, TimeOfDayComponents) {
  UnixSeconds t = FromCivil(2010, 6, 15, 13, 45, 30);
  EXPECT_EQ(FormatIso8601(t), "2010-06-15T13:45:30Z");
}

TEST(TimeUtilTest, OrderingMatchesChronology) {
  EXPECT_LT(FromCivil(2005, 1, 1), FromCivil(2005, 1, 2));
  EXPECT_LT(FromCivil(2005, 12, 31), FromCivil(2006, 1, 1));
}

}  // namespace
}  // namespace somr
