#include "common/check.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

// Included for their SOMR_REGISTER_VALIDATOR announcements (the registry
// test below asserts the full suite is visible).
#include "matching/validate.h"
#include "parallel/work_stealing_deque.h"
#include "state/validate.h"

namespace somr {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  SOMR_CHECK(true);
  SOMR_CHECK(1 + 1 == 2) << "never rendered";
  SOMR_CHECK_EQ(4, 4);
  SOMR_CHECK_NE(4, 5);
  SOMR_CHECK_LT(1, 2);
  SOMR_CHECK_LE(2, 2);
  SOMR_CHECK_GT(3, 2);
  SOMR_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailureAbortsWithConditionText) {
  EXPECT_DEATH(SOMR_CHECK(2 + 2 == 5), "Check failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, StreamedMessageSurvives) {
  int step = 17;
  EXPECT_DEATH(SOMR_CHECK(false) << "during step " << step,
               "during step 17");
}

TEST(CheckDeathTest, OpMacrosRenderBothOperands) {
  int lhs = 3;
  int rhs = 7;
  EXPECT_DEATH(SOMR_CHECK_EQ(lhs, rhs), "lhs == rhs \\(3 vs 7\\)");
  EXPECT_DEATH(SOMR_CHECK_GE(lhs, rhs), "lhs >= rhs \\(3 vs 7\\)");
}

TEST(CheckDeathTest, FailureReportsFileAndLine) {
  EXPECT_DEATH(SOMR_CHECK_LT(2, 1), "check_test\\.cc:[0-9]+");
}

struct Unprintable {
  int v = 0;
  bool operator==(const Unprintable&) const = default;
};

TEST(CheckDeathTest, UnprintableOperandsUsePlaceholder) {
  Unprintable a{1};
  Unprintable b{2};
  EXPECT_DEATH(SOMR_CHECK_EQ(a, b), "<unprintable> vs <unprintable>");
}

TEST(CheckTest, ChecksNestUnderIfWithoutDanglingElse) {
  // The `while`-form expansion must keep a trailing `else` bound to the
  // outer `if`; an `if`-based expansion would capture it (greedy
  // else-matching) and silently skip this assignment.
  bool took_else = false;
  if (false)
    SOMR_CHECK_EQ(1, 1);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

#ifdef NDEBUG
TEST(CheckTest, DchecksAreFreeInOptimizedBuilds) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  SOMR_DCHECK(count() == 1);
  SOMR_DCHECK_EQ(count(), 1);
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckDeathTest, DchecksFireInDebugBuilds) {
  EXPECT_DEATH(SOMR_DCHECK_EQ(1, 2), "Check failed: 1 == 2");
}
#endif

TEST(ValidationReportTest, EmptyReportIsOk) {
  ValidationReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.issue_count(), 0u);
  EXPECT_EQ(report.ToString(), "ok");
}

TEST(ValidationReportTest, CollectsStreamedIssues) {
  ValidationReport report;
  report.AddIssue("identity_graph") << "orphan object " << 42;
  report.AddIssue("snapshot") << "stale checksum";
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.issue_count(), 2u);
  EXPECT_EQ(report.issues()[0].validator, "identity_graph");
  EXPECT_EQ(report.issues()[0].detail, "orphan object 42");
  EXPECT_EQ(report.issues()[1].validator, "snapshot");
  EXPECT_EQ(report.issues()[1].detail, "stale checksum");
  EXPECT_NE(report.ToString().find("orphan object 42"), std::string::npos);
}

TEST(ValidatorRegistryTest, SubsystemValidatorsAreRegistered) {
  // The matching/state/parallel validate translation units register their
  // validators at static-init time; linking them into this binary is
  // enough for the registry to see them.
  std::vector<std::string> names;
  for (const ValidatorInfo& info : RegisteredValidators()) {
    names.push_back(info.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "identity_graph"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "matching"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "snapshot"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "deque"), names.end());
}

}  // namespace
}  // namespace somr
