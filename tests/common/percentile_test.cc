#include "common/percentile.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_EQ(Percentile({7.0}, 1.0), 7.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Median of {1,2,3,4} interpolates to 2.5.
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 1.0), 9.0);
  EXPECT_EQ(Percentile(v, -0.5), 1.0);
  EXPECT_EQ(Percentile(v, 2.0), 9.0);
}

TEST(PercentileTest, P90) {
  std::vector<double> v;
  for (int i = 1; i <= 11; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 10.0);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
}

}  // namespace
}  // namespace somr
