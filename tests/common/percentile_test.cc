#include "common/percentile.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_EQ(Percentile({7.0}, 1.0), 7.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Median of {1,2,3,4} interpolates to 2.5.
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 1.0), 9.0);
  EXPECT_EQ(Percentile(v, -0.5), 1.0);
  EXPECT_EQ(Percentile(v, 2.0), 9.0);
}

TEST(PercentileTest, P90) {
  std::vector<double> v;
  for (int i = 1; i <= 11; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 10.0);
}

TEST(PercentileTest, FractionalInterpolationIsExact) {
  // rank = 0.25 * 3 = 0.75 -> 1 + 0.75 * (2 - 1) = 1.75.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
  // rank = 0.95 * 3 = 2.85 -> 3 + 0.85 * (4 - 3) = 3.85.
  EXPECT_DOUBLE_EQ(Percentile({4.0, 3.0, 2.0, 1.0}, 0.95), 3.85);
}

TEST(PercentileTest, DuplicateValues) {
  std::vector<double> v = {2.0, 2.0, 2.0, 2.0};
  EXPECT_EQ(Percentile(v, 0.1), 2.0);
  EXPECT_EQ(Percentile(v, 0.9), 2.0);
}

TEST(PercentileTest, UnsortedInputIsSortedInternally) {
  EXPECT_DOUBLE_EQ(Percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 0.5), 5.0);
}

TEST(PercentileTest, NegativeValues) {
  EXPECT_DOUBLE_EQ(Percentile({-3.0, -1.0, -2.0}, 0.5), -2.0);
  EXPECT_DOUBLE_EQ(Percentile({-4.0, 4.0}, 0.5), 0.0);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
}

TEST(MeanTest, NegativeAndMixed) {
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-2.0, -4.0}), -3.0);
}

}  // namespace
}  // namespace somr
