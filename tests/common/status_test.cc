#include "common/status.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("content");
  std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "content");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailingStep() { return Status::Internal("boom"); }
Status OkStep() { return Status::OK(); }

Status Sequence() {
  SOMR_RETURN_IF_ERROR(OkStep());
  SOMR_RETURN_IF_ERROR(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Sequence();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace somr
