#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace somr {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 20 && !differ; ++i) {
    differ = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformIntRespectBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, GeometricNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(rng.Geometric(0.5), 0);
  }
  EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RngTest, IndexInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
  EXPECT_EQ(rng.Index(1), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(31);
  Rng fork1 = a.Fork();
  Rng b(31);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.UniformInt(0, 1 << 30), fork2.UniformInt(0, 1 << 30));
  }
}

TEST(ZipfTableTest, SkewsTowardSmallIndices) {
  Rng rng(37);
  ZipfTable table(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[static_cast<size_t>(table.Sample(rng))]++;
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(ZipfTableTest, ZeroExponentIsRoughlyUniform) {
  Rng rng(41);
  ZipfTable table(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[static_cast<size_t>(table.Sample(rng))]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

}  // namespace
}  // namespace somr
