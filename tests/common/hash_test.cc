#include "common/hash.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, DifferentInputsDiffer) {
  EXPECT_NE(Fnv1a64("table"), Fnv1a64("list"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t a = Fnv1a64("x");
  uint64_t b = Fnv1a64("y");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

}  // namespace
}  // namespace somr
