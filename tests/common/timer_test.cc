#include "common/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer timer;
  double a = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  double b = timer.ElapsedSeconds();
  EXPECT_GE(b, a);  // steady clock: time never runs backwards
}

TEST(TimerTest, MeasuresASleep) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Sleeps can overshoot arbitrarily but never undershoot.
  EXPECT_GE(timer.ElapsedMillis(), 10.0);
}

TEST(TimerTest, MillisAndSecondsAgree) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Sample once per unit; the second sample is later, so it only ever
  // reads higher — the ratio still pins the unit conversion.
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1000.0);
  EXPECT_LT(millis, (seconds + 1.0) * 1000.0);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double before = timer.ElapsedMillis();
  timer.Reset();
  double after = timer.ElapsedMillis();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 0.0);
}

}  // namespace
}  // namespace somr
