#include "common/string_util.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(StripAsciiWhitespaceTest, Basic) {
  EXPECT_EQ(StripAsciiWhitespace("  hello  "), "hello");
  EXPECT_EQ(StripAsciiWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(AsciiToLower("\xC3\x84"), "\xC3\x84");  // UTF-8 untouched
}

TEST(SplitStringTest, Basic) {
  auto pieces = SplitString("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyPiece) {
  auto pieces = SplitString("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(SplitStringTest, NoSeparator) {
  auto pieces = SplitString("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(SplitAndTrimTest, DropsEmptyAndTrims) {
  auto pieces = SplitAndTrim(" a ; ;b ;", ';');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(ReplaceAllTest, Basic) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaaa", "aa", "b"), "bb");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(ReplaceAll("abc", "z", "x"), "abc");
}

TEST(LooksNumericTest, AcceptsNumbers) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-3.5"));
  EXPECT_TRUE(LooksNumeric("+7"));
  EXPECT_TRUE(LooksNumeric("1,234,567"));
  EXPECT_TRUE(LooksNumeric(" 99 "));
}

TEST(LooksNumericTest, RejectsNonNumbers) {
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("3a"));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric("."));
}

TEST(CollapseWhitespaceTest, Basic) {
  EXPECT_EQ(CollapseWhitespace("a  b\n c"), "a b c");
  EXPECT_EQ(CollapseWhitespace("  x  "), "x");
  EXPECT_EQ(CollapseWhitespace(""), "");
  EXPECT_EQ(CollapseWhitespace(" \t\n "), "");
}

TEST(EqualsIgnoreAsciiCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreAsciiCase("Infobox", "infobox"));
  EXPECT_TRUE(EqualsIgnoreAsciiCase("", ""));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("abc", "abcd"));
}

}  // namespace
}  // namespace somr
