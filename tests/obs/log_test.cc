#include "obs/log.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"
#include "obs/trace.h"

namespace somr::obs {
namespace {

using somr::testutil::JsonChecker;

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kDebug);
    SetLogSink([this](const std::string& line) { lines_.push_back(line); });
  }
  void TearDown() override {
    SetLogSink({});  // restore stderr
    SetLogLevel(LogLevel::kInfo);
  }

  std::vector<std::string> lines_;
};

TEST_F(LogTest, LevelThresholdDiscardsBelow) {
  SetLogLevel(LogLevel::kWarn);
  SOMR_LOG(Debug) << "dropped";
  SOMR_LOG(Info) << "dropped";
  SOMR_LOG(Warn) << "kept";
  SOMR_LOG(Error) << "kept";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("\"level\": \"warn\""), std::string::npos);
  EXPECT_NE(lines_[1].find("\"level\": \"error\""), std::string::npos);
}

TEST_F(LogTest, DiscardedStatementsDoNotEvaluateArguments) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  SOMR_LOG(Error) << [&] {
    ++evaluations;
    return "side effect";
  }();
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, LineIsOneValidJsonObjectWithStampedFields) {
  SOMR_LOG(Info) << "resident contexts: " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_TRUE(JsonChecker(line.substr(0, line.size() - 1)).Valid()) << line;
  EXPECT_NE(line.find("\"ts\": "), std::string::npos);
  EXPECT_NE(line.find("\"msg\": \"resident contexts: 42\""),
            std::string::npos);
  EXPECT_NE(line.find("\"file\": \"log_test.cc\""), std::string::npos);
  EXPECT_NE(line.find("\"line\": "), std::string::npos);
}

TEST_F(LogTest, MessageContentIsJsonEscaped) {
  SOMR_LOG(Warn) << "quote \" backslash \\ newline \n done";
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_TRUE(JsonChecker(line.substr(0, line.size() - 1)).Valid()) << line;
  EXPECT_NE(line.find("quote \\\" backslash \\\\ newline \\n done"),
            std::string::npos);
}

TEST_F(LogTest, TraceIdStampedOnlyInsideRequestScope) {
  SOMR_LOG(Info) << "outside";
  {
    TraceIdScope scope(0xabc);
    SOMR_LOG(Info) << "inside";
  }
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].find("trace_id"), std::string::npos);
  EXPECT_NE(lines_[1].find("\"trace_id\": \"0000000000000abc\""),
            std::string::npos);
}

TEST_F(LogTest, SiteRateLimitCapsAWindowAndReportsSuppression) {
  // Drive the limiter directly with injected time: 40 calls in one
  // window admit kMaxPerWindow and suppress the rest; the first call of
  // the next window carries the suppressed count.
  LogSite site;
  uint64_t suppressed = 0;
  uint32_t admitted = 0;
  for (int i = 0; i < 40; ++i) {
    if (site.Admit(/*now_s=*/100, &suppressed)) ++admitted;
  }
  EXPECT_EQ(admitted, LogSite::kMaxPerWindow);
  ASSERT_TRUE(site.Admit(/*now_s=*/100 + LogSite::kWindowSeconds,
                         &suppressed));
  EXPECT_EQ(suppressed, 40u - LogSite::kMaxPerWindow);
  // The counter was claimed by that line; it does not repeat.
  ASSERT_TRUE(site.Admit(100 + LogSite::kWindowSeconds, &suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST_F(LogTest, MacroBurstIsRateLimitedPerSite) {
  for (int i = 0; i < 100; ++i) {
    SOMR_LOG(Error) << "burst " << i;
  }
  // One call site, one window (the loop runs in microseconds).
  EXPECT_EQ(lines_.size(), static_cast<size_t>(LogSite::kMaxPerWindow));
}

TEST_F(LogTest, ParseLogLevelRoundTripsAndDefaultsToInfo) {
  for (LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kInfo);
}

}  // namespace
}  // namespace somr::obs
