#include "obs/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace somr::obs {
namespace {

// All tests share the process-global registry, so each uses uniquely
// named metrics and resets values up front.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetValuesForTest(); }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter* c = MetricsRegistry::Global().GetCounter("test_counter_basic",
                                                    "test counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST_F(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test_counter_idem", "first help wins");
  Counter* b = reg.GetCounter("test_counter_idem", "ignored");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test_gauge", "test");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Value(), -2.25);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bounds: 1, 2, 4, 8 (+Inf overflow). Upper bounds are inclusive,
  // matching the Prometheus `le` convention.
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_hist_bounds", "test", 1.0, 2.0, 4);
  ASSERT_EQ(h->bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(h->bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h->bounds()[3], 8.0);

  EXPECT_EQ(h->BucketFor(0.0), 0u);
  EXPECT_EQ(h->BucketFor(1.0), 0u);  // on-boundary goes to the lower bucket
  EXPECT_EQ(h->BucketFor(1.0001), 1u);
  EXPECT_EQ(h->BucketFor(2.0), 1u);
  EXPECT_EQ(h->BucketFor(4.0), 2u);
  EXPECT_EQ(h->BucketFor(8.0), 3u);
  EXPECT_EQ(h->BucketFor(8.0001), 4u);  // overflow bucket
  EXPECT_EQ(h->BucketFor(1e300), 4u);
}

TEST_F(MetricsTest, HistogramObserveCountsAndSums) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_hist_observe", "test", 1.0, 2.0, 3);  // bounds 1, 2, 4
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(3.0);
  h->Observe(100.0);  // overflow

  MetricsSnapshot snap = MetricsRegistry::Global().Scrape();
  const MetricsSnapshot::HistogramRow* row = nullptr;
  for (const auto& r : snap.histograms) {
    if (r.name == "test_hist_observe") row = &r;
  }
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(row->counts[0], 1u);
  EXPECT_EQ(row->counts[1], 1u);
  EXPECT_EQ(row->counts[2], 1u);
  EXPECT_EQ(row->counts[3], 1u);
  EXPECT_EQ(row->total_count, 4u);
  EXPECT_DOUBLE_EQ(row->sum, 105.0);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsLoseNothing) {
  Counter* c = MetricsRegistry::Global().GetCounter("test_counter_mt",
                                                    "test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  // Exited threads retire their shards into the registry totals, so the
  // merged value must be exact.
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ConcurrentHistogramObservations) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_hist_mt", "test", 1.0, 10.0, 2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(0.5);
    });
  }
  for (auto& th : threads) th.join();

  MetricsSnapshot snap = MetricsRegistry::Global().Scrape();
  for (const auto& r : snap.histograms) {
    if (r.name != "test_hist_mt") continue;
    EXPECT_EQ(r.total_count,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(r.sum, 0.5 * kThreads * kPerThread);
    return;
  }
  FAIL() << "test_hist_mt not scraped";
}

TEST_F(MetricsTest, ScrapeIsSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test_sort_b", "b");
  reg.GetCounter("test_sort_a", "a");
  MetricsSnapshot snap = reg.Scrape();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST_F(MetricsTest, TextRenderingIsPrometheusShaped) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test_render_total", "a rendered counter")->Increment(3);
  Histogram* h = reg.GetHistogram("test_render_seconds", "hist", 1.0, 2.0, 2);
  h->Observe(0.5);

  std::string text = RenderMetricsText(reg.Scrape());
  EXPECT_NE(text.find("# HELP test_render_total a rendered counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("test_render_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_seconds_count 1"), std::string::npos);
}

TEST_F(MetricsTest, JsonRenderingContainsSections) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test_json_total", "c")->Increment();
  std::string json = RenderMetricsJson(reg.Scrape());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // renderer ends "}\n"
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\": 1"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsDefinitions) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test_reset_total", "c");
  c->Increment(5);
  reg.ResetValuesForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("test_reset_total", "c"), c);
}

}  // namespace
}  // namespace somr::obs
