#include "obs/provenance.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "matching/matcher.h"
#include "xmldump/dump.h"

namespace somr::obs {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance Table(std::initializer_list<const char*> rows) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  for (const char* row : rows) {
    std::vector<std::string> cells;
    std::string current;
    for (const char* p = row;; ++p) {
      if (*p == ' ' || *p == '\0') {
        if (!current.empty()) cells.push_back(std::move(current));
        current.clear();
        if (*p == '\0') break;
      } else {
        current.push_back(*p);
      }
    }
    obj.rows.push_back(std::move(cells));
  }
  return obj;
}

std::vector<ObjectInstance> Revision(std::vector<ObjectInstance> objs) {
  for (size_t i = 0; i < objs.size(); ++i) {
    objs[i].position = static_cast<int>(i);
  }
  return objs;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Pulls `"key": <raw value>` out of a flat one-line JSON object.
std::string JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  at += needle.size();
  size_t end = at;
  if (line[at] == '"') {
    end = line.find('"', at + 1);
    return line.substr(at + 1, end - at - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(at, end - at);
}

TEST(ProvenanceTest, KindNames) {
  EXPECT_STREQ(MatchDecisionKindName(MatchDecision::Kind::kMatch), "match");
  EXPECT_STREQ(MatchDecisionKindName(MatchDecision::Kind::kReject),
               "reject");
  EXPECT_STREQ(MatchDecisionKindName(MatchDecision::Kind::kNewObject),
               "new_object");
  EXPECT_STREQ(MatchDecisionKindName(MatchDecision::Kind::kStep), "step");
}

TEST(ProvenanceTest, JsonEscapesPageTitles) {
  MatchDecision d;
  d.kind = MatchDecision::Kind::kNewObject;
  d.page = "A \"quoted\"\ttitle\n";
  std::string json = MatchDecisionToJson(d);
  EXPECT_NE(json.find("A \\\"quoted\\\"\\ttitle\\n"), std::string::npos)
      << json;
}

TEST(ProvenanceTest, MatcherEmitsOneMatchPerIdentityEdge) {
  // Golden two-revision page: two stable tables, matched once each at
  // revision 1, so the identity graph has exactly 2 edges.
  matching::TemporalMatcher matcher(ObjectType::kTable);
  std::ostringstream out;
  JsonlProvenanceWriter writer(out);
  matcher.SetProvenanceSink(&writer);

  ObjectInstance a = Table({"alpha beta gamma", "one two three"});
  ObjectInstance b = Table({"delta epsilon zeta", "four five six"});
  matcher.ProcessRevision(0, Revision({a, b}));
  matcher.ProcessRevision(1, Revision({a, b}));

  const size_t edges = matcher.graph().VersionCount() -
                       matcher.graph().ObjectCount();
  EXPECT_EQ(edges, 2u);

  std::map<std::string, int> by_kind;
  for (const std::string& line : Lines(out.str())) {
    by_kind[JsonField(line, "kind")]++;
  }
  EXPECT_EQ(by_kind["match"], static_cast<int>(edges));
  EXPECT_EQ(by_kind["new_object"],
            static_cast<int>(matcher.graph().ObjectCount()));
  EXPECT_EQ(by_kind["step"], 2);  // one per ProcessRevision call
  EXPECT_EQ(writer.match_records(), edges);
}

TEST(ProvenanceTest, MatchRecordsCarryStageAndSimilarity) {
  matching::TemporalMatcher matcher(ObjectType::kTable);
  std::ostringstream out;
  JsonlProvenanceWriter writer(out);
  matcher.SetProvenanceSink(&writer);

  ObjectInstance t = Table({"year result", "2001 won"});
  matcher.ProcessRevision(0, Revision({t}));
  matcher.ProcessRevision(1, Revision({t}));

  bool saw_match = false;
  for (const std::string& line : Lines(out.str())) {
    if (JsonField(line, "kind") != "match") continue;
    saw_match = true;
    EXPECT_EQ(JsonField(line, "type"), "table");
    EXPECT_EQ(JsonField(line, "revision"), "1");
    // Identical content matches in stage 1 (local, strict) with sim 1.
    EXPECT_EQ(JsonField(line, "stage"), "1");
    EXPECT_EQ(JsonField(line, "sim"), "1.000000");
    EXPECT_EQ(JsonField(line, "reason"), "matched");
    // The rear view holds one prior version; the best one is 0 back.
    EXPECT_EQ(JsonField(line, "rear_view_depth"), "0");
    EXPECT_EQ(JsonField(line, "rear_view_len"), "1");
  }
  EXPECT_TRUE(saw_match);
}

TEST(ProvenanceTest, LegacyEngineEmitsSameDecisions) {
  matching::MatcherConfig legacy_config;
  legacy_config.use_flat_kernels = false;
  matching::TemporalMatcher flat(ObjectType::kTable);
  matching::TemporalMatcher legacy(ObjectType::kTable, legacy_config);

  std::ostringstream flat_out, legacy_out;
  JsonlProvenanceWriter flat_writer(flat_out);
  JsonlProvenanceWriter legacy_writer(legacy_out);
  flat.SetProvenanceSink(&flat_writer);
  legacy.SetProvenanceSink(&legacy_writer);

  ObjectInstance a = Table({"alpha beta gamma", "one two three"});
  ObjectInstance b = Table({"delta epsilon zeta", "four five six"});
  for (int r = 0; r < 3; ++r) {
    auto rev = r == 1 ? Revision({b, a}) : Revision({a, b});
    flat.ProcessRevision(r, rev);
    legacy.ProcessRevision(r, rev);
  }

  // Same decisions from both engines: compare kind/stage/object/position
  // of every pair record (step records differ in prune counters).
  auto key_of = [](const std::string& line) {
    return JsonField(line, "kind") + "|" + JsonField(line, "stage") + "|" +
           JsonField(line, "object") + "|" + JsonField(line, "position") +
           "|" + JsonField(line, "revision");
  };
  std::vector<std::string> flat_keys, legacy_keys;
  for (const std::string& line : Lines(flat_out.str())) {
    if (JsonField(line, "kind") != "step") flat_keys.push_back(key_of(line));
  }
  for (const std::string& line : Lines(legacy_out.str())) {
    if (JsonField(line, "kind") != "step") {
      legacy_keys.push_back(key_of(line));
    }
  }
  EXPECT_EQ(flat_keys, legacy_keys);
}

TEST(ProvenanceTest, NewObjectRecordsOnFirstRevision) {
  matching::TemporalMatcher matcher(ObjectType::kTable);
  std::ostringstream out;
  JsonlProvenanceWriter writer(out);
  matcher.SetProvenanceSink(&writer);

  matcher.ProcessRevision(
      0, Revision({Table({"first table content here"}),
                   Table({"second unrelated table text"})}));

  int new_objects = 0;
  for (const std::string& line : Lines(out.str())) {
    if (JsonField(line, "kind") != "new_object") continue;
    ++new_objects;
    EXPECT_EQ(JsonField(line, "reason"), "new_object");
    EXPECT_EQ(JsonField(line, "revision"), "0");
  }
  EXPECT_EQ(new_objects, 2);
}

TEST(ProvenanceTest, PipelineStampsPageTitles) {
  const char* xml = R"(<mediawiki>
<page><title>Alpha</title><id>1</id>
<revision><id>11</id><timestamp>2020-01-01T00:00:00Z</timestamp>
<text>{| class="wikitable"
|-
! year !! result
|-
| 2001 || won
|}</text></revision>
<revision><id>12</id><timestamp>2020-01-02T00:00:00Z</timestamp>
<text>{| class="wikitable"
|-
! year !! result
|-
| 2001 || won
|}</text></revision>
</page>
</mediawiki>)";

  std::ostringstream out;
  JsonlProvenanceWriter writer(out);
  core::Pipeline pipeline;
  pipeline.set_provenance_sink(&writer);
  auto results = pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  std::vector<std::string> lines = Lines(out.str());
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_EQ(JsonField(line, "page"), "Alpha") << line;
  }
  // The stable table yields exactly one match edge at revision 1.
  EXPECT_EQ(writer.match_records(), 1u);
}

TEST(ProvenanceTest, DetachedSinkEmitsNothing) {
  matching::TemporalMatcher matcher(ObjectType::kTable);
  std::ostringstream out;
  JsonlProvenanceWriter writer(out);
  matcher.SetProvenanceSink(&writer);
  matcher.SetProvenanceSink(nullptr);  // detach again

  ObjectInstance t = Table({"year result", "2001 won"});
  matcher.ProcessRevision(0, Revision({t}));
  matcher.ProcessRevision(1, Revision({t}));
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(writer.records(), 0u);
}

}  // namespace
}  // namespace somr::obs
