#include "obs/window.h"

#include <string>

#include <gtest/gtest.h>

#include "json_checker.h"

namespace somr::obs {
namespace {

using somr::testutil::JsonChecker;

// Shape used throughout: exponential buckets [1,2) [2,4) [4,8) [8,16)
// plus underflow [0,1) and overflow [16,inf), tiny 2s sub-windows so a
// test can age samples out quickly.
WindowedHistogram MakeHistogram(double slo_threshold = 0.0) {
  return WindowedHistogram(/*first_bound=*/1.0, /*growth=*/2.0,
                           /*bucket_count=*/4, slo_threshold,
                           /*sub_window_seconds=*/2, /*sub_windows=*/5);
}

TEST(WindowedHistogramTest, EmptyStatsAreZero) {
  WindowedHistogram h = MakeHistogram();
  WindowStats s = h.StatsOverAt(60, /*now_s=*/1000);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.slo_violations, 0u);
}

TEST(WindowedHistogramTest, CountSumAndPercentileBounds) {
  WindowedHistogram h = MakeHistogram();
  // 90 fast observations in [1,2), 10 slow ones in [8,16).
  for (int i = 0; i < 90; ++i) h.ObserveAt(1.5, /*now_s=*/1000);
  for (int i = 0; i < 10; ++i) h.ObserveAt(9.0, /*now_s=*/1000);

  WindowStats s = h.StatsOverAt(60, /*now_s=*/1000);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 90 * 1.5 + 10 * 9.0);
  // p50 interpolates inside the [1,2) bucket; p95 and p99 land in the
  // slow [8,16) bucket. Interpolation is bucket-linear, so assert
  // bucket-level containment rather than exact values.
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LT(s.p50, 2.0);
  EXPECT_GE(s.p95, 8.0);
  EXPECT_LE(s.p95, 16.0);
  EXPECT_GE(s.p99, 8.0);
  EXPECT_LE(s.p99, 16.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(WindowedHistogramTest, SloViolationsCountOnlyAboveThreshold) {
  WindowedHistogram h = MakeHistogram(/*slo_threshold=*/5.0);
  h.ObserveAt(1.0, 1000);
  h.ObserveAt(5.0, 1000);   // exactly at threshold: not a violation
  h.ObserveAt(5.1, 1000);
  h.ObserveAt(100.0, 1000);
  WindowStats s = h.StatsOverAt(60, 1000);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.slo_violations, 2u);
}

TEST(WindowedHistogramTest, ZeroThresholdDisablesSlo) {
  WindowedHistogram h = MakeHistogram(/*slo_threshold=*/0.0);
  h.ObserveAt(1e9, 1000);
  EXPECT_EQ(h.StatsOverAt(60, 1000).slo_violations, 0u);
}

TEST(WindowedHistogramTest, HorizonExcludesOlderSubWindows) {
  WindowedHistogram h = MakeHistogram();
  h.ObserveAt(1.0, /*now_s=*/1000);  // epoch 500
  h.ObserveAt(1.0, /*now_s=*/1004);  // epoch 502
  // A 2s horizon read at t=1004 only covers epoch 502.
  EXPECT_EQ(h.StatsOverAt(2, 1004).count, 1u);
  // A full-span horizon covers both.
  EXPECT_EQ(h.StatsOverAt(h.span_seconds(), 1004).count, 2u);
}

TEST(WindowedHistogramTest, SamplesAgeOutPastTheRingSpan) {
  WindowedHistogram h = MakeHistogram();  // span = 2s * 5 = 10s
  ASSERT_EQ(h.span_seconds(), 10);
  h.ObserveAt(3.0, /*now_s=*/1000);
  EXPECT_EQ(h.StatsOverAt(10, 1000).count, 1u);
  // 8s later the sample is still inside the span...
  EXPECT_EQ(h.StatsOverAt(10, 1008).count, 1u);
  // ...but after a full ring revolution it is gone even though the slot
  // was never overwritten (stale-epoch slots are skipped on read).
  EXPECT_EQ(h.StatsOverAt(10, 1020).count, 0u);
}

TEST(WindowedHistogramTest, SlotRecyclingDropsTheOldEpoch) {
  WindowedHistogram h = MakeHistogram();
  h.ObserveAt(1.0, /*now_s=*/1000);  // epoch 500 -> slot 0
  h.ObserveAt(1.0, /*now_s=*/1020);  // epoch 510 -> same slot, recycled
  WindowStats s = h.StatsOverAt(h.span_seconds(), 1020);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 1.0);
}

TEST(WindowedHistogramTest, HorizonClampsToTheRingSpan) {
  WindowedHistogram h = MakeHistogram();
  h.ObserveAt(2.0, 1000);
  // Asking for an hour is answered over the 10s the ring actually holds.
  EXPECT_EQ(h.StatsOverAt(3600, 1000).count, 1u);
  EXPECT_EQ(h.StatsOverAt(3600, 1020).count, 0u);
}

TEST(WindowRegistryTest, SameNameReturnsSameHistogram) {
  WindowedHistogram* a = WindowRegistry::Global().GetHistogram(
      "window_test_dup", 1e-4, 4.0, 10, 0.5);
  WindowedHistogram* b = WindowRegistry::Global().GetHistogram(
      "window_test_dup", 9.9, 9.9, 3, 0.1);  // shape args ignored
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(b->slo_threshold(), 0.5);  // first registration wins
}

TEST(WindowRegistryTest, RenderJsonIsWellFormedAndCarriesPercentiles) {
  WindowedHistogram* h = WindowRegistry::Global().GetHistogram(
      "window_test_render", 1e-4, 4.0, 10, 0.5);
  h->Observe(0.001);
  h->Observe(0.9);  // SLO violation at 0.5s threshold

  std::string json = WindowRegistry::Global().RenderJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"window_test_render\""), std::string::npos);
  EXPECT_NE(json.find("\"1m\""), std::string::npos);
  EXPECT_NE(json.find("\"5m\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"slo_violations\": 1"), std::string::npos) << json;
}

TEST(WindowRegistryTest, SloViolationsSumAcrossHistograms) {
  const int64_t now_s = WindowNowSeconds();
  WindowedHistogram* a = WindowRegistry::Global().GetHistogram(
      "window_test_slo_a", 1e-4, 4.0, 10, 0.5);
  WindowedHistogram* b = WindowRegistry::Global().GetHistogram(
      "window_test_slo_b", 1e-4, 4.0, 10, 0.5);
  const uint64_t before = WindowRegistry::Global().SloViolationsAt(now_s);
  a->ObserveAt(1.0, now_s);
  a->ObserveAt(0.1, now_s);
  b->ObserveAt(2.0, now_s);
  EXPECT_EQ(WindowRegistry::Global().SloViolationsAt(now_s), before + 2);
}

}  // namespace
}  // namespace somr::obs
