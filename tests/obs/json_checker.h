#pragma once

// Minimal recursive-descent JSON well-formedness checker — enough for
// tests to validate emitted JSON without a JSON dependency. Shared by
// the obs and serve test suites.

#include <cctype>
#include <string>

namespace somr::testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace somr::testutil
