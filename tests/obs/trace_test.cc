#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace somr::obs {
namespace {

/// Minimal recursive-descent JSON well-formedness checker — enough to
/// validate the exporter's output without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceRecorder::Global().Disable();
  TraceRecorder::Global().Clear();
  ASSERT_FALSE(TracingEnabled());
  { SOMR_TRACE_SCOPE("test/ignored"); }
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  TraceRecorder::Global().Enable(64);
  { SOMR_TRACE_SCOPE_CAT("testcat", "test/span"); }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/span");
  EXPECT_STREQ(events[0].cat, "testcat");
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_GE(events[0].start_ns, 0);
}

TEST_F(TraceTest, NestedSpansCloseInnerFirst) {
  TraceRecorder::Global().Enable(64);
  {
    SOMR_TRACE_SCOPE("test/outer");
    { SOMR_TRACE_SCOPE("test/inner"); }
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: inner ends before outer.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_STREQ(events[1].name, "test/outer");
  // The inner span nests inside the outer one.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(TraceTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("test/evt", "test", i, 1);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: starts 6, 7, 8, 9.
  EXPECT_EQ(events.front().start_ns, 6);
  EXPECT_EQ(events.back().start_ns, 9);
}

TEST_F(TraceTest, ExportIsWellFormedChromeTraceJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(64);
  { SOMR_TRACE_SCOPE_CAT("match", "match/stage1"); }
  { SOMR_TRACE_SCOPE_CAT("pipeline", "pipeline/page"); }
  recorder.Disable();

  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("match/stage1"), std::string::npos);
  EXPECT_NE(json.find("pipeline/page"), std::string::npos);
}

TEST_F(TraceTest, ExportWithNoEventsIsValidJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  recorder.Disable();
  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST_F(TraceTest, ConcurrentSpansAllLand) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        SOMR_TRACE_SCOPE("test/worker");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  // Thread ids are small sequential values, distinct per thread.
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST_F(TraceTest, EnableResetsPriorEvents) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  { SOMR_TRACE_SCOPE("test/old"); }
  recorder.Enable(16);  // re-enable clears
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

}  // namespace
}  // namespace somr::obs
