#include "obs/trace.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"

namespace somr::obs {
namespace {

using somr::testutil::JsonChecker;

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceRecorder::Global().Disable();
  TraceRecorder::Global().Clear();
  ASSERT_FALSE(TracingEnabled());
  { SOMR_TRACE_SCOPE("test/ignored"); }
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  TraceRecorder::Global().Enable(64);
  { SOMR_TRACE_SCOPE_CAT("testcat", "test/span"); }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/span");
  EXPECT_STREQ(events[0].cat, "testcat");
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_GE(events[0].start_ns, 0);
}

TEST_F(TraceTest, NestedSpansCloseInnerFirst) {
  TraceRecorder::Global().Enable(64);
  {
    SOMR_TRACE_SCOPE("test/outer");
    { SOMR_TRACE_SCOPE("test/inner"); }
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: inner ends before outer.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_STREQ(events[1].name, "test/outer");
  // The inner span nests inside the outer one.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(TraceTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("test/evt", "test", i, 1);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: starts 6, 7, 8, 9.
  EXPECT_EQ(events.front().start_ns, 6);
  EXPECT_EQ(events.back().start_ns, 9);
}

TEST_F(TraceTest, ExportIsWellFormedChromeTraceJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(64);
  { SOMR_TRACE_SCOPE_CAT("match", "match/stage1"); }
  { SOMR_TRACE_SCOPE_CAT("pipeline", "pipeline/page"); }
  recorder.Disable();

  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("match/stage1"), std::string::npos);
  EXPECT_NE(json.find("pipeline/page"), std::string::npos);
}

TEST_F(TraceTest, ExportWithNoEventsIsValidJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  recorder.Disable();
  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST_F(TraceTest, ConcurrentSpansAllLand) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        SOMR_TRACE_SCOPE("test/worker");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  // Thread ids are small sequential values, distinct per thread.
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST_F(TraceTest, EnableResetsPriorEvents) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  { SOMR_TRACE_SCOPE("test/old"); }
  recorder.Enable(16);  // re-enable clears
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Request trace ids.

TEST_F(TraceTest, NextTraceIdIsNonzeroAndUnique) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST_F(TraceTest, TraceIdHexRoundTrips) {
  EXPECT_EQ(TraceIdHex(0xdeadbeef12345678ULL), "deadbeef12345678");
  EXPECT_EQ(TraceIdHex(1), "0000000000000001");
  EXPECT_EQ(ParseTraceIdHex("deadbeef12345678"), 0xdeadbeef12345678ULL);
  EXPECT_EQ(ParseTraceIdHex("1"), 1u);  // short form accepted
  EXPECT_EQ(ParseTraceIdHex("ABCD"), 0xabcdu);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = NextTraceId();
    EXPECT_EQ(ParseTraceIdHex(TraceIdHex(id)), id);
  }
  // Malformed inputs parse to 0 (no request context).
  EXPECT_EQ(ParseTraceIdHex(""), 0u);
  EXPECT_EQ(ParseTraceIdHex("xyz"), 0u);
  EXPECT_EQ(ParseTraceIdHex("12g4"), 0u);
  EXPECT_EQ(ParseTraceIdHex("0123456789abcdef0"), 0u);  // 17 digits
}

TEST_F(TraceTest, TraceIdScopeNestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    TraceIdScope outer(0x11);
    EXPECT_EQ(CurrentTraceId(), 0x11u);
    {
      TraceIdScope inner(0x22);
      EXPECT_EQ(CurrentTraceId(), 0x22u);
    }
    EXPECT_EQ(CurrentTraceId(), 0x11u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST_F(TraceTest, TraceIdIsThreadLocal) {
  TraceIdScope scope(0x33);
  uint64_t on_other_thread = 1;
  std::thread([&] { on_other_thread = CurrentTraceId(); }).join();
  EXPECT_EQ(on_other_thread, 0u);
  EXPECT_EQ(CurrentTraceId(), 0x33u);
}

TEST_F(TraceTest, SpansCaptureTheActiveTraceId) {
  TraceRecorder::Global().Enable(16);
  { SOMR_TRACE_SCOPE("test/unowned"); }
  {
    TraceIdScope scope(0xabc);
    SOMR_TRACE_SCOPE("test/owned");
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[1].trace_id, 0xabcu);
}

TEST_F(TraceTest, ChromeJsonCarriesTraceIdArg) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  {
    TraceIdScope scope(0xdeadbeef12345678ULL);
    SOMR_TRACE_SCOPE("test/traced");
  }
  { SOMR_TRACE_SCOPE("test/untraced"); }
  recorder.Disable();

  std::string json = recorder.ExportChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"trace_id\": \"deadbeef12345678\""),
            std::string::npos)
      << json;
  // Exactly one event has the arg: the untraced span omits it.
  EXPECT_EQ(json.find("trace_id"), json.rfind("trace_id"));
}

TEST_F(TraceTest, EventsSinceFiltersByStartTime) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  recorder.Record("test/early", "test", 100, 1);
  recorder.Record("test/late", "test", 500, 1);
  std::vector<TraceEvent> all = recorder.EventsSince(0);
  ASSERT_EQ(all.size(), 2u);
  std::vector<TraceEvent> late = recorder.EventsSince(200);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_STREQ(late[0].name, "test/late");
  EXPECT_TRUE(recorder.EventsSince(501).empty());
}

}  // namespace
}  // namespace somr::obs
