// "Near-zero cost when disabled" is a hard requirement (DESIGN.md §9):
// with tracing off and no provenance sink, the instrumented hot path must
// not allocate. This test overrides global new/delete to count heap
// activity across the whole obs_test binary and asserts a zero delta
// around disabled-path operations.

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace somr::obs {
namespace {

size_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(OverheadTest, DisabledTraceSpansDoNotAllocate) {
  TraceRecorder::Global().Disable();
  ASSERT_FALSE(TracingEnabled());
  size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    SOMR_TRACE_SCOPE("overhead/span");
    SOMR_TRACE_SCOPE_CAT("overhead", "overhead/span_cat");
  }
  EXPECT_EQ(AllocationCount() - before, 0u);
}

TEST(OverheadTest, CounterIncrementsDoNotAllocate) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "test_overhead_counter", "overhead probe");
  c->Increment();  // warm up: first touch creates this thread's shard
  size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) c->Increment();
  EXPECT_EQ(AllocationCount() - before, 0u);
}

TEST(OverheadTest, HistogramObserveDoesNotAllocate) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test_overhead_hist", "overhead probe", 1e-6, 2.0, 16);
  h->Observe(0.001);  // warm up shard
  size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) h->Observe(0.001 * i);
  EXPECT_EQ(AllocationCount() - before, 0u);
}

TEST(OverheadTest, EnabledSpansDoNotAllocatePerRecord) {
  // The ring is preallocated by Enable(); recording a span must not
  // allocate either — only export does.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(1 << 12);
  { SOMR_TRACE_SCOPE("overhead/warm"); }
  size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    SOMR_TRACE_SCOPE("overhead/enabled");
  }
  EXPECT_EQ(AllocationCount() - before, 0u);
  recorder.Disable();
  recorder.Clear();
}

}  // namespace
}  // namespace somr::obs
