#include "text/bag_of_words.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(BagOfWordsTest, AddAndCount) {
  BagOfWords bag;
  bag.Add("actor");
  bag.Add("actor");
  bag.Add("best", 2.0);
  EXPECT_EQ(bag.Count("actor"), 2.0);
  EXPECT_EQ(bag.Count("best"), 2.0);
  EXPECT_EQ(bag.Count("missing"), 0.0);
  EXPECT_EQ(bag.TotalCount(), 4.0);
  EXPECT_EQ(bag.DistinctCount(), 2u);
}

TEST(BagOfWordsTest, EmptyBag) {
  BagOfWords bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.TotalCount(), 0.0);
  EXPECT_EQ(bag.SumMin(bag), 0.0);
}

TEST(BagOfWordsTest, ZeroWeightAddIsNoop) {
  BagOfWords bag;
  bag.Add("x", 0.0);
  EXPECT_TRUE(bag.empty());
}

TEST(BagOfWordsTest, AddTokens) {
  BagOfWords bag;
  bag.AddTokens({"a", "b", "a"});
  EXPECT_EQ(bag.Count("a"), 2.0);
  EXPECT_EQ(bag.Count("b"), 1.0);
}

TEST(BagOfWordsTest, Merge) {
  BagOfWords a, b;
  a.AddTokens({"x", "y"});
  b.AddTokens({"y", "z"});
  a.Merge(b);
  EXPECT_EQ(a.Count("x"), 1.0);
  EXPECT_EQ(a.Count("y"), 2.0);
  EXPECT_EQ(a.Count("z"), 1.0);
  EXPECT_EQ(a.TotalCount(), 4.0);
}

TEST(BagOfWordsTest, SumMinSymmetric) {
  BagOfWords a, b;
  a.AddTokens({"a", "a", "b", "c"});
  b.AddTokens({"a", "b", "b", "d"});
  EXPECT_EQ(a.SumMin(b), 2.0);  // min(2,1)=1 for a, min(1,2)=1 for b
  EXPECT_EQ(b.SumMin(a), 2.0);
}

TEST(BagOfWordsTest, SumMinWithSelfIsTotal) {
  BagOfWords a;
  a.AddTokens({"p", "q", "q"});
  EXPECT_EQ(a.SumMin(a), a.TotalCount());
}

TEST(BagOfWordsTest, WeightedSumMin) {
  BagOfWords a, b;
  a.AddTokens({"common", "rare"});
  b.AddTokens({"common", "rare"});
  auto weight = [](const std::string& t) {
    return t == "common" ? 0.5 : 1.0;
  };
  EXPECT_DOUBLE_EQ(a.WeightedSumMin(b, weight), 1.5);
  EXPECT_DOUBLE_EQ(a.WeightedTotal(weight), 1.5);
}

TEST(BagOfWordsTest, SortedEntriesDeterministic) {
  BagOfWords bag;
  bag.AddTokens({"zebra", "apple", "mango"});
  auto entries = bag.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "apple");
  EXPECT_EQ(entries[1].first, "mango");
  EXPECT_EQ(entries[2].first, "zebra");
}

TEST(BagOfWordsTest, EqualityIsMultisetEquality) {
  BagOfWords a, b;
  a.AddTokens({"x", "y"});
  b.AddTokens({"y", "x"});
  EXPECT_TRUE(a == b);
  b.Add("x");
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace somr
