#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace somr {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Best Actor (2019)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "best");
  EXPECT_EQ(tokens[1], "actor");
  EXPECT_EQ(tokens[2], "2019");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,;- ").empty());
}

TEST(TokenizerTest, DigitsKeptInsideWords) {
  auto tokens = Tokenize("MP3 player v2");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "mp3");
  EXPECT_EQ(tokens[2], "v2");
}

TEST(TokenizerTest, Utf8BytesSurvive) {
  auto tokens = Tokenize("M\xC3\xBCnchen rocks");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "m\xC3\xBCnchen");
}

TEST(TokenizerTest, PunctuationSeparates) {
  auto tokens = Tokenize("a-b_c.d");
  ASSERT_EQ(tokens.size(), 4u);
}

TEST(TokenizeTruncatedTest, TruncatesAtLimit) {
  auto tokens =
      TokenizeTruncated("one two three four five six", 3);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2], "three");
}

TEST(TokenizeTruncatedTest, LimitLargerThanTokens) {
  auto tokens = TokenizeTruncated("just two", 10);
  EXPECT_EQ(tokens.size(), 2u);
}

TEST(TokenizeTruncatedTest, ZeroLimit) {
  EXPECT_TRUE(TokenizeTruncated("anything here", 0).empty());
}

TEST(TokenizeTruncatedTest, ElementLimitConstant) {
  // The paper truncates element values after 10 words.
  EXPECT_EQ(kElementTokenLimit, 10u);
  auto tokens = TokenizeTruncated(
      "w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12", kElementTokenLimit);
  EXPECT_EQ(tokens.size(), 10u);
}

}  // namespace
}  // namespace somr
