#include "text/flat_bag.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/bag_of_words.h"
#include "text/token_pool.h"
#include "text/tokenizer.h"

namespace somr {
namespace {

TEST(TokenPoolTest, InternAssignsSequentialIds) {
  TokenPool pool;
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.Intern("alpha"), 0u);
  EXPECT_EQ(pool.Intern("beta"), 1u);
  EXPECT_EQ(pool.Intern("alpha"), 0u);  // hit returns the same id
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Spelling(0), "alpha");
  EXPECT_EQ(pool.Spelling(1), "beta");
}

TEST(TokenPoolTest, FindDoesNotIntern) {
  TokenPool pool;
  EXPECT_EQ(pool.Find("missing"), TokenPool::kInvalidId);
  EXPECT_EQ(pool.size(), 0u);
  pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), 0u);
}

TEST(TokenPoolTest, SpellingsStableAcrossGrowth) {
  TokenPool pool;
  const std::string& first = pool.Spelling(pool.Intern("anchor"));
  const char* address = first.data();
  for (int i = 0; i < 1000; ++i) {
    pool.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(pool.Spelling(0).data(), address);
  EXPECT_EQ(pool.Find("anchor"), 0u);
}

TEST(FlatBagTest, FromBagMatchesCountsAndTotal) {
  BagOfWords bag;
  bag.Add("x");
  bag.Add("y");
  bag.Add("x");
  bag.Add("z");
  TokenPool pool;
  FlatBag flat = FlatBag::FromBag(bag, pool);
  EXPECT_EQ(flat.DistinctCount(), 3u);
  EXPECT_DOUBLE_EQ(flat.TotalCount(), 4.0);
  EXPECT_DOUBLE_EQ(flat.Count(pool.Find("x")), 2.0);
  EXPECT_DOUBLE_EQ(flat.Count(pool.Find("y")), 1.0);
  EXPECT_DOUBLE_EQ(flat.Count(pool.Find("z")), 1.0);
  EXPECT_DOUBLE_EQ(flat.Count(999), 0.0);
  // Entries sorted ascending by id.
  for (size_t i = 1; i < flat.entries().size(); ++i) {
    EXPECT_LT(flat.entries()[i - 1].id, flat.entries()[i].id);
  }
}

TEST(FlatBagTest, FromTokenIdsRunLengthEncodes) {
  FlatBag flat = FlatBag::FromTokenIds({5, 2, 5, 5, 2, 9});
  ASSERT_EQ(flat.DistinctCount(), 3u);
  EXPECT_DOUBLE_EQ(flat.Count(2), 2.0);
  EXPECT_DOUBLE_EQ(flat.Count(5), 3.0);
  EXPECT_DOUBLE_EQ(flat.Count(9), 1.0);
  EXPECT_DOUBLE_EQ(flat.TotalCount(), 6.0);
}

TEST(FlatBagTest, RoundTripThroughBag) {
  BagOfWords bag;
  bag.AddTokens({"a", "b", "b", "c", "c", "c"});
  TokenPool pool;
  FlatBag flat = FlatBag::FromBag(bag, pool);
  BagOfWords back = flat.ToBag(pool);
  EXPECT_EQ(back.counts().size(), bag.counts().size());
  for (const auto& [token, count] : bag.counts()) {
    auto it = back.counts().find(token);
    ASSERT_NE(it, back.counts().end()) << token;
    EXPECT_DOUBLE_EQ(it->second, count);
  }
}

TEST(FlatBagTest, EmptyBag) {
  FlatBag flat;
  EXPECT_TRUE(flat.empty());
  EXPECT_DOUBLE_EQ(flat.TotalCount(), 0.0);
  EXPECT_EQ(FlatBag::FromTokenIds({}), flat);
}

TEST(TokenizerSinkTest, MatchesTokenizeTruncated) {
  const std::string_view samples[] = {
      "Hello, World! 42 foo_bar",
      "  leading and trailing  ",
      "",
      "UPPER lower MiXeD 123abc",
      "one-two;three|four",
  };
  for (std::string_view s : samples) {
    for (size_t limit : {size_t{0}, size_t{1}, size_t{3}, size_t{100}}) {
      std::vector<std::string> expected = TokenizeTruncated(s, limit);
      std::vector<std::string> got;
      TokenizeTruncatedTo(s, limit, [&](std::string_view token) {
        got.emplace_back(token);
      });
      EXPECT_EQ(got, expected) << "input=\"" << s << "\" limit=" << limit;
    }
  }
}

}  // namespace
}  // namespace somr
