#include "sim/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace somr::sim {
namespace {

BagOfWords Bag(std::initializer_list<const char*> tokens) {
  BagOfWords bag;
  for (const char* t : tokens) bag.Add(t);
  return bag;
}

TEST(RuzickaTest, IdenticalBagsAreOne) {
  BagOfWords a = Bag({"x", "y", "y"});
  EXPECT_DOUBLE_EQ(Ruzicka(a, a), 1.0);
}

TEST(RuzickaTest, DisjointBagsAreZero) {
  EXPECT_DOUBLE_EQ(Ruzicka(Bag({"a"}), Bag({"b"})), 0.0);
}

TEST(RuzickaTest, BothEmptyIsOne) {
  BagOfWords empty;
  EXPECT_DOUBLE_EQ(Ruzicka(empty, empty), 1.0);
}

TEST(RuzickaTest, OneEmptyIsZero) {
  BagOfWords empty;
  EXPECT_DOUBLE_EQ(Ruzicka(Bag({"a"}), empty), 0.0);
}

TEST(RuzickaTest, KnownValue) {
  // a={x,x,y}, b={x,y,z}: min sum = 1+1 = 2, max sum = 2+1+1 = 4.
  EXPECT_DOUBLE_EQ(Ruzicka(Bag({"x", "x", "y"}), Bag({"x", "y", "z"})),
                   0.5);
}

TEST(RuzickaTest, Symmetric) {
  BagOfWords a = Bag({"p", "q", "q", "r"});
  BagOfWords b = Bag({"q", "r", "s"});
  EXPECT_DOUBLE_EQ(Ruzicka(a, b), Ruzicka(b, a));
}

TEST(RuzickaTest, PenalizesGrowth) {
  // Containment tolerates a subset relation; Ruzicka does not.
  BagOfWords small = Bag({"a", "b"});
  BagOfWords large = Bag({"a", "b", "c", "d", "e", "f"});
  EXPECT_LT(Ruzicka(small, large), Containment(small, large));
  EXPECT_DOUBLE_EQ(Containment(small, large), 1.0);
  EXPECT_DOUBLE_EQ(Ruzicka(small, large), 2.0 / 6.0);
}

TEST(ContainmentTest, SubsetIsOne) {
  EXPECT_DOUBLE_EQ(Containment(Bag({"a"}), Bag({"a", "b", "c"})), 1.0);
}

TEST(ContainmentTest, Symmetric) {
  BagOfWords a = Bag({"a", "b", "c"});
  BagOfWords b = Bag({"b", "c", "d", "e"});
  EXPECT_DOUBLE_EQ(Containment(a, b), Containment(b, a));
}

TEST(ContainmentTest, AtLeastRuzicka) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    BagOfWords a, b;
    for (int i = 0; i < 20; ++i) {
      a.Add("t" + std::to_string(rng.UniformInt(0, 15)));
      b.Add("t" + std::to_string(rng.UniformInt(0, 15)));
    }
    EXPECT_GE(Containment(a, b), Ruzicka(a, b) - 1e-12);
  }
}

TEST(SimilarityBoundsProperty, AllMeasuresInUnitInterval) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    BagOfWords a, b;
    int na = static_cast<int>(rng.UniformInt(0, 12));
    int nb = static_cast<int>(rng.UniformInt(0, 12));
    for (int i = 0; i < na; ++i) {
      a.Add("t" + std::to_string(rng.UniformInt(0, 8)));
    }
    for (int i = 0; i < nb; ++i) {
      b.Add("t" + std::to_string(rng.UniformInt(0, 8)));
    }
    for (double s : {Ruzicka(a, b), Containment(a, b)}) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(TokenWeightingTest, UniformByDefault) {
  TokenWeighting w;
  EXPECT_TRUE(w.IsUniform());
  EXPECT_DOUBLE_EQ(w.Weight("anything"), 1.0);
}

TEST(TokenWeightingTest, InverseObjectFrequency) {
  BagOfWords a = Bag({"shared", "rare_a"});
  BagOfWords b = Bag({"shared", "rare_b"});
  BagOfWords c = Bag({"shared"});
  BagOfWords n1 = Bag({"shared", "fresh"});
  TokenWeighting w = TokenWeighting::InverseObjectFrequency(
      {&a, &b, &c}, {&n1});
  // "shared" appears in 3 previous objects and 1 new: weight 1/3.
  EXPECT_DOUBLE_EQ(w.Weight("shared"), 1.0 / 3.0);
  // Tokens in at most one object on each side keep full weight.
  EXPECT_DOUBLE_EQ(w.Weight("rare_a"), 1.0);
  EXPECT_DOUBLE_EQ(w.Weight("fresh"), 1.0);
  EXPECT_DOUBLE_EQ(w.Weight("unseen"), 1.0);
}

TEST(TokenWeightingTest, NewSideFrequencyCounts) {
  BagOfWords p = Bag({"tok"});
  BagOfWords n1 = Bag({"tok"});
  BagOfWords n2 = Bag({"tok"});
  BagOfWords n3 = Bag({"tok"});
  TokenWeighting w =
      TokenWeighting::InverseObjectFrequency({&p}, {&n1, &n2, &n3});
  EXPECT_DOUBLE_EQ(w.Weight("tok"), 1.0 / 3.0);
}

TEST(TokenWeightingTest, WeightingLowersNoiseSimilarity) {
  // Two objects that share only boilerplate tokens should look less
  // similar under IDF weighting (Fig. 10's point).
  BagOfWords x = Bag({"won", "year", "alpha"});
  BagOfWords y = Bag({"won", "year", "beta"});
  // Several other objects also contain the boilerplate.
  BagOfWords o1 = Bag({"won", "year"});
  BagOfWords o2 = Bag({"won", "year"});
  TokenWeighting w = TokenWeighting::InverseObjectFrequency(
      {&x, &o1, &o2}, {&y});
  double unweighted = Ruzicka(x, y);
  double weighted = WeightedRuzicka(x, y, w);
  EXPECT_LT(weighted, unweighted);
}

TEST(WeightedSimilarityTest, UniformWeightingMatchesUnweighted) {
  BagOfWords a = Bag({"p", "q", "q"});
  BagOfWords b = Bag({"q", "r"});
  TokenWeighting uniform;
  EXPECT_DOUBLE_EQ(WeightedRuzicka(a, b, uniform), Ruzicka(a, b));
  EXPECT_DOUBLE_EQ(WeightedContainment(a, b, uniform), Containment(a, b));
}

TEST(SimilarityDispatchTest, KindSelectsMeasure) {
  BagOfWords a = Bag({"a", "b"});
  BagOfWords b = Bag({"a", "b", "c", "d"});
  TokenWeighting w;
  EXPECT_DOUBLE_EQ(Similarity(SimilarityKind::kStrict, a, b, w),
                   Ruzicka(a, b));
  EXPECT_DOUBLE_EQ(Similarity(SimilarityKind::kRelaxed, a, b, w),
                   Containment(a, b));
}

TEST(DecayedSimilarityTest, SingleVersionNoDecay) {
  BagOfWords v = Bag({"x", "y"});
  BagOfWords candidate = Bag({"x", "y"});
  TokenWeighting w;
  EXPECT_DOUBLE_EQ(
      DecayedSimilarity(SimilarityKind::kStrict, {&v}, candidate, 5, 0.9, w),
      1.0);
}

TEST(DecayedSimilarityTest, OlderMatchDecays) {
  BagOfWords old_match = Bag({"x", "y"});
  BagOfWords newer = Bag({"z", "w"});
  BagOfWords candidate = Bag({"x", "y"});
  TokenWeighting w;
  // History: old (identical) then newer (disjoint). The identical version
  // is one step back, so its similarity is scaled by phi.
  double s = DecayedSimilarity(SimilarityKind::kStrict,
                               {&old_match, &newer}, candidate, 5, 0.9, w);
  EXPECT_DOUBLE_EQ(s, 0.9);
}

TEST(DecayedSimilarityTest, WindowLimitsLookback) {
  BagOfWords match = Bag({"x"});
  BagOfWords noise1 = Bag({"a"});
  BagOfWords noise2 = Bag({"b"});
  BagOfWords candidate = Bag({"x"});
  TokenWeighting w;
  // The matching version is 2 steps back; with k = 2 only the last two
  // versions are compared, so the match is missed.
  double s = DecayedSimilarity(SimilarityKind::kStrict,
                               {&match, &noise1, &noise2}, candidate, 2,
                               0.9, w);
  EXPECT_DOUBLE_EQ(s, 0.0);
  // With k = 3 the match is found at decay phi^2.
  s = DecayedSimilarity(SimilarityKind::kStrict,
                        {&match, &noise1, &noise2}, candidate, 3, 0.9, w);
  EXPECT_DOUBLE_EQ(s, 0.81);
}

TEST(DecayedSimilarityTest, PrefersRecentHighSimilarity) {
  BagOfWords perfect_old = Bag({"x", "y"});
  BagOfWords partial_new = Bag({"x", "z"});
  BagOfWords candidate = Bag({"x", "y"});
  TokenWeighting w;
  // Newest: Ruzicka(partial, candidate) = 1/3; older: 0.9 * 1.0 = 0.9.
  double s = DecayedSimilarity(SimilarityKind::kStrict,
                               {&perfect_old, &partial_new}, candidate, 5,
                               0.9, w);
  EXPECT_DOUBLE_EQ(s, 0.9);
}

TEST(DecayedSimilarityTest, EmptyHistoryIsZero) {
  BagOfWords candidate = Bag({"x"});
  TokenWeighting w;
  EXPECT_DOUBLE_EQ(DecayedSimilarity(SimilarityKind::kStrict, {},
                                     candidate, 5, 0.9, w),
                   0.0);
}

}  // namespace
}  // namespace somr::sim
