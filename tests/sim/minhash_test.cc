#include "sim/minhash.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace somr::sim {
namespace {

BagOfWords BagOfRange(int lo, int hi) {
  BagOfWords bag;
  for (int i = lo; i < hi; ++i) bag.Add("tok" + std::to_string(i));
  return bag;
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  BagOfWords bag = BagOfRange(0, 50);
  MinHashSignature a = ComputeMinHash(bag, 64);
  MinHashSignature b = ComputeMinHash(bag, 64);
  EXPECT_DOUBLE_EQ(EstimateJaccard(a, b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHashSignature a = ComputeMinHash(BagOfRange(0, 50), 128);
  MinHashSignature b = ComputeMinHash(BagOfRange(100, 150), 128);
  EXPECT_LT(EstimateJaccard(a, b), 0.1);
}

TEST(MinHashTest, EstimatesTrackTrueJaccard) {
  // 50% overlap: tokens [0,100) vs [50,150) -> Jaccard = 50/150 = 1/3.
  MinHashSignature a = ComputeMinHash(BagOfRange(0, 100), 256);
  MinHashSignature b = ComputeMinHash(BagOfRange(50, 150), 256);
  EXPECT_NEAR(EstimateJaccard(a, b), 1.0 / 3.0, 0.12);
}

TEST(MinHashTest, CountsIgnored) {
  BagOfWords once;
  once.Add("x");
  BagOfWords thrice;
  thrice.Add("x", 3.0);
  EXPECT_EQ(ComputeMinHash(once, 32), ComputeMinHash(thrice, 32));
}

TEST(MinHashTest, SeedChangesSignature) {
  BagOfWords bag = BagOfRange(0, 20);
  EXPECT_NE(ComputeMinHash(bag, 32, 1), ComputeMinHash(bag, 32, 2));
}

TEST(MinHashTest, EmptyBag) {
  BagOfWords empty;
  MinHashSignature signature = ComputeMinHash(empty, 16);
  EXPECT_EQ(signature.size(), 16u);
  EXPECT_DOUBLE_EQ(EstimateJaccard(signature, signature), 1.0);
}

TEST(LshIndexTest, SimilarItemsCollide) {
  LshIndex index(/*bands=*/16, /*rows=*/4);
  BagOfWords base = BagOfRange(0, 100);
  index.Add(1, ComputeMinHash(base, 64));
  // 90% similar probe.
  MinHashSignature probe = ComputeMinHash(BagOfRange(5, 105), 64);
  auto candidates = index.Candidates(probe);
  EXPECT_EQ(candidates, (std::vector<int>{1}));
}

TEST(LshIndexTest, DissimilarItemsRarelyCollide) {
  LshIndex index(8, 8);  // high-precision banding
  for (int i = 0; i < 20; ++i) {
    index.Add(i, ComputeMinHash(BagOfRange(i * 200, i * 200 + 50), 64));
  }
  MinHashSignature probe =
      ComputeMinHash(BagOfRange(100000, 100050), 64);
  EXPECT_TRUE(index.Candidates(probe).empty());
}

TEST(LshIndexTest, SelfIsCandidate) {
  LshIndex index(16, 4);
  MinHashSignature signature = ComputeMinHash(BagOfRange(0, 30), 64);
  index.Add(7, signature);
  auto candidates = index.Candidates(signature);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 7);
}

TEST(LshIndexTest, CandidatesDeduplicated) {
  // An identical item collides in every band but is reported once.
  LshIndex index(16, 4);
  MinHashSignature signature = ComputeMinHash(BagOfRange(0, 30), 64);
  index.Add(1, signature);
  index.Add(2, signature);
  auto candidates = index.Candidates(signature);
  EXPECT_EQ(candidates, (std::vector<int>{1, 2}));
}

TEST(LshIndexTest, RecallGrowsWithBands) {
  // More bands (same signature) -> higher collision probability for
  // moderately similar pairs.
  Rng rng(5);
  int hits_few = 0, hits_many = 0;
  for (int trial = 0; trial < 30; ++trial) {
    int offset = static_cast<int>(rng.UniformInt(10, 30));  // ~55-80% sim
    MinHashSignature a =
        ComputeMinHash(BagOfRange(trial * 500, trial * 500 + 100), 64);
    MinHashSignature b = ComputeMinHash(
        BagOfRange(trial * 500 + offset, trial * 500 + 100 + offset), 64);
    LshIndex few(4, 16);
    few.Add(1, a);
    hits_few += few.Candidates(b).empty() ? 0 : 1;
    LshIndex many(32, 2);
    many.Add(1, a);
    hits_many += many.Candidates(b).empty() ? 0 : 1;
  }
  EXPECT_GT(hits_many, hits_few);
}

}  // namespace
}  // namespace somr::sim
