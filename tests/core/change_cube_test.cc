#include "core/change_cube.h"

#include <gtest/gtest.h>

namespace somr::core {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance AwardTable(std::vector<std::vector<std::string>> rows) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = 0;
  obj.schema = {"Year", "Result"};
  obj.rows.push_back(obj.schema);
  for (auto& row : rows) obj.rows.push_back(std::move(row));
  return obj;
}

PageResult MakePage() {
  PageResult page;
  page.title = "Test, page";
  // v0: one row. v1: result updated. v2: row appended. v3: object gone.
  extract::PageObjects r0, r1, r2, r3;
  r0.tables = {AwardTable({{"2001", "Nominated"}})};
  r1.tables = {AwardTable({{"2001", "Won"}})};
  r2.tables = {AwardTable({{"2001", "Won"}, {"2002", "Nominated"}})};
  page.revisions = {r0, r1, r2, r3};
  int64_t id = page.tables.AddObject({0, 0});
  page.tables.AppendVersion(id, {1, 0});
  page.tables.AppendVersion(id, {2, 0});
  return page;
}

TEST(ChangeCubeTest, RecordsFullLifecycle) {
  PageResult page = MakePage();
  auto records = BuildChangeCube(page, ObjectType::kTable);
  // object+ (r0), cell (r1), row+ (r2), object- (r3).
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].change, "object+");
  EXPECT_EQ(records[0].revision, 0);
  EXPECT_EQ(records[1].change, "cell");
  EXPECT_EQ(records[1].property, "Result");
  EXPECT_EQ(records[1].entity, "2001");
  EXPECT_EQ(records[1].old_value, "Nominated");
  EXPECT_EQ(records[1].new_value, "Won");
  EXPECT_EQ(records[2].change, "row+");
  EXPECT_EQ(records[2].entity, "2002");
  EXPECT_EQ(records[3].change, "object-");
  EXPECT_EQ(records[3].revision, 3);
}

TEST(ChangeCubeTest, TimestampsAttached) {
  PageResult page = MakePage();
  std::vector<UnixSeconds> timestamps = {100, 200, 300, 400};
  auto records = BuildChangeCube(page, ObjectType::kTable, timestamps);
  EXPECT_EQ(records[0].timestamp, 100);
  EXPECT_EQ(records[1].timestamp, 200);
  EXPECT_EQ(records[3].timestamp, 400);
}

TEST(ChangeCubeTest, CsvQuotingAndHeader) {
  PageResult page = MakePage();
  auto records = BuildChangeCube(page, ObjectType::kTable);
  std::string csv = ChangeCubeToCsv(records);
  // Header plus one line per record.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  // The comma in the page title must be quoted.
  EXPECT_NE(csv.find("\"Test, page\""), std::string::npos);
  EXPECT_EQ(csv.rfind("page,type,object", 0), 0u);
}

TEST(ChangeCubeTest, CsvEscapesQuotes) {
  PageResult page = MakePage();
  page.title = "He said \"hi\"";
  auto records = BuildChangeCube(page, ObjectType::kTable);
  std::string csv = ChangeCubeToCsv(records);
  EXPECT_NE(csv.find("\"He said \"\"hi\"\"\""), std::string::npos);
}

TEST(ChangeCubeTest, JsonLinesWellFormed) {
  PageResult page = MakePage();
  auto records = BuildChangeCube(page, ObjectType::kTable);
  std::string json = ChangeCubeToJsonLines(records);
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 4);
  EXPECT_NE(json.find("\"change\":\"cell\""), std::string::npos);
  EXPECT_NE(json.find("\"property\":\"Result\""), std::string::npos);
  // Title comma requires no escape in JSON, but quotes do.
  page.title = "quote \" in title";
  records = BuildChangeCube(page, ObjectType::kTable);
  json = ChangeCubeToJsonLines(records);
  EXPECT_NE(json.find("quote \\\" in title"), std::string::npos);
}

TEST(ChangeCubeTest, EmptyPage) {
  PageResult page;
  auto records = BuildChangeCube(page, ObjectType::kTable);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(ChangeCubeToJsonLines(records), "");
}

TEST(ChangeCubeTest, SurvivingObjectHasNoDeleteRecord) {
  PageResult page = MakePage();
  page.revisions.pop_back();  // object alive through the last revision
  auto records = BuildChangeCube(page, ObjectType::kTable);
  for (const auto& record : records) {
    EXPECT_NE(record.change, "object-");
  }
}

}  // namespace
}  // namespace somr::core
