#include "core/history_report.h"

#include <gtest/gtest.h>

#include "extract/html_extractor.h"

namespace somr::core {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

PageResult MakePage() {
  PageResult page;
  page.title = "Report <Test>";
  ObjectInstance v0;
  v0.type = ObjectType::kTable;
  v0.position = 0;
  v0.caption = "Climate";
  v0.rows = {{"Month", "High"}, {"Jan", "5"}};
  ObjectInstance v1 = v0;
  v1.rows[1][1] = "7";  // one volatile cell
  ObjectInstance v2 = v1;
  v2.rows[1][1] = "9";
  extract::PageObjects r0, r1, r2;
  r0.tables = {v0};
  r1.tables = {v1};
  r2.tables = {v2};
  page.revisions = {r0, r1, r2};
  int64_t id = page.tables.AddObject({0, 0});
  page.tables.AppendVersion(id, {1, 0});
  page.tables.AppendVersion(id, {2, 0});
  return page;
}

TEST(HistoryReportTest, ContainsLatestContentAndEscapes) {
  PageResult page = MakePage();
  std::string html = RenderHistoryReport(page, ObjectType::kTable, 0);
  EXPECT_NE(html.find("Report &lt;Test&gt;"), std::string::npos);
  EXPECT_NE(html.find(">9<"), std::string::npos);  // latest value shown
  EXPECT_NE(html.find("Climate"), std::string::npos);
}

TEST(HistoryReportTest, VolatileCellGetsWarmColor) {
  PageResult page = MakePage();
  std::string html = RenderHistoryReport(page, ObjectType::kTable, 0);
  // The stable header cell is white; the churned cell is not.
  EXPECT_NE(html.find("background:#ffffff"), std::string::npos);
  EXPECT_NE(html.find("title=\"2 change(s)\""), std::string::npos);
}

TEST(HistoryReportTest, ChangeLogListed) {
  PageResult page = MakePage();
  std::string html = RenderHistoryReport(page, ObjectType::kTable, 0);
  EXPECT_NE(html.find("r0: create"), std::string::npos);
  EXPECT_NE(html.find("r1: update"), std::string::npos);
}

TEST(HistoryReportTest, UnknownObjectYieldsEmptyBody) {
  PageResult page = MakePage();
  std::string html = RenderHistoryReport(page, ObjectType::kTable, 99);
  EXPECT_EQ(html.find("<h2>"), std::string::npos);
}

TEST(HistoryReportTest, ReportIsParseableHtml) {
  PageResult page = MakePage();
  std::string html = RenderPageReport(page, ObjectType::kTable);
  // Our own HTML extractor can read the report's table back.
  extract::PageObjects objects = extract::ExtractFromHtmlSource(html);
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].rows[1][1], "9");
}

TEST(HistoryReportTest, PageReportCoversAllObjects) {
  PageResult page = MakePage();
  int64_t second = page.tables.AddObject({2, 1});
  (void)second;
  ObjectInstance other;
  other.type = ObjectType::kTable;
  other.position = 1;
  other.rows = {{"solo"}};
  page.revisions[2].tables.push_back(other);
  std::string html = RenderPageReport(page, ObjectType::kTable);
  EXPECT_NE(html.find("table #0"), std::string::npos);
  EXPECT_NE(html.find("table #1"), std::string::npos);
}

}  // namespace
}  // namespace somr::core
