#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "eval/metrics.h"
#include "wikigen/corpus.h"

namespace somr::core {
namespace {

wikigen::GoldCorpus TinyCorpus() {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.strata_caps = {3};
  config.pages_per_stratum = 2;
  config.min_revisions = 15;
  config.max_revisions = 25;
  config.seed = 9;
  return wikigen::GenerateGoldCorpus(config);
}

TEST(PipelineTest, ProcessesDumpXml) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  Pipeline pipeline;
  auto results = pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  for (size_t p = 0; p < results->size(); ++p) {
    const PageResult& result = (*results)[p];
    EXPECT_EQ(result.title, corpus.pages[p].title);
    EXPECT_EQ(result.revisions.size(), corpus.pages[p].revisions.size());
    // Matched graphs cover every extracted instance.
    size_t extracted = 0;
    for (const auto& rev : result.revisions) {
      extracted += rev.tables.size();
    }
    EXPECT_EQ(result.tables.VersionCount(), extracted);
  }
}

TEST(PipelineTest, HighQualityAgainstTruth) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  Pipeline pipeline;
  for (size_t p = 0; p < corpus.pages.size(); ++p) {
    xmldump::Dump dump = wikigen::CorpusToDump(corpus);
    PageResult result = pipeline.ProcessPage(dump.pages[p]);
    eval::EdgeMetrics m =
        eval::CompareEdges(corpus.pages[p].truth_tables, result.tables);
    EXPECT_GT(m.F1(), 0.9) << corpus.pages[p].title;
  }
}

TEST(PipelineTest, BadXmlIsError) {
  Pipeline pipeline;
  auto results = pipeline.ProcessDumpXml("<garbage/>");
  EXPECT_FALSE(results.ok());
}

TEST(PipelineTest, GraphForSelectsType) {
  PageResult result;
  EXPECT_EQ(&result.GraphFor(extract::ObjectType::kTable),
            &result.tables);
  EXPECT_EQ(&result.GraphFor(extract::ObjectType::kInfobox),
            &result.infoboxes);
  EXPECT_EQ(&result.GraphFor(extract::ObjectType::kList), &result.lists);
}

TEST(PipelineTest, StatsRecordedPerStep) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  Pipeline pipeline;
  PageResult result = pipeline.ProcessPage(dump.pages[0]);
  EXPECT_EQ(result.table_stats.step_millis.size(),
            result.revisions.size());
}


TEST(PipelineTest, ParallelMatchesSequential) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  Pipeline pipeline;
  auto sequential = pipeline.ProcessDumpXml(xml);
  auto parallel = pipeline.ProcessDumpXmlParallel(xml, 4);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t p = 0; p < sequential->size(); ++p) {
    EXPECT_EQ((*sequential)[p].title, (*parallel)[p].title);
    EXPECT_EQ((*sequential)[p].tables.EdgeSet(),
              (*parallel)[p].tables.EdgeSet());
    EXPECT_EQ((*sequential)[p].lists.EdgeSet(),
              (*parallel)[p].lists.EdgeSet());
    EXPECT_EQ((*sequential)[p].infoboxes.EdgeSet(),
              (*parallel)[p].infoboxes.EdgeSet());
  }
}

TEST(PipelineTest, ParallelWithOneThreadIsSequential) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  Pipeline pipeline;
  auto result = pipeline.ProcessDumpXmlParallel(xml, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), corpus.pages.size());
}


TEST(PipelineTest, ParallelMoreThreadsThanPages) {
  wikigen::GoldCorpus corpus = TinyCorpus();  // 2 pages
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  Pipeline pipeline;
  auto sequential = pipeline.ProcessDumpXml(xml);
  auto parallel = pipeline.ProcessDumpXmlParallel(xml, 16);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), corpus.pages.size());
  for (size_t p = 0; p < sequential->size(); ++p) {
    EXPECT_EQ((*sequential)[p].title, (*parallel)[p].title);
    EXPECT_EQ((*sequential)[p].tables.EdgeSet(),
              (*parallel)[p].tables.EdgeSet());
  }
}

TEST(PipelineTest, EmptyDumpYieldsNoPages) {
  Pipeline pipeline;
  const std::string xml = "<mediawiki><siteinfo/></mediawiki>";
  auto sequential = pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(sequential.ok());
  EXPECT_TRUE(sequential->empty());
  auto parallel = pipeline.ProcessDumpXmlParallel(xml, 4);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->empty());
}

TEST(PipelineTest, StreamMatchesInMemory) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  std::string xml = xmldump::WriteDump(wikigen::CorpusToDump(corpus));
  Pipeline pipeline;
  auto batch = pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(batch.ok());
  for (unsigned threads : {1u, 3u}) {
    std::istringstream in(xml);
    auto streamed = pipeline.ProcessDumpStream(in, threads);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    ASSERT_EQ(streamed->size(), batch->size());
    for (size_t p = 0; p < batch->size(); ++p) {
      EXPECT_EQ((*streamed)[p].title, (*batch)[p].title);
      EXPECT_EQ((*streamed)[p].tables.EdgeSet(),
                (*batch)[p].tables.EdgeSet());
      EXPECT_EQ((*streamed)[p].infoboxes.EdgeSet(),
                (*batch)[p].infoboxes.EdgeSet());
      EXPECT_EQ((*streamed)[p].lists.EdgeSet(),
                (*batch)[p].lists.EdgeSet());
    }
  }
}

TEST(PipelineTest, StreamEmptyDump) {
  Pipeline pipeline;
  std::istringstream in("<mediawiki><siteinfo/></mediawiki>");
  auto results = pipeline.ProcessDumpStream(in, 4);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_TRUE(results->empty());
}

TEST(PipelineTest, TimestampsCarriedThrough) {
  wikigen::GoldCorpus corpus = TinyCorpus();
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  Pipeline pipeline;
  PageResult result = pipeline.ProcessPage(dump.pages[0]);
  ASSERT_EQ(result.timestamps.size(), result.revisions.size());
  EXPECT_EQ(result.timestamps[0], dump.pages[0].revisions[0].timestamp);
}

}  // namespace
}  // namespace somr::core
