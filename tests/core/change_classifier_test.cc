#include "core/change_classifier.h"

#include <gtest/gtest.h>

namespace somr::core {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance WithRows(std::vector<std::vector<std::string>> rows) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.rows = std::move(rows);
  return obj;
}

TEST(ClassifyChangeTest, ReorderIsPresentation) {
  ObjectInstance before = WithRows({{"alpha", "one"}, {"beta", "two"}});
  ObjectInstance after = WithRows({{"beta", "two"}, {"alpha", "one"}});
  EXPECT_EQ(ClassifyChange(before, after), ChangeClass::kPresentation);
}

TEST(ClassifyChangeTest, CaptionChangeIsPresentation) {
  ObjectInstance before = WithRows({{"alpha", "one"}});
  ObjectInstance after = before;
  after.caption = "A new caption";
  // Caption is excluded from the content bag, so this is presentation.
  EXPECT_EQ(ClassifyChange(before, after), ChangeClass::kPresentation);
}

TEST(ClassifyChangeTest, CellRewriteIsSemantic) {
  ObjectInstance before =
      WithRows({{"year", "result"}, {"2001", "nominated"}});
  ObjectInstance after = WithRows({{"year", "result"}, {"2001", "won"}});
  EXPECT_EQ(ClassifyChange(before, after), ChangeClass::kSemantic);
}

TEST(ClassifyChangeTest, AppendedRowIsStructural) {
  ObjectInstance before = WithRows(
      {{"year", "category"}, {"2001", "gold"}, {"2002", "silver"}});
  ObjectInstance after = before;
  after.rows.push_back({"2003", "bronze"});
  EXPECT_EQ(ClassifyChange(before, after),
            ChangeClass::kStructuralGrowth);
}

TEST(ClassifyChangeTest, RemovedRowIsStructural) {
  ObjectInstance after = WithRows(
      {{"year", "category"}, {"2001", "gold"}, {"2002", "silver"}});
  ObjectInstance before = after;
  before.rows.push_back({"2003", "bronze"});
  EXPECT_EQ(ClassifyChange(before, after),
            ChangeClass::kStructuralGrowth);
}

TEST(ClassifyChangeTest, ContentDestructionIsVandalism) {
  ObjectInstance before = WithRows({{"year", "category", "result"},
                                    {"2001", "best actor", "won"},
                                    {"2002", "best director", "lost"}});
  ObjectInstance after = WithRows({{"zzzzzz", "aslkdjf", "xxxxxxx"}});
  EXPECT_EQ(ClassifyChange(before, after),
            ChangeClass::kSuspectVandalism);
}

TEST(ClassifyChangeTest, JunkInjectionIsVandalism) {
  ObjectInstance before = WithRows({{"year", "category"},
                                    {"2001", "best actor"},
                                    {"2002", "best director"}});
  ObjectInstance after = before;
  after.rows[1] = {"zzzzzzzz", "lolololol"};
  after.rows[2] = {"aaaaaaa", "qqqqqqq"};
  EXPECT_EQ(ClassifyChange(before, after),
            ChangeClass::kSuspectVandalism);
}

TEST(ClassifyChangeTest, RestoreOfOlderVersionIsRevert) {
  ObjectInstance v0 = WithRows({{"original", "content"}});
  ObjectInstance vandalized = WithRows({{"zzzzz", "junk"}});
  ObjectInstance restored = v0;
  std::vector<const extract::ObjectInstance*> history = {&v0};
  EXPECT_EQ(ClassifyChange(vandalized, restored, history),
            ChangeClass::kRevert);
}

TEST(ClassifyChangeTest, NoRevertWithoutDivergence) {
  // after == history version but before also equals it: not a revert.
  ObjectInstance v = WithRows({{"same", "thing"}});
  ObjectInstance after = v;
  after.caption = "cosmetic";
  std::vector<const extract::ObjectInstance*> history = {&v};
  EXPECT_EQ(ClassifyChange(v, after, history),
            ChangeClass::kPresentation);
}

TEST(ClassifyChangeTest, ClassNamesStable) {
  EXPECT_STREQ(ChangeClassName(ChangeClass::kSemantic), "semantic");
  EXPECT_STREQ(ChangeClassName(ChangeClass::kRevert), "revert");
  EXPECT_STREQ(ChangeClassName(ChangeClass::kSuspectVandalism),
               "vandalism?");
}

TEST(ClassifyChangesTest, EndToEndOverGraph) {
  // Object with: create, structural growth, vandalism, revert.
  ObjectInstance v0 = WithRows({{"year", "cat"}, {"2001", "gold"}});
  ObjectInstance v1 = v0;
  v1.rows.push_back({"2002", "silver"});
  ObjectInstance v2 = WithRows({{"zzzzz", "aslkdjf"}});
  ObjectInstance v3 = v1;  // revert

  std::vector<extract::PageObjects> revisions(4);
  revisions[0].tables = {v0};
  revisions[1].tables = {v1};
  revisions[2].tables = {v2};
  revisions[3].tables = {v3};
  for (auto& r : revisions) r.tables[0].position = 0;

  matching::IdentityGraph graph(ObjectType::kTable);
  int64_t id = graph.AddObject({0, 0});
  graph.AppendVersion(id, {1, 0});
  graph.AppendVersion(id, {2, 0});
  graph.AppendVersion(id, {3, 0});

  auto classified =
      ClassifyChanges(graph, revisions, ObjectType::kTable, 4);
  ASSERT_EQ(classified.size(), 4u);
  EXPECT_EQ(classified[0].record.kind, ChangeKind::kCreate);
  EXPECT_EQ(classified[1].change_class, ChangeClass::kStructuralGrowth);
  EXPECT_EQ(classified[2].change_class, ChangeClass::kSuspectVandalism);
  EXPECT_EQ(classified[3].change_class, ChangeClass::kRevert);
}

}  // namespace
}  // namespace somr::core
