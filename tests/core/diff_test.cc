#include "core/diff.h"

#include <gtest/gtest.h>

namespace somr::core {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

ObjectInstance MakeTable(std::vector<std::string> schema,
                         std::vector<std::vector<std::string>> rows) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.schema = std::move(schema);
  if (!obj.schema.empty()) obj.rows.push_back(obj.schema);
  for (auto& row : rows) obj.rows.push_back(std::move(row));
  return obj;
}

TEST(AlignRowsTest, IdenticalTables) {
  ObjectInstance t = MakeTable({"Year", "Result"},
                               {{"2001", "Won"}, {"2002", "Lost"}});
  RowAlignment alignment = AlignRows(t, t);
  ASSERT_EQ(alignment.matched.size(), 2u);
  EXPECT_TRUE(alignment.deleted_rows.empty());
  EXPECT_TRUE(alignment.inserted_rows.empty());
  EXPECT_EQ(alignment.matched[0], (std::pair<size_t, size_t>{1, 1}));
}

TEST(AlignRowsTest, ReorderedRowsStayAligned) {
  ObjectInstance before = MakeTable(
      {"Y", "R"}, {{"2001", "alpha"}, {"2002", "beta"}, {"2003", "gamma"}});
  ObjectInstance after = MakeTable(
      {"Y", "R"}, {{"2003", "gamma"}, {"2001", "alpha"}, {"2002", "beta"}});
  RowAlignment alignment = AlignRows(before, after);
  ASSERT_EQ(alignment.matched.size(), 3u);
  // Row (2001, alpha) at old index 1 maps to new index 2.
  bool found = false;
  for (auto [b, a] : alignment.matched) {
    if (b == 1) {
      EXPECT_EQ(a, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AlignRowsTest, InsertedAndDeletedRows) {
  ObjectInstance before =
      MakeTable({"Y"}, {{"row one alpha"}, {"row two beta"}});
  ObjectInstance after =
      MakeTable({"Y"}, {{"row one alpha"}, {"row three gamma"}});
  RowAlignment alignment = AlignRows(before, after);
  // Sharing only "row" (similarity 0.2 < 0.3) is not enough to match.
  ASSERT_EQ(alignment.matched.size(), 1u);
  before = MakeTable({"Y"}, {{"alpha unique"}, {"beta unique2"}});
  after = MakeTable({"Y"}, {{"alpha unique"}, {"totally different"}});
  alignment = AlignRows(before, after);
  EXPECT_EQ(alignment.matched.size(), 1u);
  ASSERT_EQ(alignment.deleted_rows.size(), 1u);
  ASSERT_EQ(alignment.inserted_rows.size(), 1u);
  EXPECT_EQ(alignment.deleted_rows[0], 2u);
  EXPECT_EQ(alignment.inserted_rows[0], 2u);
}

TEST(AlignRowsTest, DuplicateRowsPreferOriginalOrder) {
  ObjectInstance before =
      MakeTable({"X"}, {{"same content"}, {"same content"}});
  ObjectInstance after =
      MakeTable({"X"}, {{"same content"}, {"same content"}});
  RowAlignment alignment = AlignRows(before, after);
  ASSERT_EQ(alignment.matched.size(), 2u);
  EXPECT_EQ(alignment.matched[0], (std::pair<size_t, size_t>{1, 1}));
  EXPECT_EQ(alignment.matched[1], (std::pair<size_t, size_t>{2, 2}));
}

TEST(AlignRowsTest, EmptyVersions) {
  ObjectInstance empty;
  empty.type = ObjectType::kTable;
  ObjectInstance t = MakeTable({"A"}, {{"x"}});
  RowAlignment alignment = AlignRows(empty, t);
  EXPECT_TRUE(alignment.matched.empty());
  EXPECT_EQ(alignment.inserted_rows.size(), 1u);
  alignment = AlignRows(t, empty);
  EXPECT_EQ(alignment.deleted_rows.size(), 1u);
}

TEST(DiffVersionsTest, SingleCellEdit) {
  ObjectInstance before = MakeTable({"Year", "Result"},
                                    {{"2001", "Nominated"}});
  ObjectInstance after = MakeTable({"Year", "Result"}, {{"2001", "Won"}});
  auto changes = DiffVersions(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, CellChange::Kind::kCellEdited);
  EXPECT_EQ(changes[0].column, 1u);
  EXPECT_EQ(changes[0].before_value, "Nominated");
  EXPECT_EQ(changes[0].after_value, "Won");
}

TEST(DiffVersionsTest, RowAppended) {
  ObjectInstance before = MakeTable({"Y"}, {{"alpha one"}});
  ObjectInstance after = MakeTable({"Y"}, {{"alpha one"}, {"beta two"}});
  auto changes = DiffVersions(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, CellChange::Kind::kRowInserted);
  EXPECT_EQ(changes[0].after_value, "beta two");
}

TEST(DiffVersionsTest, ColumnWidened) {
  ObjectInstance before = MakeTable({"A"}, {{"cell alpha"}});
  ObjectInstance after =
      MakeTable({"A", "B"}, {{"cell alpha", "new value"}});
  auto changes = DiffVersions(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, CellChange::Kind::kCellEdited);
  EXPECT_EQ(changes[0].column, 1u);
  EXPECT_EQ(changes[0].before_value, "");
  EXPECT_EQ(changes[0].after_value, "new value");
}

TEST(DiffVersionsTest, NoChanges) {
  ObjectInstance t = MakeTable({"A"}, {{"same"}});
  EXPECT_TRUE(DiffVersions(t, t).empty());
}

}  // namespace
}  // namespace somr::core
