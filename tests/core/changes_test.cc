#include "core/changes.h"

#include <gtest/gtest.h>

namespace somr::core {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;
using matching::IdentityGraph;

ObjectInstance Obj(int position, std::string content) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = position;
  obj.rows = {{std::move(content)}};
  return obj;
}

/// Scenario: object A lives at revisions 0-2 (edited at 1, moved at 2),
/// object B exists at 0, is deleted, and is restored at revision 2.
struct Scenario {
  std::vector<extract::PageObjects> revisions;
  IdentityGraph graph{ObjectType::kTable};
};

Scenario MakeScenario() {
  Scenario s;
  extract::PageObjects r0;
  r0.tables = {Obj(0, "alpha"), Obj(1, "beta")};
  extract::PageObjects r1;
  r1.tables = {Obj(0, "alpha2")};
  extract::PageObjects r2;
  r2.tables = {Obj(0, "beta"), Obj(1, "alpha2")};
  s.revisions = {r0, r1, r2};

  int64_t a = s.graph.AddObject({0, 0});
  s.graph.AppendVersion(a, {1, 0});
  s.graph.AppendVersion(a, {2, 1});
  int64_t b = s.graph.AddObject({0, 1});
  s.graph.AppendVersion(b, {2, 0});
  return s;
}

TEST(ExtractChangesTest, FullLifecycle) {
  Scenario s = MakeScenario();
  auto changes =
      ExtractChanges(s.graph, s.revisions, ObjectType::kTable, 3);
  // Expected events:
  // rev0: create A, create B
  // rev1: update A (alpha->alpha2), delete B
  // rev2: move A (same content, position 0->1), restore B
  ASSERT_EQ(changes.size(), 6u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kCreate);
  EXPECT_EQ(changes[1].kind, ChangeKind::kCreate);
  EXPECT_EQ(changes[2].kind, ChangeKind::kUpdate);
  EXPECT_EQ(changes[2].object_id, 0);
  EXPECT_EQ(changes[3].kind, ChangeKind::kDelete);
  EXPECT_EQ(changes[3].object_id, 1);
  EXPECT_EQ(changes[4].kind, ChangeKind::kMove);
  EXPECT_EQ(changes[5].kind, ChangeKind::kRestore);
  EXPECT_EQ(changes[5].object_id, 1);
}

TEST(ExtractChangesTest, UnchangedObject) {
  extract::PageObjects r;
  r.tables = {Obj(0, "same")};
  std::vector<extract::PageObjects> revisions = {r, r};
  IdentityGraph graph(ObjectType::kTable);
  int64_t id = graph.AddObject({0, 0});
  graph.AppendVersion(id, {1, 0});
  auto changes = ExtractChanges(graph, revisions, ObjectType::kTable, 2);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1].kind, ChangeKind::kUnchanged);
}

TEST(ExtractChangesTest, DeleteBeforeEndEmitted) {
  extract::PageObjects r0;
  r0.tables = {Obj(0, "x")};
  extract::PageObjects empty;
  std::vector<extract::PageObjects> revisions = {r0, empty, empty};
  IdentityGraph graph(ObjectType::kTable);
  graph.AddObject({0, 0});
  auto changes = ExtractChanges(graph, revisions, ObjectType::kTable, 3);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kCreate);
  EXPECT_EQ(changes[1].kind, ChangeKind::kDelete);
  EXPECT_EQ(changes[1].revision, 1);
  EXPECT_EQ(changes[1].position, -1);
}

TEST(ExtractChangesTest, SurvivorHasNoDelete) {
  extract::PageObjects r;
  r.tables = {Obj(0, "x")};
  std::vector<extract::PageObjects> revisions = {r, r};
  IdentityGraph graph(ObjectType::kTable);
  int64_t id = graph.AddObject({0, 0});
  graph.AppendVersion(id, {1, 0});
  auto changes = ExtractChanges(graph, revisions, ObjectType::kTable, 2);
  for (const ChangeRecord& c : changes) {
    EXPECT_NE(c.kind, ChangeKind::kDelete);
  }
}

TEST(ExtractChangesTest, ChronologicalOrder) {
  Scenario s = MakeScenario();
  auto changes =
      ExtractChanges(s.graph, s.revisions, ObjectType::kTable, 3);
  for (size_t i = 1; i < changes.size(); ++i) {
    EXPECT_LE(changes[i - 1].revision, changes[i].revision);
  }
}

TEST(ChangeKindNameTest, AllNamed) {
  EXPECT_STREQ(ChangeKindName(ChangeKind::kCreate), "create");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kRestore), "restore");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kDelete), "delete");
}

TEST(CellVolatilityTest, CountsChangesPerCell) {
  // Three versions of one table; cell (0,1) changes twice, (0,0) never.
  ObjectInstance v0 = Obj(0, "stable");
  v0.rows = {{"stable", "a"}};
  ObjectInstance v1 = v0;
  v1.rows = {{"stable", "b"}};
  ObjectInstance v2 = v0;
  v2.rows = {{"stable", "c"}};
  extract::PageObjects r0, r1, r2;
  r0.tables = {v0};
  r1.tables = {v1};
  r2.tables = {v2};
  std::vector<extract::PageObjects> revisions = {r0, r1, r2};
  matching::TrackedObjectRecord object;
  object.object_id = 0;
  object.versions = {{0, 0}, {1, 0}, {2, 0}};
  auto volatility = CellVolatility(object, revisions, ObjectType::kTable);
  ASSERT_EQ(volatility.size(), 1u);
  ASSERT_EQ(volatility[0].size(), 2u);
  EXPECT_EQ(volatility[0][0], 0);
  EXPECT_EQ(volatility[0][1], 2);
}

TEST(CellVolatilityTest, EmptyObject) {
  matching::TrackedObjectRecord object;
  EXPECT_TRUE(CellVolatility(object, {}, ObjectType::kTable).empty());
}

}  // namespace
}  // namespace somr::core
