// Thread-count determinism: the parallel entry points and the intra-step
// matcher parallelism must produce byte-identical identity graphs and
// change cubes at any worker count (ISSUE: --threads 1/2/8 equivalence).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/change_cube.h"
#include "core/pipeline.h"
#include "matching/graph_io.h"
#include "parallel/executor.h"
#include "wikigen/corpus.h"

namespace somr::core {
namespace {

constexpr extract::ObjectType kAllTypes[] = {
    extract::ObjectType::kTable, extract::ObjectType::kInfobox,
    extract::ObjectType::kList};

// Same shape as the somr_process demo corpus, slightly smaller.
std::string DemoXml() {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.strata_caps = {3, 8};
  config.pages_per_stratum = 2;
  config.min_revisions = 20;
  config.max_revisions = 40;
  config.seed = 4;
  return xmldump::WriteDump(
      wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config)));
}

// Serializes everything that must be thread-count invariant: graphs,
// change cube, and the deterministic MatchStats counters.
std::string Fingerprint(const std::vector<PageResult>& results) {
  std::ostringstream out;
  for (const PageResult& page : results) {
    out << "## " << page.title << "\n";
    for (extract::ObjectType type : kAllTypes) {
      out << matching::SerializeIdentityGraph(page.GraphFor(type));
      out << ChangeCubeToCsv(
          BuildChangeCube(page, type, page.timestamps));
    }
    for (const matching::MatchStats* stats :
         {&page.table_stats, &page.infobox_stats, &page.list_stats}) {
      out << "stats " << stats->similarities_computed << " "
          << stats->pairs_pruned << " " << stats->pairs_blocked << " "
          << stats->stage1_matches << " " << stats->stage2_matches << " "
          << stats->stage3_matches << " " << stats->new_objects << "\n";
    }
  }
  return out.str();
}

TEST(DeterminismTest, GraphsAndCubesIdenticalAcrossThreadCounts) {
  const std::string xml = DemoXml();
  Pipeline pipeline;
  auto sequential = pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(sequential.ok());
  const std::string expected = Fingerprint(*sequential);

  for (unsigned threads : {2u, 8u}) {
    parallel::Executor pool(threads);
    Pipeline parallel_pipeline;
    parallel_pipeline.set_executor(&pool);

    auto in_memory = parallel_pipeline.ProcessDumpXmlParallel(xml, threads);
    ASSERT_TRUE(in_memory.ok());
    EXPECT_EQ(Fingerprint(*in_memory), expected) << threads << " threads";

    std::istringstream stream(xml);
    auto streamed = parallel_pipeline.ProcessDumpStream(stream, threads);
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(Fingerprint(*streamed), expected) << threads << " threads";
  }
}

// Intra-step parallelism engaged on every stage (cutoff 1) must still be
// byte-identical to the fully sequential matcher — including the
// similarity and prune counters, which the parallel path accumulates in
// per-thread scratch.
TEST(DeterminismTest, IntraStepParallelismMatchesSequential) {
  const std::string xml = DemoXml();
  matching::MatcherConfig config;
  config.parallel_min_pairs = 1;

  Pipeline sequential_pipeline(config);
  auto sequential = sequential_pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(sequential.ok());

  for (unsigned threads : {2u, 8u}) {
    parallel::Executor pool(threads);
    Pipeline parallel_pipeline(config);
    parallel_pipeline.set_executor(&pool);
    auto parallel_results = parallel_pipeline.ProcessDumpXml(xml);
    ASSERT_TRUE(parallel_results.ok());
    EXPECT_EQ(Fingerprint(*parallel_results), Fingerprint(*sequential))
        << threads << " threads";
  }
}

// Per-page and intra-step parallelism nested (pages on the pool, each
// matcher stage fanning out on the same pool) stays deterministic too.
TEST(DeterminismTest, NestedPageAndStageParallelismIsDeterministic) {
  const std::string xml = DemoXml();
  matching::MatcherConfig config;
  config.parallel_min_pairs = 1;

  Pipeline sequential_pipeline(config);
  auto sequential = sequential_pipeline.ProcessDumpXml(xml);
  ASSERT_TRUE(sequential.ok());

  parallel::Executor pool(4);
  Pipeline parallel_pipeline(config);
  parallel_pipeline.set_executor(&pool);
  auto nested = parallel_pipeline.ProcessDumpXmlParallel(xml, 4);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(Fingerprint(*nested), Fingerprint(*sequential));
}

}  // namespace
}  // namespace somr::core
