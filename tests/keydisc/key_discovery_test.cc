#include "keydisc/key_discovery.h"

#include <gtest/gtest.h>

namespace somr::keydisc {
namespace {

using extract::ObjectInstance;

ObjectInstance Snapshot(std::vector<std::vector<std::string>> data) {
  ObjectInstance obj;
  obj.type = extract::ObjectType::kTable;
  obj.schema = {"ID", "Name", "Score"};
  obj.rows.push_back(obj.schema);
  for (auto& row : data) obj.rows.push_back(std::move(row));
  return obj;
}

TEST(ColumnFeaturesTest, StaticUniqueness) {
  ObjectInstance snap = Snapshot(
      {{"1", "Ann", "10"}, {"2", "Bob", "10"}, {"3", "Ann", "30"}});
  ColumnFeatures id = ComputeColumnFeatures({snap}, 0);
  EXPECT_DOUBLE_EQ(id.uniqueness, 1.0);
  ColumnFeatures name = ComputeColumnFeatures({snap}, 1);
  EXPECT_DOUBLE_EQ(name.uniqueness, 2.0 / 3.0);
  ColumnFeatures score = ComputeColumnFeatures({snap}, 2);
  EXPECT_DOUBLE_EQ(score.non_numeric, 0.0);
  EXPECT_GT(name.non_numeric, 0.9);
}

TEST(ColumnFeaturesTest, FillRatioCountsEmptyCells) {
  ObjectInstance snap = Snapshot({{"1", "", "10"}, {"2", "Bob", ""}});
  ColumnFeatures name = ComputeColumnFeatures({snap}, 1);
  EXPECT_DOUBLE_EQ(name.fill_ratio, 0.5);
}

TEST(ColumnFeaturesTest, TemporalMinUniqueness) {
  // Unique now, duplicated before.
  ObjectInstance old_snap =
      Snapshot({{"1", "Ann", "1"}, {"2", "Ann", "2"}});
  ObjectInstance new_snap =
      Snapshot({{"1", "Ann", "1"}, {"2", "Bob", "2"}});
  ColumnFeatures f = ComputeColumnFeatures({old_snap, new_snap}, 1);
  EXPECT_DOUBLE_EQ(f.uniqueness, 1.0);  // current snapshot looks unique
  EXPECT_DOUBLE_EQ(f.min_historical_uniqueness, 0.5);
  EXPECT_DOUBLE_EQ(f.always_unique, 0.5);
}

TEST(ColumnFeaturesTest, ValueStabilityDetectsChurn) {
  ObjectInstance v1 = Snapshot({{"1", "Ann", "10"}, {"2", "Bob", "20"}});
  ObjectInstance v2 = Snapshot({{"1", "Ann", "99"}, {"2", "Bob", "77"}});
  ColumnFeatures id = ComputeColumnFeatures({v1, v2}, 0);
  EXPECT_DOUBLE_EQ(id.value_stability, 1.0);
  ColumnFeatures score = ComputeColumnFeatures({v1, v2}, 2);
  EXPECT_DOUBLE_EQ(score.value_stability, 0.0);
}

TEST(ColumnFeaturesTest, EmptyHistory) {
  ColumnFeatures f = ComputeColumnFeatures({}, 0);
  EXPECT_DOUBLE_EQ(f.uniqueness, 0.0);
}

TEST(KeyScoreTest, TemporalScorePunishesHistoricalDuplicates) {
  ColumnFeatures trap;
  trap.uniqueness = 1.0;
  trap.fill_ratio = 1.0;
  trap.non_numeric = 1.0;
  trap.position = 0.8;
  trap.min_historical_uniqueness = 0.4;
  trap.always_unique = 0.2;
  trap.value_stability = 0.6;

  ColumnFeatures key = trap;
  key.min_historical_uniqueness = 1.0;
  key.always_unique = 1.0;
  key.value_stability = 1.0;

  // Statistically indistinguishable (same static features)...
  EXPECT_DOUBLE_EQ(StaticKeyScore(trap), StaticKeyScore(key));
  // ...but separated by the temporal score.
  EXPECT_LT(TemporalKeyScore(trap), TemporalKeyScore(key));
}

TEST(DiscoverKeysTest, FindsTrueKey) {
  ObjectInstance v1 = Snapshot({{"1", "Ann", "10"}, {"2", "Ann", "20"},
                                {"3", "Cara", "10"}});
  ObjectInstance v2 = Snapshot({{"1", "Ann", "11"}, {"2", "Ann", "21"},
                                {"3", "Cara", "31"}});
  std::vector<bool> keys = DiscoverKeys({v1, v2}, /*use_temporal=*/true);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_TRUE(keys[0]);   // ID
  EXPECT_FALSE(keys[1]);  // duplicated name
  EXPECT_FALSE(keys[2]);  // volatile score
}

TEST(DiscoverKeysTest, EmptyHistoryYieldsNothing) {
  EXPECT_TRUE(DiscoverKeys({}, true).empty());
}

}  // namespace
}  // namespace somr::keydisc
