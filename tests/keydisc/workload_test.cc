#include "keydisc/workload.h"

#include <gtest/gtest.h>

namespace somr::keydisc {
namespace {

KeyWorkloadConfig TinyConfig() {
  KeyWorkloadConfig config;
  config.num_tables = 30;
  config.seed = 12;
  return config;
}

TEST(KeyWorkloadTest, GeneratesRequestedTables) {
  auto data = GenerateKeyWorkload(TinyConfig());
  EXPECT_EQ(data.size(), 30u);
  for (const LabelledHistory& h : data) {
    EXPECT_GE(h.versions.size(), 4u);
    EXPECT_FALSE(h.is_key.empty());
    // Exactly one true key per table.
    int keys = 0;
    for (bool k : h.is_key) keys += k ? 1 : 0;
    EXPECT_EQ(keys, 1);
    EXPECT_TRUE(h.is_key[0]);
  }
}

TEST(KeyWorkloadTest, Deterministic) {
  auto a = GenerateKeyWorkload(TinyConfig());
  auto b = GenerateKeyWorkload(TinyConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].versions.size(), b[i].versions.size());
    EXPECT_EQ(a[i].versions.back().rows, b[i].versions.back().rows);
  }
}

TEST(KeyWorkloadTest, VersionsGrowOrChange) {
  auto data = GenerateKeyWorkload(TinyConfig());
  int changed = 0;
  for (const LabelledHistory& h : data) {
    if (h.versions.front().rows != h.versions.back().rows) ++changed;
  }
  // Nearly every history should actually evolve.
  EXPECT_GT(changed, 25);
}

TEST(KeyMetricsTest, ComputesF1) {
  KeyMetrics m;
  m.tp = 8;
  m.fp = 2;
  m.fn = 2;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.8);
  EXPECT_DOUBLE_EQ(m.F1(), 0.8);
}

TEST(KeyMetricsTest, EmptyIsPerfect) {
  KeyMetrics m;
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
}

TEST(EvaluateKeyDiscoveryTest, TemporalFeaturesImproveF1) {
  // The headline claim of the case study (Sec. V-E): temporal features
  // raise the F-measure by several points.
  KeyWorkloadConfig config;
  config.num_tables = 120;
  config.seed = 99;
  auto data = GenerateKeyWorkload(config);
  KeyMetrics static_only = EvaluateKeyDiscovery(data, false);
  KeyMetrics temporal = EvaluateKeyDiscovery(data, true);
  EXPECT_GT(temporal.F1(), static_only.F1());
  EXPECT_GT(temporal.F1(), 0.9);
}

}  // namespace
}  // namespace somr::keydisc
