#include "extract/features.h"

#include <gtest/gtest.h>

namespace somr::extract {
namespace {

ObjectInstance MakeTable() {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.caption = "Awards Table";
  obj.schema = {"Year", "Result"};
  obj.rows = {{"Year", "Result"}, {"2001", "Won"}, {"2002", "Nominated"}};
  obj.section_path = {"Career", "Awards"};
  return obj;
}

TEST(FeaturesTest, BagContainsCellTokens) {
  BagOfWords bag = BuildBagOfWords(MakeTable());
  EXPECT_EQ(bag.Count("2001"), 1.0);
  EXPECT_EQ(bag.Count("won"), 1.0);
  EXPECT_EQ(bag.Count("nominated"), 1.0);
  EXPECT_EQ(bag.Count("year"), 1.0);  // header cell appears once in rows[0]
}

TEST(FeaturesTest, BagContainsSectionAndCaption) {
  BagOfWords bag = BuildBagOfWords(MakeTable());
  EXPECT_GE(bag.Count("career"), 1.0);
  EXPECT_GE(bag.Count("awards"), 1.0);
  EXPECT_GE(bag.Count("table"), 1.0);
}

TEST(FeaturesTest, SectionHeadersCanBeExcluded) {
  FeatureOptions options;
  options.include_section_headers = false;
  BagOfWords bag = BuildBagOfWords(MakeTable(), options);
  EXPECT_EQ(bag.Count("career"), 0.0);
}

TEST(FeaturesTest, CaptionCanBeExcluded) {
  FeatureOptions options;
  options.include_caption = false;
  options.include_section_headers = false;
  BagOfWords bag = BuildBagOfWords(MakeTable(), options);
  EXPECT_EQ(bag.Count("table"), 0.0);
}

TEST(FeaturesTest, LongCellsTruncated) {
  ObjectInstance obj;
  obj.type = ObjectType::kList;
  std::string long_item;
  for (int i = 0; i < 30; ++i) {
    long_item += "word" + std::to_string(i) + " ";
  }
  obj.rows = {{long_item}};
  BagOfWords bag = BuildBagOfWords(obj);
  EXPECT_EQ(bag.TotalCount(), 10.0);  // paper: 10-token element limit
  EXPECT_EQ(bag.Count("word9"), 1.0);
  EXPECT_EQ(bag.Count("word10"), 0.0);
}

TEST(FeaturesTest, TruncationLimitConfigurable) {
  ObjectInstance obj;
  obj.type = ObjectType::kList;
  obj.rows = {{"a b c d e"}};
  FeatureOptions options;
  options.element_token_limit = 2;
  BagOfWords bag = BuildBagOfWords(obj, options);
  EXPECT_EQ(bag.TotalCount(), 2.0);
}

TEST(FeaturesTest, EmptyObjectYieldsEmptyBag) {
  ObjectInstance obj;
  EXPECT_TRUE(BuildBagOfWords(obj).empty());
}

TEST(FeaturesTest, SchemaBag) {
  BagOfWords schema = BuildSchemaBag(MakeTable());
  EXPECT_EQ(schema.Count("year"), 1.0);
  EXPECT_EQ(schema.Count("result"), 1.0);
  EXPECT_EQ(schema.Count("2001"), 0.0);
  EXPECT_EQ(schema.Count("career"), 0.0);
}

TEST(FeaturesTest, SchemaBagEmptyForLists) {
  ObjectInstance list;
  list.type = ObjectType::kList;
  list.rows = {{"item"}};
  EXPECT_TRUE(BuildSchemaBag(list).empty());
}

}  // namespace
}  // namespace somr::extract
