#include "extract/html_extractor.h"

#include <gtest/gtest.h>

namespace somr::extract {
namespace {

constexpr const char* kPage = R"(<!DOCTYPE html>
<html><body>
<h1>Title</h1>
<p>Intro.</p>
<h2>Career</h2>
<table class="infobox">
<caption>Jane Doe</caption>
<tr><th>name</th><td>Jane Doe</td></tr>
<tr><th>occupation</th><td>actress</td></tr>
</table>
<table>
<caption>Films</caption>
<tr><th>Year</th><th>Title</th></tr>
<tr><td>2001</td><td>A Movie</td></tr>
</table>
<h3>Early work</h3>
<ul><li>First Film</li><li>Second Film</li></ul>
<h2>Awards</h2>
<table><tr><td>Best Actor</td><td>Won</td></tr></table>
</body></html>)";

TEST(HtmlExtractorTest, CountsAndPositions) {
  PageObjects objects = ExtractFromHtmlSource(kPage);
  ASSERT_EQ(objects.tables.size(), 2u);
  ASSERT_EQ(objects.infoboxes.size(), 1u);
  ASSERT_EQ(objects.lists.size(), 1u);
  EXPECT_EQ(objects.tables[0].position, 0);
  EXPECT_EQ(objects.tables[1].position, 1);
}

TEST(HtmlExtractorTest, InfoboxSeparatedFromTables) {
  PageObjects objects = ExtractFromHtmlSource(kPage);
  EXPECT_EQ(objects.infoboxes[0].caption, "Jane Doe");
  ASSERT_EQ(objects.infoboxes[0].rows.size(), 2u);
  EXPECT_EQ(objects.infoboxes[0].rows[1],
            (std::vector<std::string>{"occupation", "actress"}));
}

TEST(HtmlExtractorTest, TableSchemaAndContent) {
  PageObjects objects = ExtractFromHtmlSource(kPage);
  const ObjectInstance& films = objects.tables[0];
  EXPECT_EQ(films.caption, "Films");
  EXPECT_EQ(films.schema, (std::vector<std::string>{"Year", "Title"}));
  ASSERT_EQ(films.rows.size(), 2u);
  EXPECT_EQ(films.rows[1][1], "A Movie");
}

TEST(HtmlExtractorTest, SectionPathsFollowHeadings) {
  PageObjects objects = ExtractFromHtmlSource(kPage);
  EXPECT_EQ(objects.tables[0].section_path,
            (std::vector<std::string>{"Career"}));
  EXPECT_EQ(objects.lists[0].section_path,
            (std::vector<std::string>{"Career", "Early work"}));
  EXPECT_EQ(objects.tables[1].section_path,
            (std::vector<std::string>{"Awards"}));
}

TEST(HtmlExtractorTest, ListItems) {
  PageObjects objects = ExtractFromHtmlSource(kPage);
  ASSERT_EQ(objects.lists[0].rows.size(), 2u);
  EXPECT_EQ(objects.lists[0].rows[0][0], "First Film");
}

TEST(HtmlExtractorTest, NestedListBecomesOneObject) {
  PageObjects objects = ExtractFromHtmlSource(
      "<ul><li>a<ul><li>a1</li><li>a2</li></ul></li><li>b</li></ul>");
  ASSERT_EQ(objects.lists.size(), 1u);
  ASSERT_EQ(objects.lists[0].rows.size(), 4u);
  EXPECT_EQ(objects.lists[0].rows[0][0], "a");
  EXPECT_EQ(objects.lists[0].rows[1][0], "a1");
  EXPECT_EQ(objects.lists[0].rows[3][0], "b");
}

TEST(HtmlExtractorTest, ListInsideTableNotExtractedSeparately) {
  PageObjects objects = ExtractFromHtmlSource(
      "<table><tr><td><ul><li>x</li></ul></td></tr></table>");
  EXPECT_EQ(objects.tables.size(), 1u);
  EXPECT_TRUE(objects.lists.empty());
}

TEST(HtmlExtractorTest, TbodyRowsExtracted) {
  PageObjects objects = ExtractFromHtmlSource(
      "<table><tbody><tr><td>a</td></tr><tr><td>b</td></tr></tbody>"
      "</table>");
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].rows.size(), 2u);
}

TEST(HtmlExtractorTest, MalformedTableStillExtracted) {
  PageObjects objects = ExtractFromHtmlSource(
      "<table><tr><td>a<td>b<tr><td>c<td>d</table>");
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].rows.size(), 2u);
  EXPECT_EQ(objects.tables[0].rows[1][1], "d");
}

TEST(HtmlExtractorTest, EmptyDocument) {
  EXPECT_EQ(ExtractFromHtmlSource("").TotalCount(), 0u);
}


TEST(HtmlExtractorTest, SpansExpandedInTables) {
  PageObjects objects = ExtractFromHtmlSource(
      "<table><tr><td colspan=\"2\">wide</td><td>x</td></tr>"
      "<tr><td rowspan=\"2\">tall</td><td>a</td><td>b</td></tr>"
      "<tr><td>c</td><td>d</td></tr></table>");
  ASSERT_EQ(objects.tables.size(), 1u);
  const ObjectInstance& table = objects.tables[0];
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[0],
            (std::vector<std::string>{"wide", "wide", "x"}));
  EXPECT_EQ(table.rows[2],
            (std::vector<std::string>{"tall", "c", "d"}));
}

TEST(HtmlExtractorTest, DirectlyNestedSublistCollected) {
  PageObjects objects = ExtractFromHtmlSource(
      "<ul><li>a</li><ul><li>a1</li></ul><li>b</li></ul>");
  ASSERT_EQ(objects.lists.size(), 1u);
  ASSERT_EQ(objects.lists[0].rows.size(), 3u);
  EXPECT_EQ(objects.lists[0].rows[1][0], "a1");
}


TEST(HtmlExtractorTest, ChromeSubtreesSkipped) {
  PageObjects objects = ExtractFromHtmlSource(
      "<nav><ul><li>Home</li></ul></nav>"
      "<header><table><tr><td>logo</td></tr></table></header>"
      "<aside><ul><li>related</li></ul></aside>"
      "<ul><li>real item</li></ul>"
      "<footer><ul><li>terms</li></ul></footer>");
  ASSERT_EQ(objects.lists.size(), 1u);
  EXPECT_EQ(objects.lists[0].rows[0][0], "real item");
  EXPECT_TRUE(objects.tables.empty());
}

TEST(HtmlExtractorTest, PresentationTablesSkipped) {
  PageObjects objects = ExtractFromHtmlSource(
      "<table role=\"presentation\"><tr><td>layout</td></tr></table>"
      "<table class=\"navbox\"><tr><td>links</td></tr></table>"
      "<table><tr><td>data</td></tr></table>");
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].rows[0][0], "data");
}

}  // namespace
}  // namespace somr::extract
