#include "extract/wikitext_extractor.h"

#include <gtest/gtest.h>

namespace somr::extract {
namespace {

constexpr const char* kPage = R"(Intro paragraph.

== Career ==
{{Infobox person
| name = Jane Doe
| occupation = actress
}}

{| class="wikitable"
|+ Films
|-
! Year !! Title
|-
| 2001 || [[The Movie|A Movie]]
|-
| 2003 || Другой
|}

=== Early work ===
* [[First Film]] (1999)
* Second Film (2000)

== Awards ==
{|
|-
! Category !! Result
|-
| Best Actor || Won
|}
)";

TEST(WikitextExtractorTest, CountsAndPositions) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  ASSERT_EQ(objects.tables.size(), 2u);
  ASSERT_EQ(objects.infoboxes.size(), 1u);
  ASSERT_EQ(objects.lists.size(), 1u);
  EXPECT_EQ(objects.tables[0].position, 0);
  EXPECT_EQ(objects.tables[1].position, 1);
  EXPECT_EQ(objects.infoboxes[0].position, 0);
  EXPECT_EQ(objects.TotalCount(), 4u);
}

TEST(WikitextExtractorTest, TableContentIsPlainText) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  const ObjectInstance& films = objects.tables[0];
  EXPECT_EQ(films.caption, "Films");
  ASSERT_EQ(films.rows.size(), 3u);
  EXPECT_EQ(films.rows[0][0], "Year");
  EXPECT_EQ(films.rows[1][1], "A Movie");  // link label resolved
  EXPECT_EQ(films.schema, (std::vector<std::string>{"Year", "Title"}));
}

TEST(WikitextExtractorTest, SectionPaths) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  EXPECT_EQ(objects.tables[0].section_path,
            (std::vector<std::string>{"Career"}));
  EXPECT_EQ(objects.lists[0].section_path,
            (std::vector<std::string>{"Career", "Early work"}));
  EXPECT_EQ(objects.tables[1].section_path,
            (std::vector<std::string>{"Awards"}));
}

TEST(WikitextExtractorTest, InfoboxKeyValues) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  const ObjectInstance& infobox = objects.infoboxes[0];
  EXPECT_EQ(infobox.caption, "Infobox person");
  ASSERT_EQ(infobox.rows.size(), 2u);
  EXPECT_EQ(infobox.rows[0], (std::vector<std::string>{"name", "Jane Doe"}));
  EXPECT_EQ(infobox.schema,
            (std::vector<std::string>{"name", "occupation"}));
}

TEST(WikitextExtractorTest, ListItems) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  const ObjectInstance& list = objects.lists[0];
  ASSERT_EQ(list.rows.size(), 2u);
  EXPECT_EQ(list.rows[0][0], "First Film (1999)");
  EXPECT_TRUE(list.schema.empty());  // lists have no schema
}

TEST(WikitextExtractorTest, NonInfoboxTemplatesIgnored) {
  PageObjects objects =
      ExtractFromWikitextSource("{{Citation needed|date=May}}\n");
  EXPECT_EQ(objects.TotalCount(), 0u);
}

TEST(WikitextExtractorTest, HeadingReplacementAtSameLevel) {
  PageObjects objects = ExtractFromWikitextSource(
      "== A ==\n== B ==\n{|\n|-\n| x\n|}\n");
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].section_path,
            (std::vector<std::string>{"B"}));
}

TEST(WikitextExtractorTest, EmptyPage) {
  PageObjects objects = ExtractFromWikitextSource("");
  EXPECT_EQ(objects.TotalCount(), 0u);
}

TEST(WikitextExtractorTest, TableWithoutHeaderHasNoSchema) {
  PageObjects objects =
      ExtractFromWikitextSource("{|\n|-\n| a || b\n|}\n");
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_TRUE(objects.tables[0].schema.empty());
  EXPECT_EQ(objects.tables[0].ColumnCount(), 2u);
}

TEST(ObjectInstanceTest, FlatCells) {
  PageObjects objects = ExtractFromWikitextSource(kPage);
  auto flat = objects.tables[1].FlatCells();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[2], "Best Actor");
}


TEST(WikitextExtractorTest, ColspanExpanded) {
  PageObjects objects = ExtractFromWikitextSource(
      "{|\n|-\n| colspan=2 | wide || x\n|-\n| a || b || c\n|}\n");
  ASSERT_EQ(objects.tables.size(), 1u);
  const ObjectInstance& table = objects.tables[0];
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0],
            (std::vector<std::string>{"wide", "wide", "x"}));
  EXPECT_EQ(table.rows[1].size(), 3u);
}

TEST(WikitextExtractorTest, RowspanExpanded) {
  PageObjects objects = ExtractFromWikitextSource(
      "{|\n|-\n| rowspan=2 | tall || a\n|-\n| b\n|}\n");
  const ObjectInstance& table = objects.tables[0];
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1],
            (std::vector<std::string>{"tall", "b"}));
}

TEST(WikitextExtractorTest, HtmlCommentsStripped) {
  // A commented-out row must not appear; a commented-out table must not
  // be extracted at all.
  PageObjects objects = ExtractFromWikitextSource(
      "{|\n|-\n| keep\n<!--\n|-\n| hidden\n-->\n|}\n"
      "<!--\n{|\n|-\n| gone\n|}\n-->\n");
  ASSERT_EQ(objects.tables.size(), 1u);
  ASSERT_EQ(objects.tables[0].rows.size(), 1u);
  EXPECT_EQ(objects.tables[0].rows[0][0], "keep");
}

}  // namespace
}  // namespace somr::extract
