#include "extract/span_grid.h"

#include <gtest/gtest.h>

namespace somr::extract {
namespace {

SpannedCell Cell(const char* text, int colspan = 1, int rowspan = 1,
                 bool header = false) {
  return {text, header, colspan, rowspan};
}

TEST(ParseSpanValueTest, Basics) {
  EXPECT_EQ(ParseSpanValue("2"), 2);
  EXPECT_EQ(ParseSpanValue("02"), 2);
  EXPECT_EQ(ParseSpanValue(""), 1);
  EXPECT_EQ(ParseSpanValue("garbage"), 1);
  EXPECT_EQ(ParseSpanValue("0"), 1);
  EXPECT_EQ(ParseSpanValue("-3"), 1);
  EXPECT_EQ(ParseSpanValue("99999"), 1000);
}

TEST(ExpandSpansTest, NoSpansPassThrough) {
  ExpandedGrid grid = ExpandSpans({{Cell("a"), Cell("b")}, {Cell("c")}});
  ASSERT_EQ(grid.rows.size(), 2u);
  EXPECT_EQ(grid.rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(grid.rows[1], (std::vector<std::string>{"c"}));
}

TEST(ExpandSpansTest, ColspanDuplicates) {
  ExpandedGrid grid = ExpandSpans({{Cell("wide", 3), Cell("x")}});
  ASSERT_EQ(grid.rows.size(), 1u);
  EXPECT_EQ(grid.rows[0],
            (std::vector<std::string>{"wide", "wide", "wide", "x"}));
}

TEST(ExpandSpansTest, RowspanFillsFollowingRows) {
  ExpandedGrid grid = ExpandSpans({
      {Cell("tall", 1, 2), Cell("a")},
      {Cell("b")},
      {Cell("c"), Cell("d")},
  });
  ASSERT_EQ(grid.rows.size(), 3u);
  EXPECT_EQ(grid.rows[0], (std::vector<std::string>{"tall", "a"}));
  // The rowspan cell occupies column 0 of row 1; "b" shifts to column 1.
  EXPECT_EQ(grid.rows[1], (std::vector<std::string>{"tall", "b"}));
  EXPECT_EQ(grid.rows[2], (std::vector<std::string>{"c", "d"}));
}

TEST(ExpandSpansTest, CombinedColAndRowSpan) {
  ExpandedGrid grid = ExpandSpans({
      {Cell("block", 2, 2), Cell("a")},
      {Cell("b")},
  });
  EXPECT_EQ(grid.rows[0],
            (std::vector<std::string>{"block", "block", "a"}));
  EXPECT_EQ(grid.rows[1],
            (std::vector<std::string>{"block", "block", "b"}));
}

TEST(ExpandSpansTest, HeaderFlagsPerRow) {
  ExpandedGrid grid = ExpandSpans({
      {Cell("h1", 1, 1, true), Cell("h2", 1, 1, true)},
      {Cell("h", 1, 1, true), Cell("d")},
  });
  EXPECT_TRUE(grid.all_header[0]);
  EXPECT_FALSE(grid.all_header[1]);
}

TEST(ExpandSpansTest, EmptyInput) {
  ExpandedGrid grid = ExpandSpans({});
  EXPECT_TRUE(grid.rows.empty());
}

TEST(ExpandSpansTest, RowspanBeyondLastRowIgnored) {
  ExpandedGrid grid = ExpandSpans({{Cell("deep", 1, 99), Cell("a")}});
  ASSERT_EQ(grid.rows.size(), 1u);
  EXPECT_EQ(grid.rows[0], (std::vector<std::string>{"deep", "a"}));
}

}  // namespace
}  // namespace somr::extract
