#include "wikigen/evolver.h"

#include <gtest/gtest.h>

#include <map>

#include "eval/harness.h"
#include "extract/wikitext_extractor.h"

namespace somr::wikigen {
namespace {

EvolverConfig SmallConfig(uint64_t seed) {
  EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 4;
  config.num_revisions = 40;
  config.theme = PageTheme::kAwards;
  config.seed = seed;
  return config;
}

TEST(PageEvolverTest, ProducesRequestedRevisionCount) {
  GeneratedPage page = PageEvolver(SmallConfig(1)).Generate();
  EXPECT_EQ(page.revisions.size(), 40u);
  EXPECT_FALSE(page.title.empty());
}

TEST(PageEvolverTest, DeterministicPerSeed) {
  GeneratedPage a = PageEvolver(SmallConfig(7)).Generate();
  GeneratedPage b = PageEvolver(SmallConfig(7)).Generate();
  ASSERT_EQ(a.revisions.size(), b.revisions.size());
  for (size_t i = 0; i < a.revisions.size(); ++i) {
    EXPECT_EQ(a.revisions[i].wikitext, b.revisions[i].wikitext);
    EXPECT_EQ(a.revisions[i].timestamp, b.revisions[i].timestamp);
  }
  EXPECT_EQ(a.truth_tables.ObjectCount(), b.truth_tables.ObjectCount());
}

TEST(PageEvolverTest, DifferentSeedsDiffer) {
  GeneratedPage a = PageEvolver(SmallConfig(1)).Generate();
  GeneratedPage b = PageEvolver(SmallConfig(2)).Generate();
  EXPECT_NE(a.revisions.back().wikitext, b.revisions.back().wikitext);
}

TEST(PageEvolverTest, TimestampsStrictlyIncrease) {
  GeneratedPage page = PageEvolver(SmallConfig(3)).Generate();
  for (size_t i = 1; i < page.revisions.size(); ++i) {
    EXPECT_GT(page.revisions[i].timestamp,
              page.revisions[i - 1].timestamp);
  }
}

TEST(PageEvolverTest, FocalCapRespected) {
  EvolverConfig config = SmallConfig(11);
  config.max_focal_objects = 3;
  config.num_revisions = 60;
  GeneratedPage page = PageEvolver(config).Generate();
  for (const GeneratedRevision& rev : page.revisions) {
    extract::PageObjects objects =
        extract::ExtractFromWikitextSource(rev.wikitext);
    EXPECT_LE(objects.tables.size(), 3u);
  }
}

// The generator's core contract: the ground-truth instance refs must
// coincide exactly with what the extraction pipeline sees.
class TruthConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TruthConsistency, TruthRefsMatchExtractedInstances) {
  EvolverConfig config = SmallConfig(GetParam());
  config.theme = GetParam() % 3 == 0   ? PageTheme::kAwards
                 : GetParam() % 3 == 1 ? PageTheme::kSettlement
                                       : PageTheme::kGeneric;
  GeneratedPage page = PageEvolver(config).Generate();
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    const matching::IdentityGraph& truth = page.TruthFor(type);
    // Per-revision instance counts from the truth side.
    std::map<int, int> truth_counts;
    for (const auto& obj : truth.objects()) {
      for (const auto& v : obj.versions) {
        truth_counts[v.revision]++;
        // Position must be in range for that revision.
        EXPECT_GE(v.position, 0);
      }
    }
    for (size_t r = 0; r < page.revisions.size(); ++r) {
      extract::PageObjects objects = extract::ExtractFromWikitextSource(
          page.revisions[r].wikitext);
      int expected = truth_counts.count(static_cast<int>(r)) > 0
                         ? truth_counts[static_cast<int>(r)]
                         : 0;
      EXPECT_EQ(static_cast<int>(objects.OfType(type).size()), expected)
          << "revision " << r << " type " << extract::ObjectTypeName(type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruthConsistency,
                         ::testing::Range<uint64_t>(0, 6));

TEST(PageEvolverTest, TruthChainsAreChronological) {
  GeneratedPage page = PageEvolver(SmallConfig(13)).Generate();
  for (const auto& obj : page.truth_tables.objects()) {
    for (size_t i = 1; i < obj.versions.size(); ++i) {
      EXPECT_LT(obj.versions[i - 1].revision, obj.versions[i].revision);
    }
  }
}

TEST(PageEvolverTest, OpCountsAccumulate) {
  EvolverConfig config = SmallConfig(17);
  config.num_revisions = 120;
  GeneratedPage page = PageEvolver(config).Generate();
  EXPECT_GT(page.ops.updates, 0);
  EXPECT_GT(page.ops.inserts, 0);
  // With 120 revisions there is essentially always some churn.
  EXPECT_GT(page.ops.deletes + page.ops.restores + page.ops.vandalisms, 0);
}

TEST(PageEvolverTest, HtmlRenderingsNonEmpty) {
  GeneratedPage page = PageEvolver(SmallConfig(19)).Generate();
  for (const GeneratedRevision& rev : page.revisions) {
    EXPECT_NE(rev.html.find("<body>"), std::string::npos);
  }
}

}  // namespace
}  // namespace somr::wikigen
