#include "wikigen/logical_page.h"

#include <gtest/gtest.h>

namespace somr::wikigen {
namespace {

LogicalContent TableContent() {
  LogicalContent content;
  content.type = extract::ObjectType::kTable;
  content.header = {"A"};
  content.rows = {{"x"}};
  return content;
}

LogicalContent ListContent() {
  LogicalContent content;
  content.type = extract::ObjectType::kList;
  content.rows = {{"item"}};
  return content;
}

TEST(LogicalPageTest, InsertAndFind) {
  LogicalPage page;
  page.items.push_back({LogicalPage::ItemKind::kParagraph, 2, "lead", -1});
  page.InsertObject(5, TableContent(), 1);
  EXPECT_EQ(page.FindObjectItem(5), 1);
  EXPECT_EQ(page.FindObjectItem(6), -1);
  EXPECT_EQ(page.contents.count(5), 1u);
}

TEST(LogicalPageTest, InsertIndexClamped) {
  LogicalPage page;
  page.InsertObject(1, TableContent(), 99);
  EXPECT_EQ(page.FindObjectItem(1), 0);
}

TEST(LogicalPageTest, PresentUidsInPageOrderByType) {
  LogicalPage page;
  page.InsertObject(10, TableContent(), 0);
  page.InsertObject(20, ListContent(), 1);
  page.InsertObject(30, TableContent(), 1);  // before the list now
  auto tables = page.PresentUids(extract::ObjectType::kTable);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], 10);
  EXPECT_EQ(tables[1], 30);
  auto lists = page.PresentUids(extract::ObjectType::kList);
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0], 20);
  EXPECT_EQ(page.AllPresentUids().size(), 3u);
}

TEST(LogicalPageTest, RemoveObjectReturnsContent) {
  LogicalPage page;
  page.InsertObject(7, TableContent(), 0);
  LogicalContent removed = page.RemoveObject(7);
  EXPECT_EQ(removed.header, (std::vector<std::string>{"A"}));
  EXPECT_EQ(page.FindObjectItem(7), -1);
  EXPECT_TRUE(page.contents.empty());
  EXPECT_TRUE(page.items.empty());
}

TEST(LogicalPageTest, RemoveMissingObjectIsEmpty) {
  LogicalPage page;
  LogicalContent removed = page.RemoveObject(99);
  EXPECT_TRUE(removed.Empty());
}

TEST(LogicalPageTest, DanglingObjectItemNotPresent) {
  // An item whose uid has no content entry is skipped by PresentUids.
  LogicalPage page;
  LogicalPage::Item item;
  item.kind = LogicalPage::ItemKind::kObject;
  item.uid = 42;
  page.items.push_back(item);
  EXPECT_TRUE(page.PresentUids(extract::ObjectType::kTable).empty());
  EXPECT_TRUE(page.AllPresentUids().empty());
}

TEST(LogicalContentTest, EmptyMeansNoRows) {
  LogicalContent content = TableContent();
  EXPECT_FALSE(content.Empty());
  content.rows.clear();
  EXPECT_TRUE(content.Empty());
}

}  // namespace
}  // namespace somr::wikigen
