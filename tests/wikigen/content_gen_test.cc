#include "wikigen/content_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace somr::wikigen {
namespace {

TEST(VocabTest, DeterministicPerSeed) {
  Rng a(3), b(3);
  Vocab va(a), vb(b);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(va.PersonName(), vb.PersonName());
    EXPECT_EQ(va.Sentence(), vb.Sentence());
  }
}

TEST(VocabTest, ShapesLookRight) {
  Rng rng(7);
  Vocab vocab(rng);
  EXPECT_NE(vocab.PersonName().find(' '), std::string::npos);
  EXPECT_NE(vocab.AwardName().find("Award"), std::string::npos);
  std::string year = vocab.Year();
  int y = std::stoi(year);
  EXPECT_GE(y, 1960);
  EXPECT_LE(y, 2019);
  std::string link = vocab.WikiLink();
  EXPECT_EQ(link.substr(0, 2), "[[");
  EXPECT_EQ(link.substr(link.size() - 2), "]]");
  EXPECT_EQ(vocab.Sentence().back(), '.');
}

TEST(VocabTest, ValueForMatchesHeaderSemantics) {
  Rng rng(9);
  Vocab vocab(rng);
  for (int i = 0; i < 10; ++i) {
    int year = std::stoi(vocab.ValueFor("Year"));
    EXPECT_GE(year, 1960);
    int rank = std::stoi(vocab.ValueFor("Rank"));
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 200);
    std::string result = vocab.ValueFor("Result");
    EXPECT_TRUE(result == "Won" || result == "Nominated" ||
                result == "Pending");
  }
}

TEST(ContentGeneratorTest, AwardTablesShareSchema) {
  Rng rng(11);
  ContentGenerator gen(rng, PageTheme::kAwards);
  LogicalContent a = gen.NewTable();
  LogicalContent b = gen.NewTable();
  EXPECT_EQ(a.header, b.header);
  EXPECT_EQ(a.header.size(), 4u);
  EXPECT_NE(a.caption, "");
}

TEST(ContentGeneratorTest, SportsTablesHaveUniqueTeams) {
  Rng rng(13);
  ContentGenerator gen(rng, PageTheme::kSports);
  std::set<std::string> teams;
  for (int t = 0; t < 5; ++t) {
    LogicalContent table = gen.NewTable();
    ASSERT_EQ(table.header.size(), 7u);
    EXPECT_EQ(table.key_column, 1);
    for (const auto& row : table.rows) {
      EXPECT_TRUE(teams.insert(row[1]).second)
          << "duplicate team " << row[1];
    }
  }
}

TEST(ContentGeneratorTest, DiscographyTablesHaveYearsAndTitles) {
  Rng rng(17);
  ContentGenerator gen(rng, PageTheme::kDiscography);
  LogicalContent table = gen.NewTable();
  ASSERT_EQ(table.header.size(), 4u);
  EXPECT_EQ(table.header[0], "Year");
  for (const auto& row : table.rows) {
    EXPECT_GE(std::stoi(row[0]), 1975);
  }
}

TEST(ContentGeneratorTest, InfoboxStartsWithName) {
  Rng rng(19);
  ContentGenerator gen(rng, PageTheme::kSettlement);
  LogicalContent infobox = gen.NewInfobox();
  ASSERT_GE(infobox.rows.size(), 4u);
  EXPECT_EQ(infobox.rows[0][0], "name");
  // Keys are distinct.
  std::set<std::string> keys;
  for (const auto& row : infobox.rows) {
    EXPECT_TRUE(keys.insert(row[0]).second);
  }
}

TEST(ContentGeneratorTest, NewInfoboxPropertyAvoidsExistingKeys) {
  Rng rng(23);
  ContentGenerator gen(rng, PageTheme::kGeneric);
  LogicalContent infobox = gen.NewInfobox();
  for (int i = 0; i < 5; ++i) {
    auto property = gen.NewInfoboxProperty(infobox);
    ASSERT_EQ(property.size(), 2u);
    for (const auto& row : infobox.rows) {
      EXPECT_NE(row[0], property[0]);
    }
    infobox.rows.push_back(property);
  }
}

TEST(ContentGeneratorTest, NewTableRowMatchesWidth) {
  Rng rng(29);
  ContentGenerator gen(rng, PageTheme::kGeneric);
  LogicalContent table = gen.NewTable();
  auto row = gen.NewTableRow(table);
  EXPECT_EQ(row.size(), table.header.size());
}

TEST(ContentGeneratorTest, ListsHaveItems) {
  Rng rng(31);
  ContentGenerator gen(rng, PageTheme::kGeneric);
  LogicalContent list = gen.NewList();
  EXPECT_GE(list.rows.size(), 3u);
  for (const auto& row : list.rows) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_FALSE(row[0].empty());
  }
}

TEST(ContentGeneratorTest, DynamicSizeRatesDifferByTheme) {
  // Sports standings are mostly size-static; award tables mostly grow.
  int sports_dynamic = 0, awards_dynamic = 0;
  const int kSamples = 200;
  {
    Rng rng(37);
    ContentGenerator gen(rng, PageTheme::kSports);
    for (int i = 0; i < kSamples; ++i) {
      sports_dynamic += gen.NewTable().dynamic_size ? 1 : 0;
    }
  }
  {
    Rng rng(37);
    ContentGenerator gen(rng, PageTheme::kAwards);
    for (int i = 0; i < kSamples; ++i) {
      awards_dynamic += gen.NewTable().dynamic_size ? 1 : 0;
    }
  }
  EXPECT_LT(sports_dynamic, awards_dynamic);
}

}  // namespace
}  // namespace somr::wikigen
