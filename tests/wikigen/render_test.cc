#include "wikigen/render.h"

#include <gtest/gtest.h>

#include "extract/html_extractor.h"
#include "extract/wikitext_extractor.h"
#include "wikigen/content_gen.h"

namespace somr::wikigen {
namespace {

LogicalPage SamplePage(uint64_t seed) {
  Rng rng(seed);
  ContentGenerator gen(rng, seed % 2 == 0 ? PageTheme::kAwards
                                          : PageTheme::kSettlement);
  LogicalPage page;
  page.title = "Sample";
  page.items.push_back(
      {LogicalPage::ItemKind::kParagraph, 2, "Lead paragraph.", -1});
  page.items.push_back(
      {LogicalPage::ItemKind::kHeading, 2, "First section", -1});
  int64_t uid = 0;
  page.InsertObject(uid++, gen.NewInfobox(), 1);
  page.InsertObject(uid++, gen.NewTable(), page.items.size());
  page.items.push_back(
      {LogicalPage::ItemKind::kHeading, 3, "Subsection", -1});
  page.InsertObject(uid++, gen.NewList(), page.items.size());
  page.InsertObject(uid++, gen.NewTable(), page.items.size());
  return page;
}

// THE central generator invariant: extracting objects from the rendered
// page recovers exactly the logical objects, in page order, for both
// output formats. Ground truth positions depend on this.
class RenderExtractRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenderExtractRoundTrip, WikitextPositionsMatchLogicalOrder) {
  LogicalPage page = SamplePage(GetParam());
  extract::PageObjects objects =
      extract::ExtractFromWikitextSource(RenderWikitext(page));
  EXPECT_EQ(objects.tables.size(),
            page.PresentUids(extract::ObjectType::kTable).size());
  EXPECT_EQ(objects.infoboxes.size(),
            page.PresentUids(extract::ObjectType::kInfobox).size());
  EXPECT_EQ(objects.lists.size(),
            page.PresentUids(extract::ObjectType::kList).size());
  // Content correspondence for tables, in order.
  auto table_uids = page.PresentUids(extract::ObjectType::kTable);
  for (size_t i = 0; i < table_uids.size(); ++i) {
    const LogicalContent& logical = page.contents.at(table_uids[i]);
    const extract::ObjectInstance& extracted = objects.tables[i];
    ASSERT_FALSE(extracted.rows.empty());
    // Row count: header + data rows.
    EXPECT_EQ(extracted.rows.size(), logical.rows.size() + 1);
    EXPECT_EQ(extracted.schema.size(), logical.header.size());
  }
}

TEST_P(RenderExtractRoundTrip, HtmlPositionsMatchLogicalOrder) {
  LogicalPage page = SamplePage(GetParam());
  extract::PageObjects objects =
      extract::ExtractFromHtmlSource(RenderHtml(page));
  EXPECT_EQ(objects.tables.size(),
            page.PresentUids(extract::ObjectType::kTable).size());
  EXPECT_EQ(objects.infoboxes.size(),
            page.PresentUids(extract::ObjectType::kInfobox).size());
  EXPECT_EQ(objects.lists.size(),
            page.PresentUids(extract::ObjectType::kList).size());
}

TEST_P(RenderExtractRoundTrip, WikitextAndHtmlAgreeOnPlainContent) {
  LogicalPage page = SamplePage(GetParam());
  extract::PageObjects wiki =
      extract::ExtractFromWikitextSource(RenderWikitext(page));
  extract::PageObjects html =
      extract::ExtractFromHtmlSource(RenderHtml(page));
  ASSERT_EQ(wiki.tables.size(), html.tables.size());
  for (size_t i = 0; i < wiki.tables.size(); ++i) {
    EXPECT_EQ(wiki.tables[i].rows, html.tables[i].rows);
    EXPECT_EQ(wiki.tables[i].section_path, html.tables[i].section_path);
  }
  ASSERT_EQ(wiki.lists.size(), html.lists.size());
  for (size_t i = 0; i < wiki.lists.size(); ++i) {
    EXPECT_EQ(wiki.lists[i].rows, html.lists[i].rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenderExtractRoundTrip,
                         ::testing::Range<uint64_t>(0, 20));

TEST(RenderTest, EmptyObjectsNotRendered) {
  LogicalPage page;
  page.title = "T";
  LogicalContent empty;
  empty.type = extract::ObjectType::kTable;
  page.InsertObject(1, empty, 0);
  extract::PageObjects objects =
      extract::ExtractFromWikitextSource(RenderWikitext(page));
  EXPECT_EQ(objects.TotalCount(), 0u);
}

TEST(RenderTest, SectionPathsPropagate) {
  Rng rng(3);
  ContentGenerator gen(rng, PageTheme::kGeneric);
  LogicalPage page;
  page.title = "T";
  page.items.push_back(
      {LogicalPage::ItemKind::kHeading, 2, "Awards", -1});
  page.InsertObject(0, gen.NewTable(), 1);
  extract::PageObjects objects =
      extract::ExtractFromWikitextSource(RenderWikitext(page));
  ASSERT_EQ(objects.tables.size(), 1u);
  EXPECT_EQ(objects.tables[0].section_path,
            (std::vector<std::string>{"Awards"}));
}

TEST(RenderTest, HtmlContainsInfoboxClass) {
  Rng rng(4);
  ContentGenerator gen(rng, PageTheme::kSettlement);
  LogicalPage page;
  page.title = "T";
  page.InsertObject(0, gen.NewInfobox(), 0);
  std::string html = RenderHtml(page);
  EXPECT_NE(html.find("class=\"infobox\""), std::string::npos);
}


TEST(RenderTest, WebChromeIsNotExtracted) {
  Rng rng(8);
  ContentGenerator gen(rng, PageTheme::kGeneric);
  LogicalPage page;
  page.title = "T";
  page.InsertObject(0, gen.NewList(), 0);
  page.InsertObject(1, gen.NewTable(), 1);
  std::string plain = RenderHtml(page, /*web_chrome=*/false);
  std::string chromed = RenderHtml(page, /*web_chrome=*/true);
  EXPECT_NE(chromed.find("<nav>"), std::string::npos);
  extract::PageObjects from_plain = extract::ExtractFromHtmlSource(plain);
  extract::PageObjects from_chromed =
      extract::ExtractFromHtmlSource(chromed);
  // Navigation menus, sidebar lists and the footer layout table must not
  // surface as objects: both renderings extract identically.
  EXPECT_EQ(from_plain.lists.size(), from_chromed.lists.size());
  EXPECT_EQ(from_plain.tables.size(), from_chromed.tables.size());
  ASSERT_EQ(from_chromed.lists.size(), 1u);
  EXPECT_EQ(from_plain.lists[0].rows, from_chromed.lists[0].rows);
}

}  // namespace
}  // namespace somr::wikigen
