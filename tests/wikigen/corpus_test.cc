#include "wikigen/corpus.h"

#include <gtest/gtest.h>

#include "extract/wikitext_extractor.h"

namespace somr::wikigen {
namespace {

CorpusConfig TinyConfig() {
  CorpusConfig config;
  config.focal_type = extract::ObjectType::kInfobox;
  config.strata_caps = {1, 3};
  config.pages_per_stratum = 2;
  config.min_revisions = 10;
  config.max_revisions = 20;
  config.seed = 5;
  return config;
}

TEST(CorpusTest, StratifiedPageCount) {
  GoldCorpus corpus = GenerateGoldCorpus(TinyConfig());
  EXPECT_EQ(corpus.pages.size(), 4u);
  ASSERT_EQ(corpus.page_stratum_cap.size(), 4u);
  EXPECT_EQ(corpus.page_stratum_cap[0], 1);
  EXPECT_EQ(corpus.page_stratum_cap[3], 3);
  EXPECT_EQ(corpus.focal_type, extract::ObjectType::kInfobox);
}

TEST(CorpusTest, RevisionCountsWithinBounds) {
  GoldCorpus corpus = GenerateGoldCorpus(TinyConfig());
  for (const GeneratedPage& page : corpus.pages) {
    EXPECT_GE(page.revisions.size(), 10u);
    EXPECT_LE(page.revisions.size(), 20u);
  }
}

TEST(CorpusTest, Deterministic) {
  GoldCorpus a = GenerateGoldCorpus(TinyConfig());
  GoldCorpus b = GenerateGoldCorpus(TinyConfig());
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].title, b.pages[i].title);
    EXPECT_EQ(a.pages[i].revisions.size(), b.pages[i].revisions.size());
  }
}

TEST(CorpusTest, DumpRoundTripPreservesRevisions) {
  GoldCorpus corpus = GenerateGoldCorpus(TinyConfig());
  xmldump::Dump dump = CorpusToDump(corpus);
  ASSERT_EQ(dump.pages.size(), corpus.pages.size());
  std::string xml = xmldump::WriteDump(dump);
  auto parsed = xmldump::ReadDump(xml);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->pages.size(), corpus.pages.size());
  for (size_t p = 0; p < corpus.pages.size(); ++p) {
    ASSERT_EQ(parsed->pages[p].revisions.size(),
              corpus.pages[p].revisions.size());
    for (size_t r = 0; r < corpus.pages[p].revisions.size(); ++r) {
      EXPECT_EQ(parsed->pages[p].revisions[r].text,
                corpus.pages[p].revisions[r].wikitext);
    }
  }
}

TEST(CorpusTest, DumpIdsAreUnique) {
  GoldCorpus corpus = GenerateGoldCorpus(TinyConfig());
  xmldump::Dump dump = CorpusToDump(corpus);
  std::set<int64_t> page_ids, rev_ids;
  for (const auto& page : dump.pages) {
    EXPECT_TRUE(page_ids.insert(page.page_id).second);
    for (const auto& rev : page.revisions) {
      EXPECT_TRUE(rev_ids.insert(rev.id).second);
    }
  }
}

TEST(CorpusTest, FocalStratumCapHolds) {
  GoldCorpus corpus = GenerateGoldCorpus(TinyConfig());
  for (size_t p = 0; p < corpus.pages.size(); ++p) {
    int cap = corpus.page_stratum_cap[p];
    for (const GeneratedRevision& rev : corpus.pages[p].revisions) {
      extract::PageObjects objects =
          extract::ExtractFromWikitextSource(rev.wikitext);
      EXPECT_LE(static_cast<int>(objects.infoboxes.size()), cap);
    }
  }
}

}  // namespace
}  // namespace somr::wikigen
