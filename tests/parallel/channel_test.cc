#include "parallel/mpmc_channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace somr::parallel {
namespace {

TEST(ChannelTest, PopsInPushOrder) {
  Channel<int> channel(4);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_TRUE(channel.Push(2));
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 2);
}

TEST(ChannelTest, CloseDrainsThenStops) {
  Channel<int> channel(4);
  channel.Push(7);
  channel.Close();
  EXPECT_FALSE(channel.Push(8));  // dropped
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));  // queued item still delivered
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(channel.Pop(out));  // closed and empty
}

TEST(ChannelTest, CapacityIsAtLeastOne) {
  Channel<int> channel(0);
  EXPECT_EQ(channel.capacity(), 1u);
}

TEST(ChannelTest, CloseReleasesBlockedConsumer) {
  Channel<int> channel(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(channel.Pop(out));  // blocks until Close
  });
  channel.Close();
  consumer.join();
}

// Several producers and consumers over a tiny buffer: every value must
// arrive exactly once, and the bounded capacity must make the producers
// block rather than lose items.
TEST(ChannelTest, MpmcDeliversEachValueOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  Channel<int> channel(2);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int value = 0;
      while (channel.Pop(value)) {
        seen[value].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  channel.Close();
  for (std::thread& consumer : consumers) consumer.join();

  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

// Close() racing many producers: every Push must either deliver its
// value exactly once (returned true) or report the drop (returned
// false) — never lose a value silently, never deliver one twice.
TEST(ChannelTest, CloseUnderConcurrentProducersLosesNothingSilently) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Channel<int> channel(2);
  std::vector<std::atomic<int>> accepted(kProducers * kPerProducer);
  std::vector<std::atomic<int>> delivered(kProducers * kPerProducer);
  for (auto& a : accepted) a.store(0);
  for (auto& d : delivered) d.store(0);

  std::thread consumer([&] {
    int value = 0;
    while (channel.Pop(value)) {
      delivered[value].fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (channel.Push(value)) {
          accepted[value].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Close mid-stream: some producers are blocked on a full buffer, some
  // mid-Push, some not yet started on their next value.
  channel.Close();
  for (std::thread& producer : producers) producer.join();
  consumer.join();

  for (size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_EQ(delivered[i].load(), accepted[i].load()) << "value " << i;
    EXPECT_LE(delivered[i].load(), 1) << "value " << i;
  }
}

// Producers blocked on a full channel must wake and see the close
// instead of deadlocking; everything queued before the close drains.
TEST(ChannelTest, CloseReleasesBlockedProducersAndDrains) {
  Channel<int> channel(1);
  ASSERT_TRUE(channel.Push(0));  // fill the buffer
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 1; p <= 3; ++p) {
    producers.emplace_back([&, p] {
      if (!channel.Push(p)) rejected.fetch_add(1);
    });
  }
  channel.Close();  // all three blocked producers must return
  for (std::thread& producer : producers) producer.join();

  int drained = 0;
  int value = 0;
  while (channel.Pop(value)) ++drained;
  // The prefilled value always drains; a blocked producer that won the
  // race with Close may have landed one more. The rest were rejected.
  EXPECT_GE(drained, 1);
  EXPECT_EQ(drained + rejected.load(), 4);
}

}  // namespace
}  // namespace somr::parallel
