#include "parallel/mpmc_channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace somr::parallel {
namespace {

TEST(ChannelTest, PopsInPushOrder) {
  Channel<int> channel(4);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_TRUE(channel.Push(2));
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 2);
}

TEST(ChannelTest, CloseDrainsThenStops) {
  Channel<int> channel(4);
  channel.Push(7);
  channel.Close();
  EXPECT_FALSE(channel.Push(8));  // dropped
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));  // queued item still delivered
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(channel.Pop(out));  // closed and empty
}

TEST(ChannelTest, CapacityIsAtLeastOne) {
  Channel<int> channel(0);
  EXPECT_EQ(channel.capacity(), 1u);
}

TEST(ChannelTest, CloseReleasesBlockedConsumer) {
  Channel<int> channel(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(channel.Pop(out));  // blocks until Close
  });
  channel.Close();
  consumer.join();
}

// Several producers and consumers over a tiny buffer: every value must
// arrive exactly once, and the bounded capacity must make the producers
// block rather than lose items.
TEST(ChannelTest, MpmcDeliversEachValueOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  Channel<int> channel(2);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int value = 0;
      while (channel.Pop(value)) {
        seen[value].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  channel.Close();
  for (std::thread& consumer : consumers) consumer.join();

  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

}  // namespace
}  // namespace somr::parallel
