#include "parallel/work_stealing_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace somr::parallel::internal {
namespace {

TEST(WorkStealingDequeTest, OwnerPopIsLifo) {
  WorkStealingDeque<int> deque;
  int items[3] = {1, 2, 3};
  for (int& item : items) deque.Push(&item);
  EXPECT_EQ(deque.Pop(), &items[2]);
  EXPECT_EQ(deque.Pop(), &items[1]);
  EXPECT_EQ(deque.Pop(), &items[0]);
  EXPECT_EQ(deque.Pop(), nullptr);
}

TEST(WorkStealingDequeTest, StealIsFifo) {
  WorkStealingDeque<int> deque;
  int items[3] = {1, 2, 3};
  for (int& item : items) deque.Push(&item);
  EXPECT_EQ(deque.Steal(), &items[0]);
  EXPECT_EQ(deque.Steal(), &items[1]);
  EXPECT_EQ(deque.Steal(), &items[2]);
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque<size_t> deque(/*initial_capacity=*/4);
  std::vector<size_t> items(1000);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i] = i;
    deque.Push(&items[i]);
  }
  EXPECT_EQ(deque.SizeHint(), items.size());
  // Pop returns newest first; every element must come back intact.
  for (size_t i = items.size(); i-- > 0;) {
    EXPECT_EQ(deque.Pop(), &items[i]);
  }
}

// Owner pops while several thieves steal: every item must be claimed by
// exactly one thread, none lost, none duplicated.
TEST(WorkStealingDequeTest, ConcurrentStealsClaimEachItemOnce) {
  constexpr size_t kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<size_t> deque(/*initial_capacity=*/8);
  std::vector<size_t> items(kItems);
  std::vector<std::atomic<int>> claimed(kItems);
  for (auto& c : claimed) c.store(0);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (size_t* item = deque.Steal()) {
          claimed[*item].fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (size_t* item = deque.Steal()) {
        claimed[*item].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The owner interleaves pushes with occasional pops.
  for (size_t i = 0; i < kItems; ++i) {
    items[i] = i;
    deque.Push(&items[i]);
    if (i % 3 == 0) {
      if (size_t* item = deque.Pop()) {
        claimed[*item].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (size_t* item = deque.Pop()) {
    claimed[*item].fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace somr::parallel::internal
