#include "parallel/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace somr::parallel {
namespace {

TEST(ExecutorTest, ResolveThreadsAutoIsAtLeastOne) {
  EXPECT_GE(Executor::ResolveThreads(0), 1u);
  EXPECT_EQ(Executor::ResolveThreads(1), 1u);
  EXPECT_EQ(Executor::ResolveThreads(6), 6u);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexOnce) {
  Executor executor(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  executor.ParallelFor(0, kN, 128, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelForEmptyAndSingleChunk) {
  Executor executor(2);
  int calls = 0;
  executor.ParallelFor(5, 5, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // end - begin <= grain runs inline on the caller as one chunk.
  executor.ParallelFor(0, 10, 16, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecutorTest, NestedParallelForComposes) {
  Executor executor(4);
  constexpr size_t kOuter = 32;
  constexpr size_t kInner = 512;
  std::atomic<size_t> total{0};
  executor.ParallelFor(0, kOuter, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      executor.ParallelFor(0, kInner, 64, [&](size_t b, size_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ExecutorTest, ParallelForPropagatesException) {
  Executor executor(3);
  EXPECT_THROW(
      executor.ParallelFor(0, 1000, 10,
                           [&](size_t begin, size_t) {
                             if (begin >= 500) {
                               throw std::runtime_error("boom");
                             }
                           }),
      std::runtime_error);
  // The pool must stay usable after a failed ParallelFor.
  std::atomic<size_t> count{0};
  executor.ParallelFor(0, 100, 10, [&](size_t begin, size_t end) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ExecutorTest, CurrentSlotStaysInRange) {
  Executor executor(3);
  // External callers map to the extra slot num_workers().
  EXPECT_EQ(executor.CurrentSlot(), executor.num_workers());
  std::vector<std::atomic<int>> slot_hits(executor.num_workers() + 1);
  for (auto& h : slot_hits) h.store(0);
  executor.ParallelFor(0, 10000, 16, [&](size_t, size_t) {
    unsigned slot = executor.CurrentSlot();
    ASSERT_LE(slot, executor.num_workers());
    slot_hits[slot].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& h : slot_hits) total += h.load();
  EXPECT_GT(total, 0);
}

TEST(ExecutorTest, DestructorDrainsQueuedSubmits) {
  std::atomic<int> ran{0};
  {
    Executor executor(2);
    for (int i = 0; i < 200; ++i) {
      executor.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(TaskGroupTest, WaitJoinsAllJobs) {
  Executor executor(4);
  std::atomic<int> ran{0};
  TaskGroup group(executor);
  for (int i = 0; i < 64; ++i) {
    group.Run([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskGroupTest, WaitRethrowsFirstError) {
  Executor executor(2);
  TaskGroup group(executor);
  group.Run([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ExecutorTest, DefaultPoolIsShared) {
  Executor& a = Executor::Default();
  Executor& b = Executor::Default();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
  std::atomic<size_t> count{0};
  a.ParallelFor(0, 1000, 100, [&](size_t begin, size_t end) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

}  // namespace
}  // namespace somr::parallel
