#include "wikitext/inline_markup.h"

#include <gtest/gtest.h>

namespace somr::wikitext {
namespace {

TEST(StripInlineMarkupTest, PlainTextUnchanged) {
  EXPECT_EQ(StripInlineMarkup("hello world"), "hello world");
}

TEST(StripInlineMarkupTest, SimpleLink) {
  EXPECT_EQ(StripInlineMarkup("born in [[Berlin]]"), "born in Berlin");
}

TEST(StripInlineMarkupTest, PipedLink) {
  EXPECT_EQ(StripInlineMarkup("[[Berlin|the capital]] is big"),
            "the capital is big");
}

TEST(StripInlineMarkupTest, ExternalLinkWithLabel) {
  EXPECT_EQ(StripInlineMarkup("see [http://x.org the site]"),
            "see the site");
}

TEST(StripInlineMarkupTest, BareExternalLinkDropped) {
  EXPECT_EQ(StripInlineMarkup("see [http://x.org] now"), "see now");
}

TEST(StripInlineMarkupTest, BoldItalicQuotesStripped) {
  EXPECT_EQ(StripInlineMarkup("'''bold''' and ''italic''"),
            "bold and italic");
  EXPECT_EQ(StripInlineMarkup("'''''both'''''"), "both");
}

TEST(StripInlineMarkupTest, SingleApostropheKept) {
  EXPECT_EQ(StripInlineMarkup("it's fine"), "it's fine");
}

TEST(StripInlineMarkupTest, RefsDropped) {
  EXPECT_EQ(StripInlineMarkup("fact<ref>source</ref> stated"),
            "fact stated");
  EXPECT_EQ(StripInlineMarkup("fact<ref name=\"a\"/> stated"),
            "fact stated");
  EXPECT_EQ(StripInlineMarkup("x<ref name=b>cite</ref>"), "x");
}

TEST(StripInlineMarkupTest, HtmlTagsRemovedTextKept) {
  EXPECT_EQ(StripInlineMarkup("a <small>little</small> note"),
            "a little note");
  EXPECT_EQ(StripInlineMarkup("line<br/>break"), "linebreak");
}

TEST(StripInlineMarkupTest, EntitiesDecoded) {
  EXPECT_EQ(StripInlineMarkup("Tom &amp; Jerry"), "Tom & Jerry");
}

TEST(StripInlineMarkupTest, UnterminatedLinkSurvives) {
  // Malformed markup must not crash or loop.
  std::string out = StripInlineMarkup("[[broken link");
  EXPECT_FALSE(out.empty());
}

TEST(StripInlineMarkupTest, WhitespaceCollapsed) {
  EXPECT_EQ(StripInlineMarkup("a   b\t c"), "a b c");
}


TEST(StripInlineMarkupTest, InlineTemplateParamsRendered) {
  EXPECT_EQ(StripInlineMarkup("born {{start date|2001|2|3}} here"),
            "born 2001 2 3 here");
}

TEST(StripInlineMarkupTest, NamedTemplateParamsKeepValuesOnly) {
  EXPECT_EQ(StripInlineMarkup("{{height|m=1.85}}"), "1.85");
}

TEST(StripInlineMarkupTest, BareTemplateRendersToNothing) {
  EXPECT_EQ(StripInlineMarkup("fact{{citation needed}} here"),
            "fact here");
}

TEST(StripInlineMarkupTest, NestedTemplates) {
  EXPECT_EQ(StripInlineMarkup("{{outer|{{inner|x}}|y}}"), "x y");
}

TEST(StripInlineMarkupTest, UnbalancedTemplateLeftAlone) {
  std::string out = StripInlineMarkup("{{broken|a");
  EXPECT_NE(out.find("broken"), std::string::npos);
}

TEST(ExtractLinkTargetsTest, Basic) {
  auto targets = ExtractLinkTargets("[[A]] text [[B|label]] [[C]]");
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0], "A");
  EXPECT_EQ(targets[1], "B");
  EXPECT_EQ(targets[2], "C");
}

TEST(ExtractLinkTargetsTest, NoLinks) {
  EXPECT_TRUE(ExtractLinkTargets("no links here").empty());
}

}  // namespace
}  // namespace somr::wikitext
