#include "wikitext/to_html.h"

#include <gtest/gtest.h>

#include "extract/html_extractor.h"
#include "extract/wikitext_extractor.h"
#include "wikigen/corpus.h"

namespace somr::wikitext {
namespace {

TEST(ToHtmlTest, TableRendered) {
  std::string html = WikitextToHtml(
      "{|\n|-\n! Year !! Result\n|-\n| 2001 || Won\n|}\n");
  EXPECT_NE(html.find("<table>"), std::string::npos);
  EXPECT_NE(html.find("<th>Year</th>"), std::string::npos);
  EXPECT_NE(html.find("<td>Won</td>"), std::string::npos);
}

TEST(ToHtmlTest, InfoboxGetsClass) {
  std::string html = WikitextToHtml("{{Infobox person|name=Jane}}\n");
  EXPECT_NE(html.find("class=\"infobox\""), std::string::npos);
  EXPECT_NE(html.find("<th>name</th><td>Jane</td>"), std::string::npos);
}

TEST(ToHtmlTest, NonInfoboxTemplateDropped) {
  std::string html = WikitextToHtml("{{Citation needed|date=x}}\n");
  EXPECT_EQ(html.find("<table"), std::string::npos);
}

TEST(ToHtmlTest, NestedListLevels) {
  std::string html = WikitextToHtml("* a\n** a1\n* b\n");
  // Two <ul> opens: outer and nested.
  size_t first = html.find("<ul>");
  size_t second = html.find("<ul>", first + 1);
  EXPECT_NE(second, std::string::npos);
  EXPECT_NE(html.find("<li>a1</li>"), std::string::npos);
}

TEST(ToHtmlTest, InlineMarkupResolved) {
  std::string html =
      WikitextToHtml("plain [[Target|label]] and '''bold'''\n");
  EXPECT_NE(html.find("<p>plain label and bold</p>"), std::string::npos);
}

TEST(ToHtmlTest, SpecialCharactersEscaped) {
  // A bare '<' starts a (dropped) tag in inline markup, so test '&' and
  // quotes, which must be entity-escaped in the output.
  std::string html = WikitextToHtml("Tom & Jerry's \"show\"\n", "T & T");
  EXPECT_NE(html.find("Tom &amp; Jerry&apos;s &quot;show&quot;"),
            std::string::npos);
  EXPECT_NE(html.find("<title>T &amp; T</title>"), std::string::npos);
}

// Cross-module property: objects extracted from the wikitext and from
// its HTML rendering must agree in count, order, and plain content.
class WikiHtmlEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WikiHtmlEquivalence, ExtractionAgrees) {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 5;
  config.num_revisions = 12;
  config.theme = GetParam() % 2 == 0 ? wikigen::PageTheme::kAwards
                                     : wikigen::PageTheme::kSettlement;
  config.seed = GetParam();
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  for (const auto& rev : page.revisions) {
    extract::PageObjects from_wiki =
        extract::ExtractFromWikitextSource(rev.wikitext);
    extract::PageObjects from_html = extract::ExtractFromHtmlSource(
        WikitextToHtml(rev.wikitext, page.title));
    ASSERT_EQ(from_wiki.tables.size(), from_html.tables.size());
    ASSERT_EQ(from_wiki.infoboxes.size(), from_html.infoboxes.size());
    ASSERT_EQ(from_wiki.lists.size(), from_html.lists.size());
    for (size_t i = 0; i < from_wiki.tables.size(); ++i) {
      EXPECT_EQ(from_wiki.tables[i].rows, from_html.tables[i].rows);
      EXPECT_EQ(from_wiki.tables[i].section_path,
                from_html.tables[i].section_path);
    }
    for (size_t i = 0; i < from_wiki.lists.size(); ++i) {
      EXPECT_EQ(from_wiki.lists[i].rows, from_html.lists[i].rows);
    }
    for (size_t i = 0; i < from_wiki.infoboxes.size(); ++i) {
      EXPECT_EQ(from_wiki.infoboxes[i].rows, from_html.infoboxes[i].rows);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WikiHtmlEquivalence,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace somr::wikitext
