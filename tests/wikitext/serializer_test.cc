#include "wikitext/serializer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "wikigen/content_gen.h"
#include "wikigen/logical_page.h"
#include "wikigen/render.h"
#include "wikitext/parser.h"

namespace somr::wikitext {
namespace {

TEST(SerializerTest, Heading) {
  EXPECT_EQ(SerializeHeading({2, "Awards"}), "== Awards ==");
  EXPECT_EQ(SerializeHeading({3, "Sub"}), "=== Sub ===");
}

TEST(SerializerTest, Table) {
  Table table;
  table.attrs = "class=\"wikitable\"";
  table.caption = "Cap";
  TableRow header;
  header.cells.push_back({true, "", "Year"});
  header.cells.push_back({true, "", "Result"});
  table.rows.push_back(header);
  TableRow data;
  data.cells.push_back({false, "", "2001"});
  data.cells.push_back({false, "", "Won"});
  table.rows.push_back(data);

  std::string wiki = SerializeTable(table);
  Document parsed = ParseWikitext(wiki);
  ASSERT_EQ(parsed.elements.size(), 1u);
  EXPECT_EQ(std::get<Table>(parsed.elements[0]), table);
}

TEST(SerializerTest, TableCellWithAttrs) {
  Table table;
  TableRow row;
  row.cells.push_back({false, "colspan=2", "wide"});
  table.rows.push_back(row);
  Document parsed = ParseWikitext(SerializeTable(table));
  EXPECT_EQ(std::get<Table>(parsed.elements[0]), table);
}

TEST(SerializerTest, TemplateRoundTrip) {
  Template tmpl;
  tmpl.name = "Infobox person";
  tmpl.params = {{"name", "Jane"}, {"birth_date", "1970"}};
  Document parsed = ParseWikitext(SerializeTemplate(tmpl));
  ASSERT_EQ(parsed.elements.size(), 1u);
  EXPECT_EQ(std::get<Template>(parsed.elements[0]), tmpl);
}

TEST(SerializerTest, ListRoundTrip) {
  List list;
  list.items = {{"*", "first"}, {"*", "second"}, {"**", "nested"}};
  Document parsed = ParseWikitext(SerializeList(list));
  ASSERT_EQ(parsed.elements.size(), 1u);
  EXPECT_EQ(std::get<List>(parsed.elements[0]), list);
}

TEST(SerializerTest, DocumentRoundTrip) {
  Document doc;
  doc.elements.push_back(Heading{2, "Section"});
  doc.elements.push_back(Paragraph{"Some text here."});
  Table table;
  TableRow row;
  row.cells.push_back({false, "", "cell"});
  table.rows.push_back(row);
  doc.elements.push_back(table);
  List list;
  list.items = {{"*", "x"}};
  doc.elements.push_back(list);

  Document reparsed = ParseWikitext(SerializeDocument(doc));
  EXPECT_EQ(reparsed, doc);
}

// Property-style check: documents rendered from randomly generated
// logical pages must survive a serialize -> parse round trip exactly.
class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripProperty, GeneratedDocumentsRoundTrip) {
  Rng rng(GetParam());
  wikigen::ContentGenerator gen(
      rng, GetParam() % 2 == 0 ? wikigen::PageTheme::kAwards
                               : wikigen::PageTheme::kGeneric);
  wikigen::LogicalPage page;
  page.title = "Test page";
  page.items.push_back(
      {wikigen::LogicalPage::ItemKind::kParagraph, 2, "Lead text.", -1});
  page.items.push_back(
      {wikigen::LogicalPage::ItemKind::kHeading, 2, "Section", -1});
  int64_t uid = 0;
  page.InsertObject(uid++, gen.NewTable(), page.items.size());
  page.InsertObject(uid++, gen.NewInfobox(), page.items.size());
  page.InsertObject(uid++, gen.NewList(), page.items.size());

  Document doc = wikigen::BuildWikitextDocument(page);
  Document reparsed = ParseWikitext(SerializeDocument(doc));
  EXPECT_EQ(reparsed, doc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace somr::wikitext
