#include "wikitext/parser.h"

#include <gtest/gtest.h>

namespace somr::wikitext {
namespace {

TEST(WikitextParserTest, Headings) {
  Document doc = ParseWikitext("== Section ==\n=== Sub ===\n");
  ASSERT_EQ(doc.elements.size(), 2u);
  const auto& h1 = std::get<Heading>(doc.elements[0]);
  EXPECT_EQ(h1.level, 2);
  EXPECT_EQ(h1.title, "Section");
  const auto& h2 = std::get<Heading>(doc.elements[1]);
  EXPECT_EQ(h2.level, 3);
  EXPECT_EQ(h2.title, "Sub");
}

TEST(WikitextParserTest, UnbalancedEqualsIsParagraph) {
  Document doc = ParseWikitext("== Not a heading\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<Paragraph>(doc.elements[0]));
}

TEST(WikitextParserTest, Paragraphs) {
  Document doc = ParseWikitext("line one\nline two\n\nsecond para\n");
  ASSERT_EQ(doc.elements.size(), 2u);
  EXPECT_EQ(std::get<Paragraph>(doc.elements[0]).text,
            "line one\nline two");
  EXPECT_EQ(std::get<Paragraph>(doc.elements[1]).text, "second para");
}

TEST(WikitextParserTest, BasicTable) {
  Document doc = ParseWikitext(
      "{| class=\"wikitable\"\n"
      "|+ My Caption\n"
      "|-\n"
      "! Year !! Result\n"
      "|-\n"
      "| 2001 || Won\n"
      "|-\n"
      "| 2002 || Nominated\n"
      "|}\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  const Table& table = std::get<Table>(doc.elements[0]);
  EXPECT_EQ(table.attrs, "class=\"wikitable\"");
  EXPECT_EQ(table.caption, "My Caption");
  ASSERT_EQ(table.rows.size(), 3u);
  ASSERT_EQ(table.rows[0].cells.size(), 2u);
  EXPECT_TRUE(table.rows[0].cells[0].header);
  EXPECT_EQ(table.rows[0].cells[0].content, "Year");
  EXPECT_FALSE(table.rows[1].cells[0].header);
  EXPECT_EQ(table.rows[2].cells[1].content, "Nominated");
}

TEST(WikitextParserTest, OneCellPerLine) {
  Document doc = ParseWikitext("{|\n|-\n| a\n| b\n|-\n| c\n|}\n");
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].cells.size(), 2u);
  EXPECT_EQ(table.rows[1].cells.size(), 1u);
}

TEST(WikitextParserTest, CellAttributes) {
  Document doc =
      ParseWikitext("{|\n|-\n| colspan=2 | wide cell\n|}\n");
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows.size(), 1u);
  ASSERT_EQ(table.rows[0].cells.size(), 1u);
  EXPECT_EQ(table.rows[0].cells[0].attrs, "colspan=2");
  EXPECT_EQ(table.rows[0].cells[0].content, "wide cell");
}

TEST(WikitextParserTest, PipeInsideLinkDoesNotSplitCell) {
  Document doc =
      ParseWikitext("{|\n|-\n| [[Page|label]] || second\n|}\n");
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows[0].cells.size(), 2u);
  EXPECT_EQ(table.rows[0].cells[0].content, "[[Page|label]]");
}

TEST(WikitextParserTest, CellsBeforeFirstRowMarker) {
  Document doc = ParseWikitext("{|\n! A !! B\n|-\n| 1 || 2\n|}\n");
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_TRUE(table.rows[0].cells[0].header);
}

TEST(WikitextParserTest, UnterminatedTableConsumedToEof) {
  Document doc = ParseWikitext("{|\n|-\n| cell\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].cells[0].content, "cell");
}

TEST(WikitextParserTest, InfoboxTemplate) {
  Document doc = ParseWikitext(
      "{{Infobox person\n"
      "| name = Jane Doe\n"
      "| birth_date = 1970\n"
      "| occupation = [[Actor|actress]]\n"
      "}}\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  const Template& tmpl = std::get<Template>(doc.elements[0]);
  EXPECT_TRUE(tmpl.IsInfobox());
  EXPECT_EQ(tmpl.name, "Infobox person");
  EXPECT_EQ(tmpl.Param("name"), "Jane Doe");
  EXPECT_EQ(tmpl.Param("occupation"), "[[Actor|actress]]");
  EXPECT_EQ(tmpl.Param("missing"), "");
}

TEST(WikitextParserTest, TemplateSingleLine) {
  Document doc = ParseWikitext("{{Infobox city|name=X|population=5}}\n");
  const Template& tmpl = std::get<Template>(doc.elements[0]);
  EXPECT_EQ(tmpl.Param("name"), "X");
  EXPECT_EQ(tmpl.Param("population"), "5");
}

TEST(WikitextParserTest, TemplatePositionalParams) {
  Document doc = ParseWikitext("{{Infobox x|first|second}}\n");
  const Template& tmpl = std::get<Template>(doc.elements[0]);
  EXPECT_EQ(tmpl.Param("1"), "first");
  EXPECT_EQ(tmpl.Param("2"), "second");
}

TEST(WikitextParserTest, NestedTemplateInParamValue) {
  Document doc = ParseWikitext(
      "{{Infobox a\n| date = {{start date|2001|2|3}}\n}}\n");
  const Template& tmpl = std::get<Template>(doc.elements[0]);
  EXPECT_EQ(tmpl.Param("date"), "{{start date|2001|2|3}}");
}

TEST(WikitextParserTest, NonInfoboxTemplateStillParsed) {
  Document doc = ParseWikitext("{{Citation needed|date=May 2020}}\n");
  const Template& tmpl = std::get<Template>(doc.elements[0]);
  EXPECT_FALSE(tmpl.IsInfobox());
}

TEST(WikitextParserTest, UnbalancedTemplateBecomesParagraph) {
  Document doc = ParseWikitext("{{Broken template\nmore text\n");
  ASSERT_FALSE(doc.elements.empty());
  EXPECT_TRUE(std::holds_alternative<Paragraph>(doc.elements[0]));
}

TEST(WikitextParserTest, Lists) {
  Document doc = ParseWikitext("* one\n* two\n** nested\n# numbered\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  const List& list = std::get<List>(doc.elements[0]);
  ASSERT_EQ(list.items.size(), 4u);
  EXPECT_EQ(list.items[0].markers, "*");
  EXPECT_EQ(list.items[0].content, "one");
  EXPECT_EQ(list.items[2].markers, "**");
  EXPECT_EQ(list.items[2].Level(), 2);
  EXPECT_EQ(list.items[3].markers, "#");
}

TEST(WikitextParserTest, BlankLineSplitsLists) {
  Document doc = ParseWikitext("* a\n* b\n\n* c\n");
  ASSERT_EQ(doc.elements.size(), 2u);
  EXPECT_EQ(std::get<List>(doc.elements[0]).items.size(), 2u);
  EXPECT_EQ(std::get<List>(doc.elements[1]).items.size(), 1u);
}

TEST(WikitextParserTest, MixedDocument) {
  Document doc = ParseWikitext(
      "Intro text.\n\n== Awards ==\n{|\n|-\n| x\n|}\n* item\n");
  ASSERT_EQ(doc.elements.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<Paragraph>(doc.elements[0]));
  EXPECT_TRUE(std::holds_alternative<Heading>(doc.elements[1]));
  EXPECT_TRUE(std::holds_alternative<Table>(doc.elements[2]));
  EXPECT_TRUE(std::holds_alternative<List>(doc.elements[3]));
}

TEST(WikitextParserTest, CrLfLineEndings) {
  Document doc = ParseWikitext("== H ==\r\n* a\r\n");
  ASSERT_EQ(doc.elements.size(), 2u);
  EXPECT_EQ(std::get<Heading>(doc.elements[0]).title, "H");
  EXPECT_EQ(std::get<List>(doc.elements[1]).items[0].content, "a");
}

TEST(WikitextParserTest, EmptyInput) {
  EXPECT_TRUE(ParseWikitext("").elements.empty());
  EXPECT_TRUE(ParseWikitext("\n\n\n").elements.empty());
}

TEST(WikitextParserTest, NestedTableKeptInsideCell) {
  Document doc =
      ParseWikitext("{|\n|-\n| outer\n{|\n|-\n| inner\n|}\n|}\n");
  ASSERT_EQ(doc.elements.size(), 1u);
  const Table& table = std::get<Table>(doc.elements[0]);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_NE(table.rows[0].cells[0].content.find("inner"),
            std::string::npos);
}


TEST(WikitextParserTest, CaptionWithAttributes) {
  Document doc = ParseWikitext(
      "{|\n|+ style=\"bold\" | Real Caption\n|-\n| x\n|}\n");
  const Table& table = std::get<Table>(doc.elements[0]);
  EXPECT_EQ(table.caption, "Real Caption");
}

TEST(ParseTemplateSourceTest, Direct) {
  Template tmpl = ParseTemplateSource("{{Infobox t|a=1|b=2}}");
  EXPECT_EQ(tmpl.name, "Infobox t");
  EXPECT_EQ(tmpl.Param("a"), "1");
  EXPECT_EQ(tmpl.Param("b"), "2");
}

}  // namespace
}  // namespace somr::wikitext
