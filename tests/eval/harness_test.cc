#include "eval/harness.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "extract/wikitext_extractor.h"
#include "wikigen/evolver.h"

namespace somr::eval {
namespace {

TEST(HarnessTest, ApproachApplicability) {
  using extract::ObjectType;
  EXPECT_TRUE(ApproachApplies(Approach::kOurs, ObjectType::kList));
  EXPECT_TRUE(ApproachApplies(Approach::kPosition, ObjectType::kList));
  EXPECT_FALSE(ApproachApplies(Approach::kSchema, ObjectType::kList));
  EXPECT_TRUE(ApproachApplies(Approach::kSchema, ObjectType::kInfobox));
  EXPECT_TRUE(ApproachApplies(Approach::kKorn, ObjectType::kTable));
  EXPECT_FALSE(ApproachApplies(Approach::kKorn, ObjectType::kInfobox));
}

TEST(HarnessTest, ApproachNames) {
  EXPECT_STREQ(ApproachName(Approach::kOurs), "Our approach");
  EXPECT_STREQ(ApproachName(Approach::kPosition), "Position");
  EXPECT_STREQ(ApproachName(Approach::kSchema), "Schema");
  EXPECT_STREQ(ApproachName(Approach::kKorn), "Korn et al.");
}

TEST(HarnessTest, MakeMatcherReturnsWorkingMatchers) {
  for (Approach approach : {Approach::kOurs, Approach::kPosition,
                            Approach::kSchema, Approach::kKorn}) {
    auto matcher = MakeMatcher(approach, extract::ObjectType::kTable);
    ASSERT_NE(matcher, nullptr);
    extract::ObjectInstance obj;
    obj.type = extract::ObjectType::kTable;
    obj.position = 0;
    obj.schema = {"A", "B"};
    obj.rows = {{"A", "B"}, {"x", "y"}};
    matcher->ProcessRevision(0, {obj});
    matcher->ProcessRevision(1, {obj});
    EXPECT_EQ(matcher->graph().ObjectCount(), 1u)
        << ApproachName(approach);
  }
}

TEST(HarnessTest, ExtractRevisionObjectsSelectsParserByModel) {
  xmldump::PageHistory page;
  xmldump::Revision wiki;
  wiki.model = "wikitext";
  wiki.text = "{|\n|-\n| cell\n|}\n";
  page.revisions.push_back(wiki);
  xmldump::Revision html;
  html.model = "html";
  html.text = "<table><tr><td>cell</td></tr></table>";
  page.revisions.push_back(html);
  auto revisions = ExtractRevisionObjects(page);
  ASSERT_EQ(revisions.size(), 2u);
  EXPECT_EQ(revisions[0].tables.size(), 1u);
  EXPECT_EQ(revisions[1].tables.size(), 1u);
  EXPECT_EQ(revisions[0].tables[0].rows, revisions[1].tables[0].rows);
}

TEST(HarnessTest, EndToEndOursBeatsPositionOnGeneratedPages) {
  // Pooled over several pages so single-page luck cannot flip the
  // comparison.
  EdgeMetrics ours_m, pos_m;
  for (uint64_t seed : {77u, 78u, 79u, 80u}) {
    wikigen::EvolverConfig config;
    config.focal_type = extract::ObjectType::kTable;
    config.max_focal_objects = 6;
    config.num_revisions = 90;
    config.theme = wikigen::PageTheme::kAwards;
    config.seed = seed;
    wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();

    std::vector<std::vector<extract::ObjectInstance>> per_revision;
    for (const auto& rev : page.revisions) {
      per_revision.push_back(
          extract::ExtractFromWikitextSource(rev.wikitext).tables);
    }
    auto ours = RunApproachOnPage(
        Approach::kOurs, extract::ObjectType::kTable, per_revision);
    auto position = RunApproachOnPage(
        Approach::kPosition, extract::ObjectType::kTable, per_revision);
    ours_m.Add(CompareEdges(page.truth_tables, ours));
    pos_m.Add(CompareEdges(page.truth_tables, position));
  }
  EXPECT_GT(ours_m.F1(), pos_m.F1());
  EXPECT_GT(ours_m.F1(), 0.97);
}

}  // namespace
}  // namespace somr::eval
