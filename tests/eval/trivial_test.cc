#include "eval/trivial.h"

#include <gtest/gtest.h>

namespace somr::eval {
namespace {

using extract::ObjectInstance;
using matching::IdentityGraph;
using matching::VersionRef;

ObjectInstance Obj(int position, std::string content,
                   std::string section = "S") {
  ObjectInstance obj;
  obj.type = extract::ObjectType::kTable;
  obj.position = position;
  obj.rows = {{std::move(content)}};
  obj.section_path = {std::move(section)};
  return obj;
}

TEST(NonTrivialEdgesTest, UnchangedPageIsTrivial) {
  // Two identical consecutive revisions: the edge is trivial.
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a"), Obj(1, "b")}, {Obj(0, "a"), Obj(1, "b")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {1, 0});
  int64_t y = truth.AddObject({0, 1});
  truth.AppendVersion(y, {1, 1});
  EXPECT_TRUE(NonTrivialEdges(revisions, truth).empty());
}

TEST(NonTrivialEdgesTest, ChangedObjectIsNonTrivial) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a"), Obj(1, "b")}, {Obj(0, "a2"), Obj(1, "b")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {1, 0});
  int64_t y = truth.AddObject({0, 1});
  truth.AppendVersion(y, {1, 1});
  auto nontrivial = NonTrivialEdges(revisions, truth);
  // The edited object's edge is non-trivial; the other object unchanged
  // (and only one object changed) stays trivial.
  EXPECT_EQ(nontrivial.size(), 1u);
  EXPECT_TRUE(nontrivial.count({{0, 0}, {1, 0}}) > 0);
}

TEST(NonTrivialEdgesTest, GapEdgesAlwaysNonTrivial) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a")}, {}, {Obj(0, "a")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {2, 0});
  auto nontrivial = NonTrivialEdges(revisions, truth);
  EXPECT_EQ(nontrivial.size(), 1u);
}

TEST(NonTrivialEdgesTest, BigCountChangeIsNonTrivial) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a"), Obj(1, "b"), Obj(2, "c")}, {Obj(0, "a")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {1, 0});
  truth.AddObject({0, 1});
  truth.AddObject({0, 2});
  // Count drops by 2: even the unchanged object's edge is non-trivial.
  auto nontrivial = NonTrivialEdges(revisions, truth);
  EXPECT_EQ(nontrivial.size(), 1u);
}

TEST(NonTrivialEdgesTest, SectionRenameCountsAsChange) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a", "Old")}, {Obj(0, "a", "New")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {1, 0});
  EXPECT_EQ(NonTrivialEdges(revisions, truth).size(), 1u);
}

TEST(NonTrivialEdgesTest, TwoChangedObjectsMakeAllEdgesNonTrivial) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a"), Obj(1, "b"), Obj(2, "c")},
      {Obj(0, "a2"), Obj(1, "b2"), Obj(2, "c")}};
  IdentityGraph truth;
  for (int i = 0; i < 3; ++i) {
    int64_t id = truth.AddObject({0, i});
    truth.AppendVersion(id, {1, i});
  }
  auto nontrivial = NonTrivialEdges(revisions, truth);
  // Condition (ii) fails: more than one object changed, so all three
  // edges are scored — including the unchanged one.
  EXPECT_EQ(nontrivial.size(), 3u);
}

TEST(NonTrivialEdgesTest, SingleInsertKeepsOthersTrivial) {
  std::vector<std::vector<ObjectInstance>> revisions = {
      {Obj(0, "a")}, {Obj(0, "new"), Obj(1, "a")}};
  IdentityGraph truth;
  int64_t x = truth.AddObject({0, 0});
  truth.AppendVersion(x, {1, 1});
  truth.AddObject({1, 0});
  // One object added; the surviving object kept content/context but
  // moved position — position is not part of content/context, so its
  // edge stays trivial.
  auto nontrivial = NonTrivialEdges(revisions, truth);
  EXPECT_TRUE(nontrivial.empty());
}

}  // namespace
}  // namespace somr::eval
