#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace somr::eval {
namespace {

using matching::IdentityGraph;
using matching::VersionRef;

/// Truth: two objects. A: (0,0)->(1,0)->(2,0); B: (0,1)->(2,1) (gap).
IdentityGraph MakeTruth() {
  IdentityGraph truth;
  int64_t a = truth.AddObject({0, 0});
  truth.AppendVersion(a, {1, 0});
  truth.AppendVersion(a, {2, 0});
  int64_t b = truth.AddObject({0, 1});
  truth.AppendVersion(b, {2, 1});
  return truth;
}

TEST(EdgeMetricsTest, PerfectOutput) {
  IdentityGraph truth = MakeTruth();
  EdgeMetrics m = CompareEdges(truth, truth);
  EXPECT_EQ(m.true_positives, 3u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
}

TEST(EdgeMetricsTest, MissingEdgeIsFalseNegative) {
  IdentityGraph truth = MakeTruth();
  IdentityGraph output;
  int64_t a = output.AddObject({0, 0});
  output.AppendVersion(a, {1, 0});
  output.AppendVersion(a, {2, 0});
  output.AddObject({0, 1});
  output.AddObject({2, 1});  // B's restore not linked
  EdgeMetrics m = CompareEdges(truth, output);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_LT(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
}

TEST(EdgeMetricsTest, WrongEdgeIsFalsePositive) {
  IdentityGraph truth = MakeTruth();
  IdentityGraph output;
  int64_t a = output.AddObject({0, 0});
  output.AppendVersion(a, {1, 0});
  output.AppendVersion(a, {2, 1});  // crosses over to B's instance
  int64_t b = output.AddObject({0, 1});
  output.AppendVersion(b, {2, 0});  // and vice versa
  EdgeMetrics m = CompareEdges(truth, output);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 2u);
  EXPECT_EQ(m.false_negatives, 2u);
}

TEST(EdgeMetricsTest, EmptyGraphs) {
  IdentityGraph empty;
  EdgeMetrics m = CompareEdges(empty, empty);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
}

TEST(EdgeMetricsTest, FilterScoresOnlySelectedEdges) {
  IdentityGraph truth = MakeTruth();
  // Filter to the gap edge only.
  std::set<matching::IdentityEdge> filter = {
      {VersionRef{0, 1}, VersionRef{2, 1}}};
  // Output misses the gap edge but has the others.
  IdentityGraph output;
  int64_t a = output.AddObject({0, 0});
  output.AppendVersion(a, {1, 0});
  output.AppendVersion(a, {2, 0});
  output.AddObject({0, 1});
  output.AddObject({2, 1});
  EdgeMetrics m = CompareEdges(truth, output, &filter);
  EXPECT_EQ(m.true_positives, 0u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.false_positives, 0u);  // correct trivial edges not penalized
}

TEST(EdgeMetricsTest, FilterStillCountsWrongOutputEdges) {
  IdentityGraph truth = MakeTruth();
  std::set<matching::IdentityEdge> filter;  // nothing scored on truth side
  IdentityGraph output;
  int64_t x = output.AddObject({0, 0});
  output.AppendVersion(x, {2, 1});  // bogus edge
  EdgeMetrics m = CompareEdges(truth, output, &filter);
  EXPECT_EQ(m.false_positives, 1u);
}

TEST(ObjectAccuracyTest, ExactChainsRequired) {
  IdentityGraph truth = MakeTruth();
  EXPECT_DOUBLE_EQ(ObjectAccuracy(truth, truth), 1.0);

  IdentityGraph output;
  int64_t a = output.AddObject({0, 0});
  output.AppendVersion(a, {1, 0});
  output.AppendVersion(a, {2, 0});
  output.AddObject({0, 1});
  output.AddObject({2, 1});  // B split into two objects
  EXPECT_DOUBLE_EQ(ObjectAccuracy(truth, output), 0.5);
}

TEST(ObjectAccuracyTest, MergedObjectsWrong) {
  IdentityGraph truth = MakeTruth();
  IdentityGraph output;
  int64_t merged = output.AddObject({0, 0});
  output.AppendVersion(merged, {0, 1});  // impossible merge
  output.AppendVersion(merged, {1, 0});
  output.AppendVersion(merged, {2, 0});
  output.AppendVersion(merged, {2, 1});
  EXPECT_DOUBLE_EQ(ObjectAccuracy(truth, output), 0.0);
}

TEST(ObjectAccuracyTest, EmptyTruthIsPerfect) {
  IdentityGraph truth, output;
  output.AddObject({0, 0});
  EXPECT_DOUBLE_EQ(ObjectAccuracy(truth, output), 1.0);
}

TEST(CountByVersionsTest, BucketsByChainLength) {
  IdentityGraph truth = MakeTruth();
  auto buckets = CountCorrectObjectsByVersions(truth, truth);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[3].total, 1u);
  EXPECT_EQ(buckets[3].correct, 1u);
  EXPECT_EQ(buckets[2].total, 1u);
}

TEST(ErrorBreakdownTest, ClassifiesAllFourOutcomes) {
  IdentityGraph truth = MakeTruth();
  IdentityGraph output;
  // (1,0): predecessor correct. (2,0): wrong predecessor (cross).
  // (2,1): missing predecessor (FN). Plus a spurious pred for (0,1)?
  // (0,1) has no truth predecessor; give it one in output -> FP.
  int64_t a = output.AddObject({0, 0});
  output.AppendVersion(a, {1, 0});
  output.AppendVersion(a, {2, 1});   // truth pred of (2,1) is (0,1): wrong
  int64_t b = output.AddObject({0, 1});
  (void)b;
  int64_t c = output.AddObject({2, 0});
  (void)c;
  ErrorBreakdown e = ClassifyErrors(truth, output);
  // Instances: (0,0) correct (no pred), (1,0) correct, (2,0) FN,
  // (0,1) correct (no pred both sides), (2,1) wrong match.
  EXPECT_EQ(e.correct, 3u);
  EXPECT_EQ(e.false_negative, 1u);
  EXPECT_EQ(e.wrong_match, 1u);
  EXPECT_EQ(e.false_positive, 0u);
}

TEST(ErrorBreakdownTest, PerfectOutputAllCorrect) {
  IdentityGraph truth = MakeTruth();
  ErrorBreakdown e = ClassifyErrors(truth, truth);
  EXPECT_EQ(e.correct, truth.VersionCount());
  EXPECT_EQ(e.false_negative + e.false_positive + e.wrong_match, 0u);
}

TEST(CrossClassifyTest, DiagonalWhenApproachesAgree) {
  IdentityGraph truth = MakeTruth();
  ErrorConfusion confusion = CrossClassifyErrors(truth, truth, truth);
  EXPECT_EQ(confusion[0][0], truth.VersionCount());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i != 0 || j != 0) {
        EXPECT_EQ(confusion[i][j], 0u);
      }
    }
  }
}

TEST(PredecessorMapTest, MapsTargetsToSources) {
  IdentityGraph truth = MakeTruth();
  auto preds = PredecessorMap(truth);
  EXPECT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds.at({2, 1}), (VersionRef{0, 1}));
  EXPECT_EQ(preds.count({0, 0}), 0u);
}

}  // namespace
}  // namespace somr::eval
