#include "eval/bootstrap.h"

#include <gtest/gtest.h>

namespace somr::eval {
namespace {

TEST(BootstrapTest, PointEstimateOnFullSample) {
  std::vector<std::pair<size_t, size_t>> counts = {{8, 10}, {9, 10}};
  ConfidenceInterval ci = BootstrapAccuracyCi(counts, 200);
  EXPECT_DOUBLE_EQ(ci.point, 17.0 / 20.0);
}

TEST(BootstrapTest, IntervalContainsPoint) {
  std::vector<std::pair<size_t, size_t>> counts;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    size_t total = 5 + rng.Index(20);
    size_t correct = rng.Index(total + 1);
    counts.emplace_back(correct, total);
  }
  ConfidenceInterval ci = BootstrapAccuracyCi(counts, 500);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GE(ci.lower, 0.0);
  EXPECT_LE(ci.upper, 1.0);
}

TEST(BootstrapTest, DegenerateSampleHasZeroWidth) {
  std::vector<std::pair<size_t, size_t>> counts = {{10, 10}, {20, 20}};
  ConfidenceInterval ci = BootstrapAccuracyCi(counts, 300);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lower, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(BootstrapTest, MoreUnitsNarrowTheInterval) {
  auto make = [](int n) {
    std::vector<std::pair<size_t, size_t>> counts;
    Rng rng(11);
    for (int i = 0; i < n; ++i) {
      counts.emplace_back(rng.Bernoulli(0.8) ? 10 : 5, 10);
    }
    return counts;
  };
  ConfidenceInterval small = BootstrapAccuracyCi(make(10), 600);
  ConfidenceInterval large = BootstrapAccuracyCi(make(400), 600);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(BootstrapTest, Deterministic) {
  std::vector<std::pair<size_t, size_t>> counts = {{3, 10}, {7, 10},
                                                   {9, 10}};
  ConfidenceInterval a = BootstrapAccuracyCi(counts, 400, 0.05, 5);
  ConfidenceInterval b = BootstrapAccuracyCi(counts, 400, 0.05, 5);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, EmptyUnits) {
  ConfidenceInterval ci = BootstrapAccuracyCi({}, 100);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);  // vacuous accuracy
  EXPECT_DOUBLE_EQ(ci.lower, ci.upper);
}

TEST(BootstrapTest, GenericStatistic) {
  // Mean of unit values via the generic interface.
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  ConfidenceInterval ci = BootstrapCi(
      values.size(),
      [&](const std::vector<size_t>& units) {
        double sum = 0;
        for (size_t u : units) sum += values[u];
        return sum / static_cast<double>(units.size());
      },
      500);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_GE(ci.lower, 1.0);
  EXPECT_LE(ci.upper, 4.0);
}

}  // namespace
}  // namespace somr::eval
