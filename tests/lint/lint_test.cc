// Tests for tools/somr_lint: every seeded fixture must produce its
// rule's finding, the clean/suppressed fixtures must not, and --fix
// must rewrite guard headers into #pragma once form. SOMR_LINT_FIXTURE_DIR
// is injected by CMake and points at tests/lint/fixtures.

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/analysis/passes.h"
#include "lint/lint.h"

namespace somr::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(SOMR_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

LintResult LintFixture(const std::string& name,
                       const LintOptions& options = {}) {
  return LintPaths({FixturePath(name)}, options);
}

size_t CountRule(const LintResult& result, const std::string& rule) {
  return static_cast<size_t>(std::count_if(
      result.diagnostics.begin(), result.diagnostics.end(),
      [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::vector<int> LinesOfRule(const LintResult& result,
                             const std::string& rule) {
  std::vector<int> lines;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) lines.push_back(d.line);
  }
  return lines;
}

TEST(LintFixtureTest, BannedRand) {
  LintResult r = LintFixture("banned_rand.cc");
  EXPECT_EQ(CountRule(r, "banned-rand"), 2u);
  EXPECT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(LinesOfRule(r, "banned-rand"), (std::vector<int>{5, 6}));
}

TEST(LintFixtureTest, BannedStrtok) {
  LintResult r = LintFixture("banned_strtok.cc");
  EXPECT_EQ(CountRule(r, "banned-strtok"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
}

TEST(LintFixtureTest, BannedNewArray) {
  LintResult r = LintFixture("banned_new_array.cc");
  // Only the allocation flags — not make_unique<double[]> and not the
  // `operator new[]` declaration.
  EXPECT_EQ(CountRule(r, "banned-new-array"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(LinesOfRule(r, "banned-new-array"), (std::vector<int>{11}));
}

TEST(LintFixtureTest, RegexInHotPath) {
  LintResult r = LintFixture("src/matching/uses_regex.cc");
  EXPECT_GE(CountRule(r, "regex-in-hot-path"), 2u);  // include + use
  EXPECT_EQ(r.diagnostics.size(), CountRule(r, "regex-in-hot-path"));
}

TEST(LintFixtureTest, RegexInHotPathCoversServe) {
  // The per-request HTTP parse loop makes src/serve a hot path too.
  LintResult r = LintFixture("src/serve/uses_regex.cc");
  EXPECT_GE(CountRule(r, "regex-in-hot-path"), 2u);  // include + use
}

TEST(LintFixtureTest, RegexInHotPathCoversState) {
  // Record-log replay and index parsing run on every checkpoint and
  // fault, so src/state is in scope too.
  LintResult r = LintFixture("src/state/uses_regex.cc");
  EXPECT_GE(CountRule(r, "regex-in-hot-path"), 2u);  // include + use
}

TEST(LintFixtureTest, RegexRuleIsPathScoped) {
  // The same content outside src/matching//src/sim is allowed.
  std::string content = ReadFixture("src/matching/uses_regex.cc");
  LintResult r =
      LintContent("src/archive/uses_regex.cc", content, {}, nullptr);
  EXPECT_EQ(CountRule(r, "regex-in-hot-path"), 0u);
}

TEST(LintFixtureTest, RawStderrLog) {
  LintResult r = LintFixture("src/serve/uses_fprintf.cc");
  // The two stderr writes flag; the caller-stream write does not, and
  // the allow-suppressed line is counted under suppressed.
  EXPECT_EQ(CountRule(r, "raw-stderr-log"), 2u);
  EXPECT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(LinesOfRule(r, "raw-stderr-log"), (std::vector<int>{6, 7}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintFixtureTest, RawStderrLogIsPathScoped) {
  // The same content outside src/serve//src/state is allowed: CLI tools
  // may still print usage errors to stderr directly.
  std::string content = ReadFixture("src/serve/uses_fprintf.cc");
  LintResult r =
      LintContent("tools/uses_fprintf.cc", content, {}, nullptr);
  EXPECT_EQ(CountRule(r, "raw-stderr-log"), 0u);
  LintResult state = LintContent("src/state/uses_fprintf.cc", content, {},
                                 nullptr);
  EXPECT_EQ(CountRule(state, "raw-stderr-log"), 2u);
}

TEST(LintFixtureTest, VolatileSync) {
  LintResult r = LintFixture("volatile_sync.cc");
  EXPECT_EQ(CountRule(r, "volatile-sync"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
}

TEST(LintFixtureTest, MutexInTraceScope) {
  LintResult r = LintFixture("src/parallel/lock_in_trace.cc");
  // Only the lock in the same block as the span flags; Fine() is clean.
  EXPECT_EQ(CountRule(r, "mutex-in-trace-scope"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(LinesOfRule(r, "mutex-in-trace-scope"),
            (std::vector<int>{13}));
}

TEST(LintFixtureTest, PragmaOnceMissing) {
  LintResult guard = LintFixture("missing_pragma.h");
  EXPECT_EQ(CountRule(guard, "pragma-once"), 1u);
  LintResult bare = LintFixture("no_guard.h");
  EXPECT_EQ(CountRule(bare, "pragma-once"), 1u);
}

TEST(LintFixtureTest, UsingNamespaceHeader) {
  LintResult r = LintFixture("using_namespace.h");
  EXPECT_EQ(CountRule(r, "using-namespace-header"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(LinesOfRule(r, "using-namespace-header"),
            (std::vector<int>{8}));
}

TEST(LintFixtureTest, TodoFormat) {
  LintResult r = LintFixture("todo_format.cc");
  // The two bare markers flag; the owner-tagged ones do not.
  EXPECT_EQ(CountRule(r, "todo-format"), 2u);
  EXPECT_EQ(r.diagnostics.size(), 2u);
}

TEST(LintFixtureTest, CleanFileHasNoFindings) {
  LintResult r = LintFixture("clean.cc");
  EXPECT_TRUE(r.diagnostics.empty()) << r.diagnostics[0].rule;
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintFixtureTest, SuppressionsSilenceEveryForm) {
  LintResult r = LintFixture("suppressed.cc");
  EXPECT_TRUE(r.diagnostics.empty())
      << r.diagnostics[0].rule << " at line " << r.diagnostics[0].line;
  // 2x rand (same-line + line-above), 2x strtok (file-scoped).
  EXPECT_EQ(r.suppressed, 4u);
}

TEST(LintFixtureTest, SuppressionIsPerRule) {
  // An allow for one rule must not silence another.
  LintResult r = LintContent(
      "x.cc", "int a = rand();  // somr-lint: allow(banned-strtok)\n", {},
      nullptr);
  EXPECT_EQ(CountRule(r, "banned-rand"), 1u);
}

TEST(LintFixtureTest, OnlyRulesFilter) {
  LintOptions options;
  options.only_rules = {"banned-strtok"};
  LintResult r = LintFixture("banned_rand.cc", options);
  EXPECT_TRUE(r.diagnostics.empty());
}

// --fix must rewrite a classic guard to #pragma once without touching
// the body, and the result must re-lint clean.
TEST(LintFixTest, ConvertsClassicGuard) {
  LintOptions options;
  options.fix = true;
  std::string fixed;
  LintResult r = LintContent("missing_pragma.h",
                             ReadFixture("missing_pragma.h"), options,
                             &fixed);
  EXPECT_EQ(r.files_fixed, 1u);
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(fixed.rfind("#pragma once", 0), 0u);
  EXPECT_EQ(fixed.find("#ifndef"), std::string::npos);
  EXPECT_EQ(fixed.find("#endif"), std::string::npos);
  EXPECT_NE(fixed.find("inline int Answer() { return 42; }"),
            std::string::npos);
  LintResult again = LintContent("missing_pragma.h", fixed, {}, nullptr);
  EXPECT_TRUE(again.diagnostics.empty());
}

TEST(LintFixTest, PrependsWhenNoGuard) {
  LintOptions options;
  options.fix = true;
  std::string fixed;
  LintResult r = LintContent("no_guard.h", ReadFixture("no_guard.h"),
                             options, &fixed);
  EXPECT_EQ(r.files_fixed, 1u);
  EXPECT_EQ(fixed.rfind("#pragma once", 0), 0u);
  EXPECT_NE(fixed.find("inline int Unguarded() { return 7; }"),
            std::string::npos);
}

TEST(LintFixTest, FixWithoutFixableFindingIsANoOp) {
  LintOptions options;
  options.fix = true;
  std::string fixed;
  std::string content = ReadFixture("clean.cc");
  LintResult r = LintContent("clean.cc", content, options, &fixed);
  EXPECT_EQ(r.files_fixed, 0u);
  EXPECT_EQ(fixed, content);
}

// SourceFile view construction: the code view blanks comments and
// literal bodies in place, keeping columns aligned with the raw text.
TEST(SourceFileTest, CodeViewBlanksCommentsAndStrings) {
  SourceFile file("x.cc",
                  "int a = 1;  // rand()\n"
                  "const char* s = \"strtok\";\n");
  ASSERT_EQ(file.code_lines().size(), 2u);
  EXPECT_EQ(file.code_lines()[0].substr(0, 10), "int a = 1;");
  EXPECT_EQ(file.code_lines()[0].find("rand"), std::string::npos);
  EXPECT_NE(file.comment_lines()[0].find("rand()"), std::string::npos);
  EXPECT_EQ(file.code_lines()[1].find("strtok"), std::string::npos);
  // Columns stay aligned: the semicolon keeps its raw position.
  EXPECT_EQ(file.code_lines()[1][24], ';');
}

TEST(SourceFileTest, RawStringBodyIsBlanked) {
  SourceFile file("x.cc",
                  "auto s = R\"(rand() and strtok)\";\n"
                  "int keep = 2;\n");
  EXPECT_EQ(file.code_lines()[0].find("rand"), std::string::npos);
  EXPECT_EQ(file.code_lines()[1].substr(0, 13), "int keep = 2;");
}

// ---- analysis passes (lock-discipline / lock-order / coverage) ------

TEST(LintAnalysisTest, GuardedFieldFixture) {
  LintResult r = LintFixture("src/serve/guarded_no_lock.cc");
  EXPECT_EQ(CountRule(r, "lock-discipline"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(LinesOfRule(r, "lock-discipline"), (std::vector<int>{19}));
}

TEST(LintAnalysisTest, LockOrderCycleFixture) {
  LintResult r = LintFixture("src/state/lock_order_cycle.cc");
  EXPECT_EQ(CountRule(r, "lock-order"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  // The graph carries both edges and the detected cycle.
  EXPECT_EQ(r.lock_graph.edges.size(), 2u);
  ASSERT_EQ(r.lock_graph.cycles.size(), 1u);
}

TEST(LintAnalysisTest, UnannotatedMutexFixture) {
  LintResult r = LintFixture("src/obs/unannotated_mutex.cc");
  EXPECT_EQ(CountRule(r, "annotation-coverage"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 1u);
}

TEST(LintAnalysisTest, NestedScopesCoverInnerAccessOnly) {
  // The inner block's guard ends at its closing brace: the access after
  // it is unprotected.
  LintResult r = LintContent("src/serve/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " public:\n"
                             "  void F() {\n"
                             "    {\n"
                             "      std::lock_guard<std::mutex> l(mu_);\n"
                             "      v_ = 1;\n"
                             "    }\n"
                             "    v_ = 2;\n"
                             "  }\n"
                             " private:\n"
                             "  std::mutex mu_;\n"
                             "  int v_ SOMR_GUARDED_BY(mu_) = 0;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(LinesOfRule(r, "lock-discipline"), (std::vector<int>{9}));
}

TEST(LintAnalysisTest, EarlyUnlockEndsTheScope) {
  LintResult r = LintContent("src/serve/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " public:\n"
                             "  void F() {\n"
                             "    std::unique_lock<std::mutex> l(mu_);\n"
                             "    v_ = 1;\n"
                             "    l.unlock();\n"
                             "    v_ = 2;\n"
                             "  }\n"
                             " private:\n"
                             "  std::mutex mu_;\n"
                             "  int v_ SOMR_GUARDED_BY(mu_) = 0;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(LinesOfRule(r, "lock-discipline"), (std::vector<int>{8}));
}

TEST(LintAnalysisTest, RequiresContractPropagates) {
  // The REQUIRES method may touch the field; the unlocked call site is
  // the violation, and the locked one is fine.
  LintResult r = LintContent("src/serve/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " public:\n"
                             "  int SumLocked() const SOMR_REQUIRES(mu_) {\n"
                             "    return v_;\n"
                             "  }\n"
                             "  int Good() const {\n"
                             "    std::lock_guard<std::mutex> l(mu_);\n"
                             "    return SumLocked();\n"
                             "  }\n"
                             "  int Bad() const { return SumLocked(); }\n"
                             " private:\n"
                             "  mutable std::mutex mu_;\n"
                             "  int v_ SOMR_GUARDED_BY(mu_) = 0;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(LinesOfRule(r, "lock-discipline"), (std::vector<int>{11}));
}

TEST(LintAnalysisTest, ScopedLockGroupAddsNoIntraGroupEdges) {
  // std::scoped_lock(a, b) orders its own acquisitions internally — no
  // lock-order edge (and thus no cycle) between its arguments.
  LintResult r = LintContent("src/serve/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " public:\n"
                             "  void F() { std::scoped_lock l(mu_a_, mu_b_); }\n"
                             "  void G() { std::scoped_lock l(mu_b_, mu_a_); }\n"
                             " private:\n"
                             "  std::mutex mu_a_;\n"
                             "  std::mutex mu_b_;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(CountRule(r, "lock-order"), 0u);
  EXPECT_TRUE(r.lock_graph.edges.empty());
}

TEST(LintAnalysisTest, CoverageExemptions) {
  // const / static / atomic / cv / mutex / thread members and
  // SOMR_NOT_GUARDED are all exempt from coverage.
  LintResult r = LintContent(
      "src/obs/x.cc",
      "#include <atomic>\n"
      "#include <condition_variable>\n"
      "#include <mutex>\n"
      "class T {\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::condition_variable cv_;\n"
      "  std::atomic<int> counter_{0};\n"
      "  const int limit_ = 8;\n"
      "  static int shared_;\n"
      "  int scratch_ SOMR_NOT_GUARDED = 0;\n"
      "  int guarded_ SOMR_GUARDED_BY(mu_) = 0;\n"
      "};\n",
      {}, nullptr);
  EXPECT_EQ(CountRule(r, "annotation-coverage"), 0u);
}

TEST(LintAnalysisTest, AnnotationNamingUnknownMutexFlags) {
  LintResult r = LintContent("src/obs/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " private:\n"
                             "  std::mutex mu_;\n"
                             "  int v_ SOMR_GUARDED_BY(other_mu_) = 0;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(CountRule(r, "annotation-coverage"), 1u);
}

TEST(LintAnalysisTest, DotRenderingMarksCycleEdgesRed) {
  LintResult r = LintFixture("src/state/lock_order_cycle.cc");
  const std::string dot = analysis::RenderLockGraphDot(r.lock_graph);
  EXPECT_EQ(dot.rfind("digraph somr_lock_order {", 0), 0u);
  EXPECT_NE(dot.find("state::Ledger::mu_a_"), std::string::npos);
  EXPECT_NE(dot.find("state::Ledger::mu_b_"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(LintAnalysisTest, SuppressionSilencesAnalysisFinding) {
  LintResult r = LintContent("src/serve/x.cc",
                             "#include <mutex>\n"
                             "class T {\n"
                             " public:\n"
                             "  // somr-lint: allow(lock-discipline)\n"
                             "  int F() const { return v_; }\n"
                             " private:\n"
                             "  mutable std::mutex mu_;\n"
                             "  int v_ SOMR_GUARDED_BY(mu_) = 0;\n"
                             "};\n",
                             {}, nullptr);
  EXPECT_EQ(CountRule(r, "lock-discipline"), 0u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintJsonTest, RoundTrip) {
  LintResult r = LintFixture("src/serve/guarded_no_lock.cc");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const std::string json = RenderDiagnosticsJson(r);
  LintResult parsed;
  ASSERT_TRUE(ParseDiagnosticsJson(json, &parsed));
  ASSERT_EQ(parsed.diagnostics.size(), r.diagnostics.size());
  EXPECT_EQ(parsed.diagnostics[0].rule, r.diagnostics[0].rule);
  EXPECT_EQ(parsed.diagnostics[0].file, r.diagnostics[0].file);
  EXPECT_EQ(parsed.diagnostics[0].line, r.diagnostics[0].line);
  EXPECT_EQ(parsed.diagnostics[0].message, r.diagnostics[0].message);
  EXPECT_EQ(parsed.diagnostics[0].fixable, r.diagnostics[0].fixable);
  EXPECT_EQ(parsed.files_scanned, r.files_scanned);
  EXPECT_EQ(parsed.files_fixed, r.files_fixed);
  EXPECT_EQ(parsed.suppressed, r.suppressed);
}

TEST(LintJsonTest, EscapesSpecialCharacters) {
  LintResult r;
  r.diagnostics.push_back(
      {"a\"b\\c.cc", 3, "rule", "tab\there\nnewline", false});
  const std::string json = RenderDiagnosticsJson(r);
  LintResult parsed;
  ASSERT_TRUE(ParseDiagnosticsJson(json, &parsed));
  ASSERT_EQ(parsed.diagnostics.size(), 1u);
  EXPECT_EQ(parsed.diagnostics[0].file, "a\"b\\c.cc");
  EXPECT_EQ(parsed.diagnostics[0].message, "tab\there\nnewline");
}

TEST(LintJsonTest, RejectsMalformedInput) {
  LintResult parsed;
  EXPECT_FALSE(ParseDiagnosticsJson("", &parsed));
  EXPECT_FALSE(ParseDiagnosticsJson("[]", &parsed));
  EXPECT_FALSE(ParseDiagnosticsJson("{\"findings\": [", &parsed));
}

TEST(SourceFileTest, BlockCommentSpanningLines) {
  SourceFile file("x.cc", "/* rand()\n   strtok */ int a;\n");
  EXPECT_EQ(file.code_lines()[0].find("rand"), std::string::npos);
  EXPECT_EQ(file.code_lines()[1].find("strtok"), std::string::npos);
  EXPECT_NE(file.code_lines()[1].find("int a;"), std::string::npos);
}

}  // namespace
}  // namespace somr::lint
