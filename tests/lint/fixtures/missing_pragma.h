#ifndef SOMR_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_
#define SOMR_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_

// Fixture: classic include guard; --fix rewrites it to #pragma once.

namespace somr_fixture {
inline int Answer() { return 42; }
}  // namespace somr_fixture

#endif  // SOMR_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_
