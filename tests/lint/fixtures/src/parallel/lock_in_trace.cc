// Fixture: seeded mutex-in-trace-scope violation — the lock_guard sits
// in the same block as the trace span, so the lock wait is charged to
// the span. The lock in Fine() is outside any span and must not flag.
// (Fixtures are lint inputs only, never compiled; the trace macro and
// mutex declarations are assumed.)
#include <mutex>

std::mutex g_mu;
int g_count = 0;

void Bad() {
  SOMR_TRACE_SCOPE("bad");
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}

void Fine() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}
