// Fixture: seeded regex-in-hot-path violations (include + use). The
// path contains src/state, where record-log replay and index parsing
// run on every checkpoint and fault — they must stay on hand-rolled
// scanners.
#include <regex>

bool LooksLikeShardName(const std::string& name) {
  static const std::regex kShard("records-[0-9]{4}-g[0-9]{6}\\.rec");
  return std::regex_match(name, kShard);
}
