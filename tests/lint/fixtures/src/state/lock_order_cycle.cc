// Seeded lock-order violation: Credit() acquires mu_a_ then mu_b_,
// Debit() acquires them in the opposite order — a classic AB/BA
// deadlock cycle the lock-order pass must report.
#include <mutex>

namespace somr::state {

class Ledger {
 public:
  void Credit() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    ++balance_a_;
  }

  void Debit() {
    std::lock_guard<std::mutex> b(mu_b_);
    std::lock_guard<std::mutex> a(mu_a_);
    ++balance_b_;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int balance_a_ SOMR_GUARDED_BY(mu_a_) = 0;
  int balance_b_ SOMR_GUARDED_BY(mu_b_) = 0;
};

}  // namespace somr::state
