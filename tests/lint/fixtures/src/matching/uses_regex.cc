// Fixture: seeded regex-in-hot-path violations (include + use). The
// path contains src/matching, which makes the rule apply.
#include <regex>

bool LooksNumeric(const std::string& s) {
  static const std::regex kNumber("[0-9]+");
  return std::regex_match(s, kNumber);
}
