// Seeded annotation-coverage violation: Buffer owns a mutex but leaves
// a mutable sibling member unannotated (neither SOMR_GUARDED_BY nor
// SOMR_NOT_GUARDED).
#include <mutex>

namespace somr::obs {

class Buffer {
 public:
  void Add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }

 private:
  std::mutex mu_;
  int total_ = 0;  // violation: unannotated next to mu_
};

}  // namespace somr::obs
