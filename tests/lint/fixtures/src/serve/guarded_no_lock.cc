// Seeded lock-discipline violation: UnsafePeek() reads a guarded field
// without holding its mutex (Set() is the correct pattern and must not
// flag).
#include <mutex>

#include "common/thread_annotations.h"

namespace somr::serve {

class SessionTable {
 public:
  void Set(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
    dirty_ = true;
  }

  int UnsafePeek() const {
    return value_;  // violation: mu_ not held
  }

 private:
  mutable std::mutex mu_;
  int value_ SOMR_GUARDED_BY(mu_) = 0;
  bool dirty_ SOMR_GUARDED_BY(mu_) = false;
};

}  // namespace somr::serve
