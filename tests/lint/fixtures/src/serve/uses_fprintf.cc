// Seeded violations for raw-stderr-log: daemon code writing straight to
// stderr instead of the structured log.
#include <cstdio>

void Violations(int code, FILE* sink) {
  fprintf(stderr, "shard worker died: %d\n", code);
  std::fprintf(stderr, "checkpoint failed\n");
  // Writing to a caller-provided stream is plain I/O, not logging.
  fprintf(sink, "report %d\n", code);
  fprintf(stderr, "noisy but allowed\n");  // somr-lint: allow(raw-stderr-log)
}
