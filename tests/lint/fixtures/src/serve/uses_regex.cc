// Fixture: seeded regex-in-hot-path violations (include + use). The
// path contains src/serve, where the HTTP parser runs per request and
// must stay on hand-rolled scanners.
#include <regex>

bool LooksLikeChunkSize(const std::string& line) {
  static const std::regex kHex("[0-9a-fA-F]+");
  return std::regex_match(line, kHex);
}
