// Fixture: every violation here carries a somr-lint allow, so the file
// lints clean with a non-zero suppressed count.
// somr-lint: allow-file(banned-strtok)
#include <cstdlib>
#include <cstring>

int SameLine() { return rand(); }  // somr-lint: allow(banned-rand)

// somr-lint: allow(banned-rand)
int LineAbove() { return rand(); }

char* FileScoped(char* row) { return strtok(row, ","); }
char* FileScopedAgain(char* row) { return strtok(row, ";"); }
