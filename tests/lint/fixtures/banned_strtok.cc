// Fixture: seeded banned-strtok violation.
#include <cstring>

char* FirstField(char* row) { return strtok(row, ","); }
