// Fixture: seeded todo-format violations. The owner-tagged comments
// must not flag; the bare ones must.

// TODO(alice): properly owner-tagged, not a finding.
// FIXME(bob): also fine.

int Pending() {
  // TODO: missing owner — finding.
  return 0;  // FIXME bare marker — finding.
}
