// Fixture: seeded banned-new-array violations; the make_unique and
// `operator new[]` lines must NOT be flagged.
#include <cstddef>
#include <memory>

void* operator new[](std::size_t n);

double* Alloc(int n) {
  auto ok = std::make_unique<double[]>(16);
  (void)ok;
  return new double[n];
}
