#pragma once

// Fixture: seeded using-namespace-header violation. The namespace
// alias and the function-local using-declaration must not flag.

#include <string>

using namespace std;

namespace alias_ok = std;

inline string Shout(const string& s) { return s + "!"; }
