// Fixture: a file with no violations; near-miss spellings of banned
// constructs appear in strings and comments, which the code view
// blanks (rand(), strtok, volatile — none of these flag).
#include <string>
#include <vector>

int Random() { return 4; }  // identifiers containing rand are fine

std::string Describe() {
  return "call rand() and strtok() on a volatile int via new int[3]";
}

std::vector<int> Grid(int n) { return std::vector<int>(static_cast<size_t>(n)); }
