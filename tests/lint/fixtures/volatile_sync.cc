// Fixture: seeded volatile-sync violation.
volatile bool g_ready = false;

void Wait() {
  while (!g_ready) {
  }
}
