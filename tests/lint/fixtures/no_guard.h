// Fixture: header with no guard at all; --fix prepends #pragma once.

namespace somr_fixture {
inline int Unguarded() { return 7; }
}  // namespace somr_fixture
