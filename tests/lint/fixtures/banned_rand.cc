// Fixture: seeded banned-rand violations (lines 5 and 6).
#include <cstdlib>

int Roll() {
  srand(42);
  return rand() % 6;
}
