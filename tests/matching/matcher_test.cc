#include "matching/matcher.h"

#include <gtest/gtest.h>

namespace somr::matching {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;

/// Builds a table instance from rows of space-separated cell text.
ObjectInstance Table(int position,
                     std::initializer_list<const char*> rows) {
  ObjectInstance obj;
  obj.type = ObjectType::kTable;
  obj.position = position;
  for (const char* row : rows) {
    std::vector<std::string> cells;
    std::string current;
    for (const char* p = row;; ++p) {
      if (*p == ' ' || *p == '\0') {
        if (!current.empty()) cells.push_back(std::move(current));
        current.clear();
        if (*p == '\0') break;
      } else {
        current.push_back(*p);
      }
    }
    obj.rows.push_back(std::move(cells));
  }
  return obj;
}

std::vector<ObjectInstance> Revision(std::vector<ObjectInstance> objs) {
  for (size_t i = 0; i < objs.size(); ++i) {
    objs[i].position = static_cast<int>(i);
  }
  return objs;
}

TEST(TemporalMatcherTest, StableObjectMatchedAcrossRevisions) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance t = Table(0, {"year result", "2001 won"});
  for (int r = 0; r < 5; ++r) {
    matcher.ProcessRevision(r, {t});
  }
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
  EXPECT_EQ(matcher.graph().VersionCount(), 5u);
  EXPECT_EQ(matcher.graph().Edges().size(), 4u);
}

TEST(TemporalMatcherTest, MovedObjectFollowedByContent) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance a = Table(0, {"alpha beta gamma", "one two three"});
  ObjectInstance b = Table(1, {"delta epsilon zeta", "four five six"});
  matcher.ProcessRevision(0, Revision({a, b}));
  // Swap their order on the page.
  matcher.ProcessRevision(1, Revision({b, a}));
  const IdentityGraph& graph = matcher.graph();
  ASSERT_EQ(graph.ObjectCount(), 2u);
  // Object 0 (content a) must continue at position 1 of revision 1.
  EXPECT_EQ(graph.objects()[0].versions[1], (VersionRef{1, 1}));
  EXPECT_EQ(graph.objects()[1].versions[1], (VersionRef{1, 0}));
}

TEST(TemporalMatcherTest, DeleteAndRestoreBridgedByRearView) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance keep = Table(0, {"stable content here", "row two data"});
  ObjectInstance victim = Table(1, {"victim table content", "unique cells"});
  matcher.ProcessRevision(0, Revision({keep, victim}));
  matcher.ProcessRevision(1, Revision({keep}));      // victim deleted
  matcher.ProcessRevision(2, Revision({keep}));
  matcher.ProcessRevision(3, Revision({keep, victim}));  // restored
  const IdentityGraph& graph = matcher.graph();
  ASSERT_EQ(graph.ObjectCount(), 2u);
  const TrackedObjectRecord& restored = graph.objects()[1];
  ASSERT_EQ(restored.versions.size(), 2u);
  EXPECT_EQ(restored.versions[0], (VersionRef{0, 1}));
  EXPECT_EQ(restored.versions[1], (VersionRef{3, 1}));
}

TEST(TemporalMatcherTest, DuplicationPrefersCloserPosition) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance original = Table(0, {"award category result",
                                      "2001 best won"});
  ObjectInstance other = Table(1, {"completely different content",
                                   "nothing shared here"});
  matcher.ProcessRevision(0, Revision({original, other}));
  // The user duplicates `original`; the copy lands after `other`.
  matcher.ProcessRevision(1, Revision({original, other, original}));
  const IdentityGraph& graph = matcher.graph();
  ASSERT_EQ(graph.ObjectCount(), 3u);
  // The existing object keeps the instance at its old position (0), and
  // the far copy (position 2) becomes a new object.
  EXPECT_EQ(graph.objects()[0].versions[1], (VersionRef{1, 0}));
  EXPECT_EQ(graph.objects()[2].versions.front(), (VersionRef{1, 2}));
}

TEST(TemporalMatcherTest, DeletedDuplicatePrefersLongerLifetime) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance twin = Table(0, {"identical twin content", "same rows"});
  ObjectInstance filler = Table(0, {"filler object", "unrelated text"});
  // Revisions 0-2: the elder twin exists (with filler first so that the
  // surviving instance's position matches neither twin exactly).
  matcher.ProcessRevision(0, Revision({filler, twin}));
  matcher.ProcessRevision(1, Revision({filler, twin}));
  // Revision 2: a duplicate twin appears.
  matcher.ProcessRevision(2, Revision({filler, twin, twin}));
  // Revision 3: only one twin remains, at a third position.
  matcher.ProcessRevision(3, Revision({twin, filler}));
  const IdentityGraph& graph = matcher.graph();
  // The survivor must extend the elder twin (object created revision 0).
  int64_t elder = graph.ObjectIdOf({0, 1});
  int64_t survivor = graph.ObjectIdOf({3, 0});
  EXPECT_EQ(survivor, elder);
}

TEST(TemporalMatcherTest, GrownObjectCaughtByRelaxedStage) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance small = Table(0, {"seed words here"});
  matcher.ProcessRevision(0, {small});
  // Triples in size: Ruzicka = 3/9 < theta2, containment = 1.0.
  ObjectInstance grown = Table(0, {"seed words here", "many new rows",
                                   "added this revision"});
  matcher.ProcessRevision(1, {grown});
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
  EXPECT_EQ(matcher.graph().Edges().size(), 1u);
  EXPECT_GE(matcher.stats().stage3_matches, 1u);
}

TEST(TemporalMatcherTest, DissimilarObjectBecomesNew) {
  TemporalMatcher matcher(ObjectType::kTable);
  matcher.ProcessRevision(0, {Table(0, {"first table content"})});
  matcher.ProcessRevision(1, {Table(0, {"totally unrelated thing"})});
  EXPECT_EQ(matcher.graph().ObjectCount(), 2u);
  EXPECT_TRUE(matcher.graph().Edges().empty());
}

TEST(TemporalMatcherTest, EmptyRevisionThenRestore) {
  TemporalMatcher matcher(ObjectType::kList);
  ObjectInstance list = Table(0, {"itemized content list"});
  list.type = ObjectType::kList;
  matcher.ProcessRevision(0, {list});
  matcher.ProcessRevision(1, {});  // page blanked
  matcher.ProcessRevision(2, {list});
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
  ASSERT_EQ(matcher.graph().Edges().size(), 1u);
  EXPECT_EQ(matcher.graph().Edges()[0].second, (VersionRef{2, 0}));
}

TEST(TemporalMatcherTest, Stage1CountsLocalMatches) {
  TemporalMatcher matcher(ObjectType::kTable);
  ObjectInstance t = Table(0, {"stable table content", "more rows"});
  matcher.ProcessRevision(0, {t});
  matcher.ProcessRevision(1, {t});
  EXPECT_EQ(matcher.stats().stage1_matches, 1u);
  EXPECT_EQ(matcher.stats().new_objects, 1u);
}

TEST(TemporalMatcherTest, Stage1DisabledStillMatches) {
  MatcherConfig config;
  config.enable_stage1 = false;
  TemporalMatcher matcher(ObjectType::kTable, config);
  ObjectInstance t = Table(0, {"stable table content", "more rows"});
  matcher.ProcessRevision(0, {t});
  matcher.ProcessRevision(1, {t});
  EXPECT_EQ(matcher.graph().ObjectCount(), 1u);
  EXPECT_EQ(matcher.stats().stage1_matches, 0u);
  EXPECT_EQ(matcher.stats().stage2_matches, 1u);
}

TEST(TemporalMatcherTest, SpatialFeaturesDisabledMatchesByContent) {
  MatcherConfig config;
  config.use_spatial_features = false;
  TemporalMatcher matcher(ObjectType::kTable, config);
  ObjectInstance a = Table(0, {"alpha beta gamma delta"});
  ObjectInstance b = Table(1, {"epsilon zeta eta theta"});
  matcher.ProcessRevision(0, Revision({a, b}));
  matcher.ProcessRevision(1, Revision({b, a}));
  EXPECT_EQ(matcher.graph().ObjectCount(), 2u);
  EXPECT_EQ(matcher.graph().Edges().size(), 2u);
}

TEST(TemporalMatcherTest, FarMovedObjectMissedByStage1CaughtLater) {
  MatcherConfig config;
  config.theta_pos = 2;
  TemporalMatcher matcher(ObjectType::kTable, config);
  std::vector<ObjectInstance> revision0;
  for (int i = 0; i < 6; ++i) {
    revision0.push_back(
        Table(i, {("object" + std::to_string(i) + " unique content alpha" +
                   std::to_string(i)).c_str()}));
  }
  matcher.ProcessRevision(0, Revision(revision0));
  // Move the first object to the end (position diff 5 > theta_pos).
  std::vector<ObjectInstance> revision1(revision0.begin() + 1,
                                        revision0.end());
  revision1.push_back(revision0[0]);
  matcher.ProcessRevision(1, Revision(revision1));
  EXPECT_EQ(matcher.graph().ObjectCount(), 6u);
  EXPECT_EQ(matcher.graph().Edges().size(), 6u);
}

TEST(TemporalMatcherTest, RearViewWindowRespectsK) {
  // An object drifts v1 -> v2 -> v3 (adjacent versions overlap by half,
  // v1 and v3 are disjoint), is deleted, and then v1's content returns.
  ObjectInstance v1 = Table(0, {"alpha beta gamma delta"});
  ObjectInstance v2 = Table(0, {"gamma delta epsilon zeta"});
  ObjectInstance v3 = Table(0, {"epsilon zeta eta theta"});
  auto run = [&](int k) {
    MatcherConfig config;
    config.rear_view_window = k;
    TemporalMatcher matcher(ObjectType::kTable, config);
    matcher.ProcessRevision(0, {v1});
    matcher.ProcessRevision(1, {v2});
    matcher.ProcessRevision(2, {v3});
    matcher.ProcessRevision(3, {});
    matcher.ProcessRevision(4, {v1});
    return matcher.graph().ObjectCount();
  };
  // k = 1: only v3 is remembered — the returning v1 is a new object.
  EXPECT_EQ(run(1), 2u);
  // k = 3: v1 is still in the window (decayed but identical) — matched.
  EXPECT_EQ(run(3), 1u);
}

TEST(TemporalMatcherTest, DecayPrefersFresherObject) {
  MatcherConfig config;
  config.decay = 0.5;  // strong decay to make the effect visible
  TemporalMatcher matcher(ObjectType::kTable, config);
  ObjectInstance content = Table(0, {"shared matching content words"});
  ObjectInstance other = Table(0, {"unrelated filler blob"});
  // Object A has `content` as its latest version; object B had it two
  // versions ago.
  matcher.ProcessRevision(0, Revision({content, content}));
  ObjectInstance drift1 = Table(1, {"shared matching drift one"});
  matcher.ProcessRevision(1, Revision({content, drift1}));
  matcher.ProcessRevision(2, Revision({content, other}));
  // One instance of `content` appears; A (latest = content) must win over
  // B (content only in older versions).
  matcher.ProcessRevision(3, Revision({content}));
  int64_t a = matcher.graph().ObjectIdOf({2, 0});
  int64_t winner = matcher.graph().ObjectIdOf({3, 0});
  EXPECT_EQ(winner, a);
}

TEST(TemporalMatcherTest, DeterministicAcrossRuns) {
  auto run = [] {
    TemporalMatcher matcher(ObjectType::kTable);
    matcher.ProcessRevision(
        0, Revision({Table(0, {"a b c"}), Table(1, {"d e f"})}));
    matcher.ProcessRevision(
        1, Revision({Table(0, {"d e f"}), Table(1, {"a b c x"})}));
    std::vector<IdentityEdge> edges = matcher.graph().Edges();
    return edges;
  };
  EXPECT_EQ(run(), run());
}

TEST(PageMatcherTest, TypesMatchedIndependently) {
  PageMatcher matcher;
  extract::PageObjects objects;
  ObjectInstance table = Table(0, {"table content here"});
  ObjectInstance infobox = Table(0, {"name jane", "occupation actress"});
  infobox.type = ObjectType::kInfobox;
  ObjectInstance list = Table(0, {"list item text"});
  list.type = ObjectType::kList;
  objects.tables = {table};
  objects.infoboxes = {infobox};
  objects.lists = {list};
  matcher.ProcessRevision(0, objects);
  matcher.ProcessRevision(1, objects);
  EXPECT_EQ(matcher.GraphFor(ObjectType::kTable).ObjectCount(), 1u);
  EXPECT_EQ(matcher.GraphFor(ObjectType::kInfobox).ObjectCount(), 1u);
  EXPECT_EQ(matcher.GraphFor(ObjectType::kList).ObjectCount(), 1u);
  EXPECT_EQ(matcher.StatsFor(ObjectType::kTable).step_millis.size(), 2u);
}

TEST(PageMatcherTest, TakeStatsLeavesZeroedStats) {
  // Regression: a plain move of MatchStats resets only the step_millis
  // vector and keeps the size_t counters, leaving stats() inconsistent
  // after TakeStats. TakeStats must hand back the full stats and leave a
  // default-constructed MatchStats behind.
  PageMatcher matcher;
  extract::PageObjects objects;
  objects.tables = {Table(0, {"year result", "2001 won"})};
  matcher.ProcessRevision(0, objects);
  matcher.ProcessRevision(1, objects);

  MatchStats taken = matcher.TakeStats(ObjectType::kTable);
  EXPECT_EQ(taken.step_millis.size(), 2u);
  EXPECT_EQ(taken.stage1_matches, 1u);
  EXPECT_EQ(taken.new_objects, 1u);
  EXPECT_GE(taken.similarities_computed, 1u);

  const MatchStats& left = matcher.StatsFor(ObjectType::kTable);
  EXPECT_TRUE(left.step_millis.empty());
  EXPECT_EQ(left.stage1_matches, 0u);
  EXPECT_EQ(left.new_objects, 0u);
  EXPECT_EQ(left.similarities_computed, 0u);
  EXPECT_EQ(left.pairs_pruned, 0u);
}

}  // namespace
}  // namespace somr::matching
