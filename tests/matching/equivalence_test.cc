// Golden equivalence of the interned-token (FlatBag) similarity engine
// against the legacy string-hash path: the kernels must agree value for
// value, and the full matcher must emit the identical identity graph on
// gold corpora for every focal object type.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/harness.h"
#include "matching/matcher.h"
#include "sim/similarity.h"
#include "text/bag_of_words.h"
#include "text/flat_bag.h"
#include "text/token_pool.h"
#include "wikigen/corpus.h"

namespace somr::matching {
namespace {

BagOfWords RandomBag(Rng& rng, int tokens, int vocabulary) {
  BagOfWords bag;
  for (int i = 0; i < tokens; ++i) {
    bag.Add("tok" + std::to_string(rng.UniformInt(0, vocabulary - 1)));
  }
  return bag;
}

FlatBag Compile(const BagOfWords& bag, TokenPool& pool) {
  return FlatBag::FromBag(bag, pool);
}

TEST(KernelEquivalenceTest, UnweightedKernelsBitIdentical) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    int tokens = 1 + static_cast<int>(rng.UniformInt(0, 80));
    BagOfWords a = RandomBag(rng, tokens, 40);
    BagOfWords b = RandomBag(rng, tokens / 2 + 1, 40);
    TokenPool pool;
    FlatBag fa = Compile(a, pool);
    FlatBag fb = Compile(b, pool);
    // Unit-weight counts sum exactly in doubles, so the merge-join result
    // is bit-identical to the hash-lookup result.
    EXPECT_EQ(sim::Ruzicka(a, b), sim::Ruzicka(fa, fb));
    EXPECT_EQ(sim::Containment(a, b), sim::Containment(fa, fb));
  }
}

TEST(KernelEquivalenceTest, EmptyBagsAgree) {
  BagOfWords empty_bag;
  BagOfWords full_bag;
  full_bag.Add("x");
  TokenPool pool;
  FlatBag fe = Compile(empty_bag, pool);
  FlatBag ff = Compile(full_bag, pool);
  EXPECT_EQ(sim::Ruzicka(empty_bag, empty_bag), sim::Ruzicka(fe, fe));
  EXPECT_EQ(sim::Ruzicka(empty_bag, full_bag), sim::Ruzicka(fe, ff));
  EXPECT_EQ(sim::Containment(empty_bag, full_bag), sim::Containment(fe, ff));
  EXPECT_EQ(sim::Containment(full_bag, empty_bag), sim::Containment(ff, fe));
}

TEST(KernelEquivalenceTest, WeightedKernelsNearIdentical) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    BagOfWords a = RandomBag(rng, 60, 30);
    BagOfWords b = RandomBag(rng, 45, 30);
    BagOfWords c = RandomBag(rng, 30, 30);
    TokenPool pool;
    FlatBag fa = Compile(a, pool);
    FlatBag fb = Compile(b, pool);
    FlatBag fc = Compile(c, pool);
    sim::TokenWeighting weighting =
        sim::TokenWeighting::InverseObjectFrequency({&a, &b}, {&b, &c});
    sim::DenseTokenWeights weights;
    weights.BuildInverseObjectFrequency({&fa, &fb}, {&fb, &fc}, pool.size());
    // Same weight values; only the summation order differs (id order vs
    // hash order), so allow for reassociation error.
    EXPECT_NEAR(sim::WeightedRuzicka(a, b, weighting),
                sim::WeightedRuzicka(fa, fb, weights), 1e-12);
    EXPECT_NEAR(sim::WeightedContainment(a, c, weighting),
                sim::WeightedContainment(fa, fc, weights), 1e-12);
  }
}

TEST(KernelEquivalenceTest, UpperBoundIsSound) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    BagOfWords a = RandomBag(rng, 1 + static_cast<int>(rng.UniformInt(0, 50)),
                             25);
    BagOfWords b = RandomBag(rng, 1 + static_cast<int>(rng.UniformInt(0, 50)),
                             25);
    TokenPool pool;
    FlatBag fa = Compile(a, pool);
    FlatBag fb = Compile(b, pool);
    sim::DenseTokenWeights weights;
    weights.BuildInverseObjectFrequency({&fa}, {&fb}, pool.size());
    double ta = sim::WeightedTotal(fa, weights);
    double tb = sim::WeightedTotal(fb, weights);
    double bound = sim::SimilarityUpperBound(sim::SimilarityKind::kStrict,
                                             fa.empty(), fb.empty(), ta, tb);
    double exact = sim::SimilarityFromTotals(sim::SimilarityKind::kStrict, fa,
                                             fb, weights, ta, tb);
    EXPECT_LE(exact, bound + 1e-12);
  }
}

/// The graphs must be identical object for object, version for version.
void ExpectSameGraph(const IdentityGraph& flat, const IdentityGraph& legacy) {
  EXPECT_EQ(flat.type(), legacy.type());
  ASSERT_EQ(flat.ObjectCount(), legacy.ObjectCount());
  for (size_t i = 0; i < flat.objects().size(); ++i) {
    const TrackedObjectRecord& f = flat.objects()[i];
    const TrackedObjectRecord& l = legacy.objects()[i];
    EXPECT_EQ(f.object_id, l.object_id);
    EXPECT_EQ(f.type, l.type);
    EXPECT_EQ(f.versions, l.versions);
  }
}

IdentityGraph RunEngine(
    const std::vector<std::vector<extract::ObjectInstance>>& revisions,
    extract::ObjectType type, const MatcherConfig& config) {
  TemporalMatcher matcher(type, config);
  for (size_t r = 0; r < revisions.size(); ++r) {
    matcher.ProcessRevision(static_cast<int>(r), revisions[r]);
  }
  return matcher.TakeGraph();
}

wikigen::GoldCorpus SmallCorpus(extract::ObjectType focal, uint64_t seed) {
  wikigen::CorpusConfig config;
  config.focal_type = focal;
  config.strata_caps = {1, 3};
  config.pages_per_stratum = 1;
  config.min_revisions = 12;
  config.max_revisions = 18;
  config.seed = seed;
  return wikigen::GenerateGoldCorpus(config);
}

class MatcherEquivalenceTest
    : public ::testing::TestWithParam<extract::ObjectType> {};

TEST_P(MatcherEquivalenceTest, FlatEngineMatchesLegacyOnGoldCorpus) {
  extract::ObjectType focal = GetParam();
  wikigen::GoldCorpus corpus = SmallCorpus(focal, 91);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    for (extract::ObjectType type :
         {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
          extract::ObjectType::kList}) {
      auto slices = eval::SliceType(objects, type);
      MatcherConfig flat_config;
      flat_config.use_flat_kernels = true;
      MatcherConfig legacy_config;
      legacy_config.use_flat_kernels = false;
      ExpectSameGraph(RunEngine(slices, type, flat_config),
                      RunEngine(slices, type, legacy_config));
    }
  }
}

TEST_P(MatcherEquivalenceTest, LshBelowThresholdFallsBackExactly) {
  extract::ObjectType focal = GetParam();
  wikigen::GoldCorpus corpus = SmallCorpus(focal, 92);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    auto slices = eval::SliceType(objects, focal);
    MatcherConfig lsh_config;
    lsh_config.enable_lsh_blocking = true;  // never engaged: threshold huge
    lsh_config.lsh_min_pair_count = 1u << 30;
    MatcherConfig exact_config;
    ExpectSameGraph(RunEngine(slices, focal, lsh_config),
                    RunEngine(slices, focal, exact_config));
  }
}

TEST_P(MatcherEquivalenceTest, LshEngagedStillAssignsEveryInstance) {
  extract::ObjectType focal = GetParam();
  wikigen::GoldCorpus corpus = SmallCorpus(focal, 93);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    auto slices = eval::SliceType(objects, focal);
    size_t total_instances = 0;
    for (const auto& rev : slices) total_instances += rev.size();
    MatcherConfig lsh_config;
    lsh_config.enable_lsh_blocking = true;
    lsh_config.lsh_min_pair_count = 0;  // always engaged
    IdentityGraph graph = RunEngine(slices, focal, lsh_config);
    // Blocking may split identities but never drops an instance.
    EXPECT_EQ(graph.VersionCount(), total_instances);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MatcherEquivalenceTest,
                         ::testing::Values(extract::ObjectType::kTable,
                                           extract::ObjectType::kInfobox,
                                           extract::ObjectType::kList));

}  // namespace
}  // namespace somr::matching
