// Randomized differential test of the retrieval-index candidate
// generation (src/retrieval/) against the all-pairs sweep: on seeded
// wikigen corpora the two paths must produce byte-identical identity
// graphs, outcome stats, and match provenance across every object type
// and config ablation, while the indexed path scores at most as many
// pairs as the sweep. Also covers snapshot restore (the index is rebuilt,
// the "retrieval_index" validator must pass) and the shape pre-filter.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "eval/harness.h"
#include "matching/graph_io.h"
#include "matching/matcher.h"
#include "obs/provenance.h"
#include "state/snapshot.h"
#include "wikigen/corpus.h"

namespace somr::matching {
namespace {

wikigen::GoldCorpus SmallCorpus(extract::ObjectType focal, uint64_t seed) {
  wikigen::CorpusConfig config;
  config.focal_type = focal;
  config.strata_caps = {1, 3};
  config.pages_per_stratum = 1;
  config.min_revisions = 12;
  config.max_revisions = 18;
  config.seed = seed;
  return wikigen::GenerateGoldCorpus(config);
}

/// Outcome provenance of one run: every decision that shapes the graph,
/// excluding the work-rate fields (similarities, prunes, candidate
/// counts) that legitimately differ between swept and indexed runs.
struct Outcome {
  std::string graph;
  MatchStats stats;
  std::vector<std::string> decisions;
};

class DecisionCollector : public obs::ProvenanceSink {
 public:
  void Record(const obs::MatchDecision& d) override {
    if (d.kind == obs::MatchDecision::Kind::kStep) return;  // work rates
    std::ostringstream line;
    line << obs::MatchDecisionKindName(d.kind) << " r" << d.revision
         << " s" << d.stage << " o" << d.object_id << " p" << d.position
         << " sim=" << d.similarity << " " << d.reason;
    decisions.push_back(line.str());
  }
  std::vector<std::string> decisions;
};

Outcome RunEngine(
    const std::vector<std::vector<extract::ObjectInstance>>& revisions,
    extract::ObjectType type, const MatcherConfig& config) {
  TemporalMatcher matcher(type, config);
  DecisionCollector collector;
  matcher.SetProvenanceSink(&collector);
  for (size_t r = 0; r < revisions.size(); ++r) {
    matcher.ProcessRevision(static_cast<int>(r), revisions[r]);
  }
  Outcome outcome;
  outcome.stats = matcher.stats();
  outcome.graph = SerializeIdentityGraph(matcher.graph());
  outcome.decisions = std::move(collector.decisions);
  return outcome;
}

/// Swept and indexed runs must agree on everything the graph is built
/// from; only work-rate counters may differ (indexed never scores more).
void ExpectEquivalent(const Outcome& swept, const Outcome& indexed) {
  EXPECT_EQ(swept.graph, indexed.graph);
  EXPECT_EQ(swept.stats.stage1_matches, indexed.stats.stage1_matches);
  EXPECT_EQ(swept.stats.stage2_matches, indexed.stats.stage2_matches);
  EXPECT_EQ(swept.stats.stage3_matches, indexed.stats.stage3_matches);
  EXPECT_EQ(swept.stats.new_objects, indexed.stats.new_objects);
  EXPECT_EQ(swept.decisions, indexed.decisions);
  EXPECT_LE(indexed.stats.similarities_computed,
            swept.stats.similarities_computed);
}

void RunDifferential(extract::ObjectType focal, uint64_t seed,
                     MatcherConfig base) {
  wikigen::GoldCorpus corpus = SmallCorpus(focal, seed);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    for (extract::ObjectType type :
         {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
          extract::ObjectType::kList}) {
      auto slices = eval::SliceType(objects, type);
      MatcherConfig swept = base;
      swept.enable_retrieval_index = false;
      MatcherConfig indexed = base;
      indexed.enable_retrieval_index = true;
      ExpectEquivalent(RunEngine(slices, type, swept),
                       RunEngine(slices, type, indexed));
    }
  }
}

class RetrievalEquivalenceTest
    : public ::testing::TestWithParam<extract::ObjectType> {};

TEST_P(RetrievalEquivalenceTest, IndexedMatchesSweptOnGoldCorpora) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    RunDifferential(GetParam(), seed, MatcherConfig{});
  }
}

TEST_P(RetrievalEquivalenceTest, StrictOnlyConfigUsesWandExit) {
  // With stage 3 off, retrieval runs the WAND early-termination walk;
  // the slack accounting must keep it exact.
  MatcherConfig config;
  config.enable_stage3 = false;
  RunDifferential(GetParam(), 104, config);
}

TEST_P(RetrievalEquivalenceTest, AblationsStayEquivalent) {
  {
    MatcherConfig config;  // no positional stage
    config.enable_stage1 = false;
    RunDifferential(GetParam(), 105, config);
  }
  {
    MatcherConfig config;  // uniform weights
    config.use_idf_weighting = false;
    RunDifferential(GetParam(), 106, config);
  }
  {
    MatcherConfig config;  // minimal rear-view window
    config.rear_view_window = 1;
    RunDifferential(GetParam(), 107, config);
  }
  {
    MatcherConfig config;  // theta <= 0 falls back to the sweep
    config.theta3 = 0.0;
    RunDifferential(GetParam(), 108, config);
  }
}

TEST_P(RetrievalEquivalenceTest, ShapePrefilterAgreesAcrossAllEngines) {
  // The shape pre-filter is approximate, but it must be the SAME
  // approximation on the swept, indexed, and legacy paths.
  MatcherConfig config;
  config.enable_shape_prefilter = true;
  RunDifferential(GetParam(), 109, config);

  wikigen::GoldCorpus corpus = SmallCorpus(GetParam(), 110);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    auto slices = eval::SliceType(objects, GetParam());
    MatcherConfig legacy = config;
    legacy.use_flat_kernels = false;
    EXPECT_EQ(RunEngine(slices, GetParam(), config).graph,
              RunEngine(slices, GetParam(), legacy).graph);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, RetrievalEquivalenceTest,
                         ::testing::Values(extract::ObjectType::kTable,
                                           extract::ObjectType::kInfobox,
                                           extract::ObjectType::kList));

TEST(RetrievalSnapshotTest, RestoredIndexValidatesAndContinuesIdentically) {
  wikigen::GoldCorpus corpus = SmallCorpus(extract::ObjectType::kTable, 111);
  xmldump::Dump dump = wikigen::CorpusToDump(corpus);
  for (const xmldump::PageHistory& page : dump.pages) {
    std::vector<extract::PageObjects> objects =
        eval::ExtractRevisionObjects(page);
    if (objects.size() < 4) continue;
    const size_t split = objects.size() / 2;

    // Uninterrupted run.
    state::PageState full;
    for (size_t r = 0; r < objects.size(); ++r) {
      full.matcher.ProcessRevision(static_cast<int>(r), objects[r]);
    }

    // Run to the split, snapshot, restore, continue.
    state::PageState first;
    first.title = "retrieval snapshot fixture";
    for (size_t r = 0; r < split; ++r) {
      first.matcher.ProcessRevision(static_cast<int>(r), objects[r]);
      first.revisions.push_back(objects[r]);
      first.timestamps.push_back(static_cast<UnixSeconds>(r));
      ++first.revisions_ingested;
    }
    std::ostringstream out;
    ASSERT_TRUE(state::SavePageSnapshot(first, out).ok());
    std::istringstream in(out.str());
    state::PageState resumed;
    ASSERT_TRUE(
        state::LoadPageSnapshot(in, matching::MatcherConfig{}, &resumed)
            .ok());

    // The rebuilt index must agree with the restored windows.
    ValidationReport report;
    resumed.matcher.Validate(&report);
    EXPECT_TRUE(report.ok()) << report.ToString();

    for (size_t r = split; r < objects.size(); ++r) {
      resumed.matcher.ProcessRevision(static_cast<int>(r), objects[r]);
    }
    for (extract::ObjectType type :
         {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
          extract::ObjectType::kList}) {
      EXPECT_EQ(SerializeIdentityGraph(resumed.matcher.GraphFor(type)),
                SerializeIdentityGraph(full.matcher.GraphFor(type)));
    }
  }
}

}  // namespace
}  // namespace somr::matching
