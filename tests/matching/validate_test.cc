// Tests for the matching invariant validators (src/matching/validate.h):
// valid graphs/assignments/configs pass, and each seeded in-memory
// corruption is caught with a named finding.

#include "matching/validate.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "extract/object.h"
#include "matching/identity_graph.h"
#include "matching/matcher.h"

namespace somr::matching {
namespace {

using extract::ObjectInstance;
using extract::ObjectType;
using extract::PageObjects;

ObjectInstance Table(int position, const std::string& cell) {
  ObjectInstance instance;
  instance.type = ObjectType::kTable;
  instance.position = position;
  instance.rows = {{cell}};
  return instance;
}

bool HasIssueContaining(const ValidationReport& report,
                        const std::string& needle) {
  for (const ValidationIssue& issue : report.issues()) {
    if (issue.detail.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ValidateIdentityGraphTest, ValidGraphPasses) {
  IdentityGraph graph(ObjectType::kTable);
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  graph.AppendVersion(a, {3, 1});  // gap (deleted in rev 2) is legal
  int64_t b = graph.AddObject({1, 1});
  graph.AppendVersion(b, {2, 0});
  ValidationReport report;
  ValidateIdentityGraph(graph, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateIdentityGraphTest, CatchesNonMonotoneRevisions) {
  IdentityGraph graph(ObjectType::kTable);
  int64_t a = graph.AddObject({2, 0});
  graph.AppendVersion(a, {1, 0});  // corrupt: goes backwards in time
  ValidationReport report;
  ValidateIdentityGraph(graph, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasIssueContaining(report, "strictly increasing"))
      << report.ToString();
}

TEST(ValidateIdentityGraphTest, CatchesDoublyClaimedInstance) {
  IdentityGraph graph(ObjectType::kTable);
  graph.AddObject({0, 0});
  graph.AddObject({0, 0});  // corrupt: two chains own (rev 0, pos 0)
  ValidationReport report;
  ValidateIdentityGraph(graph, &report);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateIdentityGraphTest, SharedKeyIsToleratedWithoutUniquePositions) {
  // When the input history carried duplicate position ranks (a tolerated
  // caller bug), two distinct instances can share a (revision, position)
  // key, so the claim-uniqueness check must stand down.
  IdentityGraph graph(ObjectType::kTable);
  graph.AddObject({0, 5});
  graph.AddObject({0, 5});
  ValidationReport report;
  ValidateIdentityGraph(graph, &report, /*positions_unique=*/false);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateIdentityGraphTest, CatchesNegativePosition) {
  IdentityGraph graph(ObjectType::kTable);
  graph.AddObject({0, -1});
  ValidationReport report;
  ValidateIdentityGraph(graph, &report);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateAssignmentTest, OneToOnePasses) {
  ValidationReport report;
  ValidateAssignment({2, -1, 0}, 3, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidateAssignmentTest, CatchesDuplicateObject) {
  ValidationReport report;
  ValidateAssignment({1, 1}, 3, &report);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateAssignmentTest, CatchesOutOfRangeObject) {
  ValidationReport report;
  ValidateAssignment({5}, 3, &report);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateGraphAgainstHistoryTest, CoverageAndRangeChecks) {
  std::vector<PageObjects> revisions(2);
  revisions[0].tables = {Table(0, "a")};
  revisions[1].tables = {Table(0, "a"), Table(1, "b")};

  IdentityGraph graph(ObjectType::kTable);
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  graph.AddObject({1, 1});
  {
    ValidationReport report;
    ValidateGraphAgainstHistory(graph, revisions, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }

  // Corrupt: a ref past the revision's instance count.
  IdentityGraph bad(ObjectType::kTable);
  bad.AddObject({0, 3});
  {
    ValidationReport report;
    ValidateGraphAgainstHistory(bad, revisions, &report);
    EXPECT_FALSE(report.ok());
  }

  // Corrupt: an orphan — revision 1's second table is in no chain.
  IdentityGraph orphan(ObjectType::kTable);
  int64_t o = orphan.AddObject({0, 0});
  orphan.AppendVersion(o, {1, 0});
  {
    ValidationReport report;
    ValidateGraphAgainstHistory(orphan, revisions, &report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(HasIssueContaining(report, "orphan")) << report.ToString();
  }
}

TEST(ValidateMatcherConfigTest, DefaultsPassAndBadOrderingIsCaught) {
  {
    ValidationReport report;
    ValidateMatcherConfig(MatcherConfig{}, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  MatcherConfig config;
  config.theta1 = 0.3;
  config.theta2 = 0.9;  // corrupt: stage 2 stricter than stage 1
  {
    ValidationReport report;
    ValidateMatcherConfig(config, &report);
    EXPECT_FALSE(report.ok());
  }
  MatcherConfig window;
  window.rear_view_window = 0;  // corrupt: no rear-view at all
  {
    ValidationReport report;
    ValidateMatcherConfig(window, &report);
    EXPECT_FALSE(report.ok());
  }
}

TEST(MatcherValidateTest, LiveMatcherStatePasses) {
  TemporalMatcher matcher(ObjectType::kTable, MatcherConfig{});
  std::vector<ObjectInstance> rev0 = {Table(0, "alpha"), Table(1, "beta")};
  std::vector<ObjectInstance> rev1 = {Table(0, "alpha"), Table(1, "beta")};
  matcher.ProcessRevision(0, rev0);
  matcher.ProcessRevision(1, rev1);
  ValidationReport report;
  matcher.Validate(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(matcher.graph().ObjectCount(), 2u);
}

TEST(PageMatcherValidateTest, AllTypesPass) {
  PageMatcher matcher{MatcherConfig{}};
  PageObjects rev;
  rev.tables = {Table(0, "x")};
  matcher.ProcessRevision(0, rev);
  ValidationReport report;
  matcher.Validate(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace somr::matching
