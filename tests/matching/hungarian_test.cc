#include "matching/hungarian.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

namespace somr::matching {
namespace {

double MatchingWeight(const std::vector<std::pair<int, int>>& matching,
                      const std::vector<WeightedEdge>& edges) {
  std::map<std::pair<int, int>, double> weights;
  for (const WeightedEdge& e : edges) {
    auto key = std::make_pair(e.left, e.right);
    auto it = weights.find(key);
    if (it == weights.end() || it->second < e.weight) {
      weights[key] = e.weight;
    }
  }
  double total = 0.0;
  for (const auto& pair : matching) {
    auto it = weights.find(pair);
    EXPECT_NE(it, weights.end()) << "matched a non-edge";
    if (it != weights.end()) total += it->second;
  }
  return total;
}

/// Brute-force optimal matching weight for small instances.
double BruteForceBest(size_t num_left, size_t num_right,
                      const std::vector<WeightedEdge>& edges,
                      std::set<int>& used_right, size_t left) {
  if (left == num_left) return 0.0;
  double best =
      BruteForceBest(num_left, num_right, edges, used_right, left + 1);
  for (const WeightedEdge& e : edges) {
    if (static_cast<size_t>(e.left) != left) continue;
    if (used_right.count(e.right) > 0) continue;
    used_right.insert(e.right);
    best = std::max(best, e.weight + BruteForceBest(num_left, num_right,
                                                    edges, used_right,
                                                    left + 1));
    used_right.erase(e.right);
  }
  return best;
}

TEST(HungarianTest, EmptyInputs) {
  EXPECT_TRUE(MaxWeightMatching(0, 5, {}).empty());
  EXPECT_TRUE(MaxWeightMatching(5, 0, {}).empty());
  EXPECT_TRUE(MaxWeightMatching(3, 3, {}).empty());
}

TEST(HungarianTest, SingleEdge) {
  auto m = MaxWeightMatching(1, 1, {{0, 0, 0.9}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], std::make_pair(0, 0));
}

TEST(HungarianTest, PrefersHeavierEdge) {
  // One left node, two right options.
  auto m = MaxWeightMatching(1, 2, {{0, 0, 0.5}, {0, 1, 0.9}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], std::make_pair(0, 1));
}

TEST(HungarianTest, CrossAssignmentWhenBetter) {
  // Greedy would pick (0,0)=0.9 then (1,1)=0.1 (total 1.0);
  // optimal is (0,1)=0.8 + (1,0)=0.8 (total 1.6).
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.9}, {0, 1, 0.8}, {1, 0, 0.8}, {1, 1, 0.1}};
  auto m = MaxWeightMatching(2, 2, edges);
  EXPECT_NEAR(MatchingWeight(m, edges), 1.6, 1e-9);
}

TEST(HungarianTest, LeavesNodesUnmatchedWhenNoEdge) {
  std::vector<WeightedEdge> edges = {{0, 0, 0.7}};
  auto m = MaxWeightMatching(3, 2, edges);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], std::make_pair(0, 0));
}

TEST(HungarianTest, RectangularMoreLeft) {
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.6}, {1, 0, 0.9}, {2, 0, 0.3}};
  auto m = MaxWeightMatching(3, 1, edges);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], std::make_pair(1, 0));
}

TEST(HungarianTest, RectangularMoreRight) {
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.6}, {0, 1, 0.9}, {0, 2, 0.3}};
  auto m = MaxWeightMatching(1, 3, edges);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], std::make_pair(0, 1));
}

TEST(HungarianTest, DuplicateEdgesKeepBest) {
  std::vector<WeightedEdge> edges = {{0, 0, 0.2}, {0, 0, 0.8}};
  auto m = MaxWeightMatching(1, 1, edges);
  ASSERT_EQ(m.size(), 1u);
}

TEST(HungarianTest, MaxWeightBeatsMaxCardinalityWhenHeavier) {
  // A single heavy edge (0,0)=1.0 vs two light edges (0,1)+(1,0)=0.2.
  std::vector<WeightedEdge> edges = {
      {0, 0, 1.0}, {0, 1, 0.1}, {1, 0, 0.1}};
  auto m = MaxWeightMatching(2, 2, edges);
  EXPECT_NEAR(MatchingWeight(m, edges), 1.0, 1e-9);
}

class HungarianRandomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HungarianRandomProperty, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  size_t num_left = 1 + rng.Index(5);
  size_t num_right = 1 + rng.Index(5);
  std::vector<WeightedEdge> edges;
  for (size_t l = 0; l < num_left; ++l) {
    for (size_t r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(0.6)) {
        edges.push_back({static_cast<int>(l), static_cast<int>(r),
                         0.05 + 0.95 * rng.UniformDouble()});
      }
    }
  }
  auto m = MaxWeightMatching(num_left, num_right, edges);

  // Validity: each node used at most once.
  std::set<int> lefts, rights;
  for (auto [l, r] : m) {
    EXPECT_TRUE(lefts.insert(l).second);
    EXPECT_TRUE(rights.insert(r).second);
  }

  std::set<int> used;
  double best = BruteForceBest(num_left, num_right, edges, used, 0);
  EXPECT_NEAR(MatchingWeight(m, edges), best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomProperty,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace somr::matching
