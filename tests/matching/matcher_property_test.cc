// Property tests of the matcher's structural invariants, driven by the
// page-evolution generator over many seeds:
//  - the identity graph partitions the instances (each exactly once),
//  - chains are strictly chronological,
//  - the matcher is deterministic,
//  - the matcher is online: processing a prefix of the revisions yields
//    exactly the prefix of the full run's graph.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "extract/wikitext_extractor.h"
#include "matching/matcher.h"
#include "wikigen/evolver.h"

namespace somr::matching {
namespace {

std::vector<std::vector<extract::ObjectInstance>> GenerateInstances(
    uint64_t seed, int revisions) {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 6;
  config.num_revisions = revisions;
  config.theme = seed % 2 == 0 ? wikigen::PageTheme::kAwards
                               : wikigen::PageTheme::kGeneric;
  config.seed = seed;
  wikigen::GeneratedPage page = wikigen::PageEvolver(config).Generate();
  std::vector<std::vector<extract::ObjectInstance>> instances;
  for (const auto& rev : page.revisions) {
    instances.push_back(
        extract::ExtractFromWikitextSource(rev.wikitext).tables);
  }
  return instances;
}

IdentityGraph RunMatcherOver(const std::vector<std::vector<extract::ObjectInstance>>&
                      instances,
                  const MatcherConfig& config = {}) {
  TemporalMatcher matcher(extract::ObjectType::kTable, config);
  for (size_t r = 0; r < instances.size(); ++r) {
    matcher.ProcessRevision(static_cast<int>(r), instances[r]);
  }
  return matcher.graph();
}

class MatcherInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherInvariants, GraphPartitionsInstances) {
  auto instances = GenerateInstances(GetParam(), 40);
  IdentityGraph graph = RunMatcherOver(instances);

  std::set<VersionRef> seen;
  for (const auto& object : graph.objects()) {
    for (const VersionRef& ref : object.versions) {
      EXPECT_TRUE(seen.insert(ref).second)
          << "instance assigned to two objects";
      // The reference must point at a real instance.
      ASSERT_LT(static_cast<size_t>(ref.revision), instances.size());
      ASSERT_LT(static_cast<size_t>(ref.position),
                instances[static_cast<size_t>(ref.revision)].size());
    }
  }
  size_t total = 0;
  for (const auto& revision : instances) total += revision.size();
  EXPECT_EQ(seen.size(), total) << "instance missing from the graph";
}

TEST_P(MatcherInvariants, ChainsAreStrictlyChronological) {
  auto instances = GenerateInstances(GetParam(), 40);
  IdentityGraph graph = RunMatcherOver(instances);
  for (const auto& object : graph.objects()) {
    for (size_t v = 1; v < object.versions.size(); ++v) {
      EXPECT_LT(object.versions[v - 1].revision,
                object.versions[v].revision);
    }
    // At most one instance of an object per revision is implied by
    // strict monotonicity.
  }
}

TEST_P(MatcherInvariants, Deterministic) {
  auto instances = GenerateInstances(GetParam(), 30);
  IdentityGraph a = RunMatcherOver(instances);
  IdentityGraph b = RunMatcherOver(instances);
  EXPECT_EQ(a.EdgeSet(), b.EdgeSet());
}

TEST_P(MatcherInvariants, OnlinePrefixConsistency) {
  auto instances = GenerateInstances(GetParam(), 40);
  IdentityGraph full = RunMatcherOver(instances);
  size_t prefix_length = instances.size() / 2;
  std::vector<std::vector<extract::ObjectInstance>> prefix(
      instances.begin(),
      instances.begin() + static_cast<long>(prefix_length));
  IdentityGraph partial = RunMatcherOver(prefix);

  // The full run's edges within the prefix must equal the prefix run's
  // edges: the matcher never revises past decisions.
  std::set<IdentityEdge> full_prefix_edges;
  for (const IdentityEdge& e : full.Edges()) {
    if (static_cast<size_t>(e.second.revision) < prefix_length) {
      full_prefix_edges.insert(e);
    }
  }
  EXPECT_EQ(full_prefix_edges, partial.EdgeSet());
}

TEST_P(MatcherInvariants, InvariantsHoldWithoutSpatialFeatures) {
  auto instances = GenerateInstances(GetParam(), 25);
  MatcherConfig config;
  config.use_spatial_features = false;
  IdentityGraph graph = RunMatcherOver(instances, config);
  size_t total = 0;
  for (const auto& revision : instances) total += revision.size();
  EXPECT_EQ(graph.VersionCount(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherInvariants,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace somr::matching
