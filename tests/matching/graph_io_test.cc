#include "matching/graph_io.h"

#include <gtest/gtest.h>

namespace somr::matching {
namespace {

IdentityGraph SampleGraph() {
  IdentityGraph graph(extract::ObjectType::kList);
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  graph.AppendVersion(a, {4, 2});
  graph.AddObject({2, 1});
  return graph;
}

TEST(GraphIoTest, RoundTrip) {
  IdentityGraph original = SampleGraph();
  std::string text = SerializeIdentityGraph(original);
  auto parsed = ParseIdentityGraph(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), extract::ObjectType::kList);
  EXPECT_EQ(parsed->ObjectCount(), original.ObjectCount());
  EXPECT_EQ(parsed->EdgeSet(), original.EdgeSet());
  ASSERT_EQ(parsed->objects()[0].versions, original.objects()[0].versions);
}

TEST(GraphIoTest, FormatIsHumanReadable) {
  std::string text = SerializeIdentityGraph(SampleGraph());
  EXPECT_EQ(text.rfind("# somr-identity-graph v1 type=list", 0), 0u);
  EXPECT_NE(text.find("object 0\n0 0\n1 0\n4 2\n"), std::string::npos);
}

TEST(GraphIoTest, EmptyGraph) {
  IdentityGraph empty(extract::ObjectType::kTable);
  auto parsed = ParseIdentityGraph(SerializeIdentityGraph(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ObjectCount(), 0u);
  EXPECT_EQ(parsed->type(), extract::ObjectType::kTable);
}

TEST(GraphIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseIdentityGraph("").ok());
  EXPECT_FALSE(ParseIdentityGraph("not a graph").ok());
  EXPECT_FALSE(ParseIdentityGraph("# somr-identity-graph v1 type=blob")
                   .ok());
  // Version line before any object.
  EXPECT_FALSE(
      ParseIdentityGraph("# somr-identity-graph v1 type=table\n3 4\n")
          .ok());
  // Malformed version line.
  EXPECT_FALSE(ParseIdentityGraph(
                   "# somr-identity-graph v1 type=table\nobject 0\nx y\n")
                   .ok());
}

TEST(GraphIoTest, RoundTripEveryObjectType) {
  for (extract::ObjectType type :
       {extract::ObjectType::kTable, extract::ObjectType::kInfobox,
        extract::ObjectType::kList}) {
    IdentityGraph graph(type);
    int64_t a = graph.AddObject({0, 0});
    graph.AppendVersion(a, {1, 1});
    int64_t b = graph.AddObject({1, 0});
    graph.AppendVersion(b, {2, 0});
    graph.AppendVersion(b, {3, 0});
    auto parsed = ParseIdentityGraph(SerializeIdentityGraph(graph));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->type(), type);
    EXPECT_EQ(parsed->EdgeSet(), graph.EdgeSet());
  }
}

TEST(GraphIoTest, SerializationIsAFixedPoint) {
  // serialize(parse(serialize(g))) == serialize(g): the format drops
  // nothing the serializer knows how to write.
  std::string once = SerializeIdentityGraph(SampleGraph());
  auto parsed = ParseIdentityGraph(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(SerializeIdentityGraph(*parsed), once);
}

TEST(GraphIoTest, RoundTripLargeGraph) {
  IdentityGraph graph(extract::ObjectType::kTable);
  for (int o = 0; o < 40; ++o) {
    int64_t id = graph.AddObject({o % 7, o % 3});
    for (int v = 1; v <= o % 5; ++v) {
      graph.AppendVersion(id, {o % 7 + v, (o + v) % 4});
    }
  }
  auto parsed = ParseIdentityGraph(SerializeIdentityGraph(graph));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ObjectCount(), graph.ObjectCount());
  EXPECT_EQ(parsed->VersionCount(), graph.VersionCount());
  EXPECT_EQ(parsed->EdgeSet(), graph.EdgeSet());
  for (size_t o = 0; o < graph.objects().size(); ++o) {
    EXPECT_EQ(parsed->objects()[o].versions, graph.objects()[o].versions);
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseIdentityGraph(
      "# somr-identity-graph v1 type=table\n\n# note\nobject 0\n0 0\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->VersionCount(), 1u);
}

}  // namespace
}  // namespace somr::matching
