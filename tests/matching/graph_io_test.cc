#include "matching/graph_io.h"

#include <gtest/gtest.h>

namespace somr::matching {
namespace {

IdentityGraph SampleGraph() {
  IdentityGraph graph(extract::ObjectType::kList);
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  graph.AppendVersion(a, {4, 2});
  graph.AddObject({2, 1});
  return graph;
}

TEST(GraphIoTest, RoundTrip) {
  IdentityGraph original = SampleGraph();
  std::string text = SerializeIdentityGraph(original);
  auto parsed = ParseIdentityGraph(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), extract::ObjectType::kList);
  EXPECT_EQ(parsed->ObjectCount(), original.ObjectCount());
  EXPECT_EQ(parsed->EdgeSet(), original.EdgeSet());
  ASSERT_EQ(parsed->objects()[0].versions, original.objects()[0].versions);
}

TEST(GraphIoTest, FormatIsHumanReadable) {
  std::string text = SerializeIdentityGraph(SampleGraph());
  EXPECT_EQ(text.rfind("# somr-identity-graph v1 type=list", 0), 0u);
  EXPECT_NE(text.find("object 0\n0 0\n1 0\n4 2\n"), std::string::npos);
}

TEST(GraphIoTest, EmptyGraph) {
  IdentityGraph empty(extract::ObjectType::kTable);
  auto parsed = ParseIdentityGraph(SerializeIdentityGraph(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ObjectCount(), 0u);
  EXPECT_EQ(parsed->type(), extract::ObjectType::kTable);
}

TEST(GraphIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseIdentityGraph("").ok());
  EXPECT_FALSE(ParseIdentityGraph("not a graph").ok());
  EXPECT_FALSE(ParseIdentityGraph("# somr-identity-graph v1 type=blob")
                   .ok());
  // Version line before any object.
  EXPECT_FALSE(
      ParseIdentityGraph("# somr-identity-graph v1 type=table\n3 4\n")
          .ok());
  // Malformed version line.
  EXPECT_FALSE(ParseIdentityGraph(
                   "# somr-identity-graph v1 type=table\nobject 0\nx y\n")
                   .ok());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseIdentityGraph(
      "# somr-identity-graph v1 type=table\n\n# note\nobject 0\n0 0\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->VersionCount(), 1u);
}

}  // namespace
}  // namespace somr::matching
