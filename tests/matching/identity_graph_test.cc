#include "matching/identity_graph.h"

#include <gtest/gtest.h>

namespace somr::matching {
namespace {

TEST(IdentityGraphTest, AddAndAppend) {
  IdentityGraph graph(extract::ObjectType::kList);
  int64_t id = graph.AddObject({0, 0});
  graph.AppendVersion(id, {1, 0});
  graph.AppendVersion(id, {2, 1});
  EXPECT_EQ(graph.ObjectCount(), 1u);
  EXPECT_EQ(graph.VersionCount(), 3u);
  EXPECT_EQ(graph.type(), extract::ObjectType::kList);
}

TEST(IdentityGraphTest, SequentialIds) {
  IdentityGraph graph;
  EXPECT_EQ(graph.AddObject({0, 0}), 0);
  EXPECT_EQ(graph.AddObject({0, 1}), 1);
  EXPECT_EQ(graph.AddObject({1, 2}), 2);
}

TEST(IdentityGraphTest, EdgesAreConsecutiveVersionPairs) {
  IdentityGraph graph;
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  graph.AppendVersion(a, {3, 2});  // gap: deleted at 2, restored at 3
  int64_t b = graph.AddObject({1, 1});
  (void)b;
  auto edges = graph.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].first, (VersionRef{0, 0}));
  EXPECT_EQ(edges[0].second, (VersionRef{1, 0}));
  EXPECT_EQ(edges[1].first, (VersionRef{1, 0}));
  EXPECT_EQ(edges[1].second, (VersionRef{3, 2}));
}

TEST(IdentityGraphTest, EdgeSetLookup) {
  IdentityGraph graph;
  int64_t a = graph.AddObject({0, 0});
  graph.AppendVersion(a, {1, 0});
  auto set = graph.EdgeSet();
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count({{0, 0}, {1, 0}}) > 0);
  EXPECT_FALSE(set.count({{0, 0}, {1, 1}}) > 0);
}

TEST(IdentityGraphTest, SingletonObjectHasNoEdges) {
  IdentityGraph graph;
  graph.AddObject({5, 3});
  EXPECT_TRUE(graph.Edges().empty());
}

TEST(IdentityGraphTest, ObjectIdOf) {
  IdentityGraph graph;
  int64_t a = graph.AddObject({0, 0});
  int64_t b = graph.AddObject({0, 1});
  graph.AppendVersion(b, {1, 0});
  EXPECT_EQ(graph.ObjectIdOf({0, 0}), a);
  EXPECT_EQ(graph.ObjectIdOf({1, 0}), b);
  EXPECT_EQ(graph.ObjectIdOf({9, 9}), -1);
}

TEST(VersionRefTest, Ordering) {
  EXPECT_LT((VersionRef{0, 5}), (VersionRef{1, 0}));
  EXPECT_LT((VersionRef{1, 0}), (VersionRef{1, 1}));
  EXPECT_EQ((VersionRef{2, 3}), (VersionRef{2, 3}));
}

}  // namespace
}  // namespace somr::matching
