#include "serve/context_cache.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "state/context_store.h"

namespace somr::serve {
namespace {

class ContextCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-cache-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    store_ = std::make_unique<state::ContextStore>(dir_);
    ASSERT_TRUE(store_->Open(/*create=*/true).ok());
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  std::string dir_;
  std::unique_ptr<state::ContextStore> store_;
};

TEST_F(ContextCacheTest, CreatesFreshContextOnDemand) {
  ContextCache cache(store_.get(), 4);
  StatusOr<state::PageState*> state = cache.GetOrLoad("A", /*create=*/true);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->title, "A");
  EXPECT_EQ(cache.resident(), 1u);
  EXPECT_EQ(cache.stats().created, 1u);
}

TEST_F(ContextCacheTest, MissWithoutCreateIsNotFound) {
  ContextCache cache(store_.get(), 4);
  StatusOr<state::PageState*> state =
      cache.GetOrLoad("nope", /*create=*/false);
  EXPECT_EQ(state.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.resident(), 0u);
}

TEST_F(ContextCacheTest, SecondLookupIsAHit) {
  ContextCache cache(store_.get(), 4);
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().created, 1u);
}

TEST_F(ContextCacheTest, EvictionSpillsDirtyStateAndFaultsItBack) {
  ContextCache cache(store_.get(), 1);
  StatusOr<state::PageState*> a = cache.GetOrLoad("A", true);
  ASSERT_TRUE(a.ok());
  (*a)->last_revision_id = 42;
  (*a)->revisions_ingested = 0;
  cache.MarkDirty("A");

  // Loading B evicts A (capacity 1); A is dirty so it must spill.
  ASSERT_TRUE(cache.GetOrLoad("B", true).ok());
  EXPECT_EQ(cache.resident(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().spills, 1u);
  ASSERT_TRUE(store_->Lookup("A").has_value());

  // Touching A again faults the snapshot back with the mutation intact.
  StatusOr<state::PageState*> again = cache.GetOrLoad("A", false);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->last_revision_id, 42);
  EXPECT_EQ(cache.stats().faults, 1u);
}

TEST_F(ContextCacheTest, FreshContextSurvivesEvictionWithoutMark) {
  ContextCache cache(store_.get(), 1);
  // Never marked dirty, but never snapshotted either: eviction must
  // still write it, or the context would vanish.
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  ASSERT_TRUE(cache.GetOrLoad("B", true).ok());
  EXPECT_TRUE(store_->Lookup("A").has_value());
  EXPECT_TRUE(cache.GetOrLoad("A", false).ok());
}

TEST_F(ContextCacheTest, LruOrderGovernsEviction) {
  ContextCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  ASSERT_TRUE(cache.GetOrLoad("B", true).ok());
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());  // A is now MRU
  ASSERT_TRUE(cache.GetOrLoad("C", true).ok());  // evicts B, not A
  EXPECT_TRUE(store_->Lookup("B").has_value());
  EXPECT_FALSE(store_->Lookup("A").has_value());  // still resident, unsaved
  EXPECT_EQ(cache.resident(), 2u);
}

TEST_F(ContextCacheTest, CheckpointAllSavesDirtyAndClearsFlag) {
  ContextCache cache(store_.get(), 4);
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  ASSERT_TRUE(cache.GetOrLoad("B", true).ok());
  cache.MarkDirty("A");
  cache.MarkDirty("B");
  ASSERT_TRUE(cache.CheckpointAll().ok());
  EXPECT_TRUE(store_->Lookup("A").has_value());
  EXPECT_TRUE(store_->Lookup("B").has_value());
  const uint64_t version_a = store_->Lookup("A")->version;
  // Clean entries are not rewritten by a second checkpoint.
  ASSERT_TRUE(cache.CheckpointAll().ok());
  EXPECT_EQ(store_->Lookup("A")->version, version_a);
}

// The somr_serve_contexts_dirty gauge source: dirty() must track the
// at-risk entry count exactly through a forced capacity-1 create /
// evict-spill / checkpoint / fault cycle.
TEST_F(ContextCacheTest, DirtyCountTracksEvictFaultCheckpointCycle) {
  ContextCache cache(store_.get(), 1);
  EXPECT_EQ(cache.dirty(), 0u);

  // A fresh context is born dirty (no snapshot exists yet); re-marking
  // it must not double count.
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  EXPECT_EQ(cache.dirty(), 1u);
  cache.MarkDirty("A");
  EXPECT_EQ(cache.dirty(), 1u);

  // Loading B evicts A: the spill writes A's snapshot, so only B (fresh,
  // dirty) remains at risk.
  ASSERT_TRUE(cache.GetOrLoad("B", true).ok());
  EXPECT_EQ(cache.stats().spills, 1u);
  EXPECT_EQ(cache.dirty(), 1u);

  // Checkpointing cleans B in place.
  ASSERT_TRUE(cache.CheckpointAll().ok());
  EXPECT_EQ(cache.dirty(), 0u);
  EXPECT_EQ(cache.resident(), 1u);

  // Faulting A back in loads a snapshot: clean on arrival, and evicting
  // the clean B costs no spill.
  ASSERT_TRUE(cache.GetOrLoad("A", false).ok());
  EXPECT_EQ(cache.stats().faults, 1u);
  EXPECT_EQ(cache.stats().spills, 1u);
  EXPECT_EQ(cache.dirty(), 0u);

  // A mutation re-dirties it.
  cache.MarkDirty("A");
  EXPECT_EQ(cache.dirty(), 1u);
}

TEST_F(ContextCacheTest, CapacityClampsToOne) {
  ContextCache cache(store_.get(), 0);
  EXPECT_EQ(cache.capacity(), 1u);
  ASSERT_TRUE(cache.GetOrLoad("A", true).ok());
  EXPECT_EQ(cache.resident(), 1u);
}

}  // namespace
}  // namespace somr::serve
