#include "serve/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "matching/graph_io.h"
#include "serve/client.h"
#include "serve/http.h"
#include "state/context_store.h"
#include "wikigen/corpus.h"
#include "xmldump/dump.h"

namespace somr::serve {
namespace {

constexpr extract::ObjectType kAllTypes[] = {
    extract::ObjectType::kTable, extract::ObjectType::kInfobox,
    extract::ObjectType::kList};

// Small but non-trivial corpus: several pages, enough revisions that
// splitting each history in half is meaningful.
xmldump::Dump TestDump() {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.strata_caps = {3};
  config.pages_per_stratum = 3;
  config.min_revisions = 10;
  config.max_revisions = 16;
  config.seed = 11;
  return wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config));
}

std::string PageXml(const xmldump::PageHistory& page) {
  xmldump::Dump one;
  one.pages.push_back(page);
  return xmldump::WriteDump(one);
}

// The server's /graph body for comparison against batch results.
std::string BatchGraphs(const core::PageResult& result) {
  std::string out;
  for (extract::ObjectType type : kAllTypes) {
    out += matching::SerializeIdentityGraph(result.GraphFor(type));
  }
  return out;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-serve-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    StopServer();
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  // Opens (or reopens) the fixture-owned store. The fixture owns it so
  // it outlives the server: shard threads checkpoint into the store
  // during shutdown, which happens in TearDown — after any stack local
  // in the test body would already be gone.
  void OpenStore(bool create) {
    StopServer();  // never leave a server pointing at a dying store
    store_ = std::make_unique<state::ContextStore>(dir_);
    ASSERT_TRUE(store_->Open(create).ok());
  }

  // Starts a server over the fixture store and a client connected to it.
  void StartServer(size_t cache_capacity) {
    ServeOptions options;
    options.shards = 2;
    options.cache_capacity = cache_capacity;
    options.connection_workers = 2;
    options.socket_timeout_millis = 50;
    server_ = std::make_unique<Server>(store_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }

  void StopServer() {
    client_.Close();
    if (server_ != nullptr) server_->Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    if (server_ != nullptr) {
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
    server_.reset();
  }

  ClientResponse Post(const std::string& target, const std::string& body,
                      bool chunked = false) {
    StatusOr<ClientResponse> response =
        client_.Request("POST", target, body, chunked);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : ClientResponse{};
  }

  ClientResponse Get(const std::string& target) {
    StatusOr<ClientResponse> response = client_.Request("GET", target);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : ClientResponse{};
  }

  std::string dir_;
  std::unique_ptr<state::ContextStore> store_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  Status serve_status_;
  HttpClient client_;
};

TEST_F(ServerTest, HealthzAndMetricsAnswer) {
  OpenStore(/*create=*/true);
  StartServer(8);

  ClientResponse health = Get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  ClientResponse metrics = Get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("somr_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
}

TEST_F(ServerTest, UnknownRoutesAndMethodsAreCleanErrors) {
  OpenStore(/*create=*/true);
  StartServer(8);

  EXPECT_EQ(Get("/nope").status, 404);
  EXPECT_EQ(Post("/healthz", "").status, 405);
  EXPECT_EQ(Get("/context/missing/graph").status, 404);
  EXPECT_EQ(Get("/context/missing/history/table:0").status, 404);
  EXPECT_EQ(Get("/context/missing/history/table").status, 400);
  EXPECT_EQ(Get("/context/missing/history/widget:0").status, 400);
  // All digits but past int64: must answer 400, not throw out of stoll
  // and take the daemon down.
  EXPECT_EQ(
      Get("/context/missing/history/table:99999999999999999999999").status,
      400);
  ClientResponse bad = Post("/context/x/revision", "not xml at all");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("error"), std::string::npos);
}

TEST_F(ServerTest, MalformedHttpGets400NotAbort) {
  OpenStore(/*create=*/true);
  StartServer(8);

  // Raw malformed requests over a bare socket; the server must answer
  // 400 (not crash, not hang) and keep serving healthy connections.
  for (const char* wire :
       {"GARBAGE\r\n\r\n",
        "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
        "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"}) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_GT(::send(fd, wire, std::strlen(wire), MSG_NOSIGNAL), 0);
    char buf[512];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    ASSERT_GT(n, 0) << "no response for: " << wire;
    buf[n] = '\0';
    EXPECT_NE(std::string(buf).find("400 Bad Request"), std::string::npos)
        << "request: " << wire << " response: " << buf;
    ::close(fd);
  }

  // The healthy client still works afterwards.
  EXPECT_EQ(Get("/healthz").status, 200);
}

// The tentpole acceptance gate: ingestion through the HTTP daemon —
// including forced LRU evictions mid-context (cache_capacity=1 with 3+
// pages interleaved), an /admin/checkpoint, and a full server restart —
// must produce identity graphs byte-identical to the batch pipeline.
TEST_F(ServerTest, ServeIngestMatchesBatchByteForByte) {
  xmldump::Dump dump = TestDump();
  ASSERT_GE(dump.pages.size(), 3u);

  // Batch reference.
  core::Pipeline pipeline;
  StatusOr<std::vector<core::PageResult>> batch =
      pipeline.ProcessDumpXml(xmldump::WriteDump(dump));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  OpenStore(/*create=*/true);
  // capacity 1 per shard: every interleaved POST below evicts the
  // previous context, spilling and faulting constantly.
  StartServer(1);

  // Phase 1: first half of every page, interleaved.
  for (const xmldump::PageHistory& page : dump.pages) {
    xmldump::PageHistory half = page;
    half.revisions.resize(half.revisions.size() / 2);
    ClientResponse response =
        Post("/context/" + PercentEncode(page.title) + "/revision",
             PageXml(half), /*chunked=*/true);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"page_skipped\": false"),
              std::string::npos);
    EXPECT_NE(response.body.find("\"decisions\": ["), std::string::npos);
  }
  EXPECT_EQ(Post("/admin/checkpoint", "").status, 200);

  // Restart: the second phase must resume from checkpoints alone.
  OpenStore(/*create=*/false);
  StartServer(1);

  // Phase 2: full histories restated; the server skips the seen half.
  for (const xmldump::PageHistory& page : dump.pages) {
    ClientResponse response = Post(
        "/context/" + PercentEncode(page.title) + "/revision", PageXml(page));
    ASSERT_EQ(response.status, 200) << response.body;
    // The first-half revisions were ingested before the restart; the
    // restated history must surface them as skipped (nonzero count).
    EXPECT_EQ(response.body.find("\"skipped_revisions\": 0,"),
              std::string::npos)
        << "expected skips to be surfaced: " << response.body;
  }

  // Restating a page yet again skips everything: surfaced per response.
  ClientResponse skipped = Post(
      "/context/" + PercentEncode(dump.pages[0].title) + "/revision",
      PageXml(dump.pages[0]));
  ASSERT_EQ(skipped.status, 200);
  EXPECT_NE(skipped.body.find("\"page_skipped\": true"), std::string::npos);
  EXPECT_NE(skipped.body.find("\"new_revisions\": 0"), std::string::npos);

  // The gate: per-page graphs over HTTP == batch graphs, byte for byte.
  for (size_t i = 0; i < dump.pages.size(); ++i) {
    ClientResponse graph =
        Get("/context/" + PercentEncode(dump.pages[i].title) + "/graph");
    ASSERT_EQ(graph.status, 200);
    EXPECT_EQ(graph.body, BatchGraphs((*batch)[i]))
        << "graph mismatch for page " << dump.pages[i].title;
  }

  // History and provenance answer for a context that went through
  // eviction, faulting and restart.
  ClientResponse history =
      Get("/context/" + PercentEncode(dump.pages[0].title) +
          "/history/table:0");
  ASSERT_EQ(history.status, 200);
  EXPECT_NE(history.body.find("\"versions\": ["), std::string::npos);

  ClientResponse provenance =
      Get("/context/" + PercentEncode(dump.pages[0].title) +
          "/provenance?limit=5");
  ASSERT_EQ(provenance.status, 200);
}

TEST_F(ServerTest, DrainCheckpointsEveryDirtyContext) {
  xmldump::Dump dump = TestDump();
  OpenStore(/*create=*/true);
  // Capacity high enough that nothing spills by pressure: only the
  // drain checkpoint can have persisted the contexts.
  StartServer(64);
  for (const xmldump::PageHistory& page : dump.pages) {
    ASSERT_EQ(Post("/context/" + PercentEncode(page.title) + "/revision",
                   PageXml(page))
                  .status,
              200);
  }
  ClientResponse drain = Post("/admin/drain", "");
  EXPECT_EQ(drain.status, 200);
  if (serve_thread_.joinable()) serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  server_.reset();
  client_.Close();

  OpenStore(/*create=*/false);
  for (const xmldump::PageHistory& page : dump.pages) {
    auto info = store_->Lookup(page.title);
    ASSERT_TRUE(info.has_value()) << page.title;
    EXPECT_EQ(info->revisions_ingested, page.revisions.size());
  }
}

// Drain must shut the server down however the target is spelled, as
// long as it routes: a query string (or an extra slash, or a percent-
// escaped byte) must not leave the server stuck permanently draining.
TEST_F(ServerTest, DrainWithQueryStringStillStopsServer) {
  OpenStore(/*create=*/true);
  StartServer(8);
  ClientResponse drain = Post("/admin/drain?source=test", "");
  EXPECT_EQ(drain.status, 200);
  EXPECT_NE(drain.body.find("\"draining\": true"), std::string::npos);
  // Pre-fix this join hung: the raw-target comparison missed the query
  // string, so Stop() was never called.
  if (serve_thread_.joinable()) serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  server_.reset();
  client_.Close();
}

TEST_F(ServerTest, IngestRejectsMismatchedTitleAndMultiPageBodies) {
  OpenStore(/*create=*/true);
  StartServer(8);

  xmldump::Dump dump = TestDump();
  // Title mismatch between URL and body.
  ClientResponse mismatch =
      Post("/context/SomethingElse/revision", PageXml(dump.pages[0]));
  EXPECT_EQ(mismatch.status, 400);
  // Two pages in one body.
  xmldump::Dump two;
  two.pages.push_back(dump.pages[0]);
  two.pages.push_back(dump.pages[1]);
  ClientResponse multi =
      Post("/context/" + PercentEncode(dump.pages[0].title) + "/revision",
           xmldump::WriteDump(two));
  EXPECT_EQ(multi.status, 400);
}

}  // namespace
}  // namespace somr::serve
