#include "serve/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../obs/json_checker.h"
#include "core/pipeline.h"
#include "matching/graph_io.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/http.h"
#include "state/context_store.h"
#include "wikigen/corpus.h"
#include "xmldump/dump.h"

namespace somr::serve {
namespace {

using somr::testutil::JsonChecker;

constexpr extract::ObjectType kAllTypes[] = {
    extract::ObjectType::kTable, extract::ObjectType::kInfobox,
    extract::ObjectType::kList};

// Small but non-trivial corpus: several pages, enough revisions that
// splitting each history in half is meaningful.
xmldump::Dump TestDump() {
  wikigen::CorpusConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.strata_caps = {3};
  config.pages_per_stratum = 3;
  config.min_revisions = 10;
  config.max_revisions = 16;
  config.seed = 11;
  return wikigen::CorpusToDump(wikigen::GenerateGoldCorpus(config));
}

std::string PageXml(const xmldump::PageHistory& page) {
  xmldump::Dump one;
  one.pages.push_back(page);
  return xmldump::WriteDump(one);
}

// The server's /graph body for comparison against batch results.
std::string BatchGraphs(const core::PageResult& result) {
  std::string out;
  for (extract::ObjectType type : kAllTypes) {
    out += matching::SerializeIdentityGraph(result.GraphFor(type));
  }
  return out;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/somr-serve-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    StopServer();
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  // Opens (or reopens) the fixture-owned store. The fixture owns it so
  // it outlives the server: shard threads checkpoint into the store
  // during shutdown, which happens in TearDown — after any stack local
  // in the test body would already be gone.
  void OpenStore(bool create) {
    StopServer();  // never leave a server pointing at a dying store
    store_ = std::make_unique<state::ContextStore>(dir_);
    ASSERT_TRUE(store_->Open(create).ok());
  }

  // Starts a server over the fixture store and a client connected to it.
  void StartServer(size_t cache_capacity) {
    ServeOptions options;
    options.shards = 2;
    options.cache_capacity = cache_capacity;
    options.connection_workers = 2;
    options.socket_timeout_millis = 50;
    server_ = std::make_unique<Server>(store_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }

  void StopServer() {
    client_.Close();
    if (server_ != nullptr) server_->Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    if (server_ != nullptr) {
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
    server_.reset();
  }

  ClientResponse Post(const std::string& target, const std::string& body,
                      bool chunked = false) {
    StatusOr<ClientResponse> response =
        client_.Request("POST", target, body, chunked);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : ClientResponse{};
  }

  ClientResponse Get(const std::string& target) {
    StatusOr<ClientResponse> response = client_.Request("GET", target);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : ClientResponse{};
  }

  std::string dir_;
  std::unique_ptr<state::ContextStore> store_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  Status serve_status_;
  HttpClient client_;
};

TEST_F(ServerTest, HealthzAndMetricsAnswer) {
  OpenStore(/*create=*/true);
  StartServer(8);

  ClientResponse health = Get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_TRUE(JsonChecker(health.body).Valid()) << health.body;
  EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"version\""), std::string::npos);
  EXPECT_NE(health.body.find("\"uptime_seconds\""), std::string::npos);
  // Every response is stamped with the request's trace id: 16 hex digits.
  const std::string& trace_id = health.Header("x-somr-trace-id");
  ASSERT_EQ(trace_id.size(), 16u);
  EXPECT_NE(obs::ParseTraceIdHex(trace_id), 0u);

  ClientResponse metrics = Get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("somr_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.body.find("somr_build_info"), std::string::npos);
  EXPECT_NE(metrics.body.find("somr_uptime_seconds"), std::string::npos);
  EXPECT_NE(metrics.body.find("somr_serve_slo_violations_total"),
            std::string::npos);
}

TEST_F(ServerTest, DebugEndpointsAnswerWellFormedJson) {
  OpenStore(/*create=*/true);
  StartServer(8);

  ClientResponse vars = Get("/debug/vars");
  EXPECT_EQ(vars.status, 200);
  EXPECT_TRUE(JsonChecker(vars.body).Valid()) << vars.body;
  EXPECT_NE(vars.body.find("\"config_fingerprint\""), std::string::npos);
  EXPECT_NE(vars.body.find("\"shards\": [") , std::string::npos);
  EXPECT_NE(vars.body.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(vars.body.find("\"trace_recorded\""), std::string::npos);

  ClientResponse requests = Get("/debug/requests");
  EXPECT_EQ(requests.status, 200);
  EXPECT_TRUE(JsonChecker(requests.body).Valid()) << requests.body;
  EXPECT_NE(requests.body.find("\"in_flight\""), std::string::npos);
  EXPECT_NE(requests.body.find("\"recent\""), std::string::npos);
  // The /debug/vars request just finished: it is in the recent ring.
  EXPECT_NE(requests.body.find("\"target\": \"/debug/vars\""),
            std::string::npos)
      << requests.body;

  ClientResponse window = Get("/metrics/window");
  EXPECT_EQ(window.status, 200);
  EXPECT_TRUE(JsonChecker(window.body).Valid()) << window.body;
  EXPECT_NE(window.body.find("\"windows\""), std::string::npos);
  EXPECT_NE(window.body.find("\"p95\""), std::string::npos);

  EXPECT_EQ(Post("/debug/vars", "").status, 405);
  EXPECT_EQ(Get("/debug/nope").status, 404);
}

TEST_F(ServerTest, DebugTraceCapturesLiveSpansAsChromeJson) {
  OpenStore(/*create=*/true);
  StartServer(8);

  // Generate traffic on a second connection while /debug/trace's capture
  // window is open, so freshly started spans land inside it.
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    HttpClient side;
    if (!side.Connect(server_->port()).ok()) return;
    while (!stop.load()) {
      if (!side.Request("GET", "/healthz").ok()) break;
    }
  });
  StatusOr<ClientResponse> trace =
      client_.Request("GET", "/debug/trace?ms=200");
  stop.store(true);
  traffic.join();

  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->status, 200);
  EXPECT_TRUE(JsonChecker(trace->body).Valid()) << trace->body;
  EXPECT_NE(trace->body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace->body.find("serve/request"), std::string::npos)
      << trace->body;
  // Served spans carry their request's trace id into the export.
  EXPECT_NE(trace->body.find("\"trace_id\": \""), std::string::npos)
      << trace->body;

  EXPECT_EQ(Get("/debug/trace?ms=abc").status, 400);
  EXPECT_EQ(Get("/debug/trace?ms=9999999").status, 400);
}

TEST_F(ServerTest, UnknownRoutesAndMethodsAreCleanErrors) {
  OpenStore(/*create=*/true);
  StartServer(8);

  EXPECT_EQ(Get("/nope").status, 404);
  EXPECT_EQ(Post("/healthz", "").status, 405);
  EXPECT_EQ(Get("/context/missing/graph").status, 404);
  EXPECT_EQ(Get("/context/missing/history/table:0").status, 404);
  EXPECT_EQ(Get("/context/missing/history/table").status, 400);
  EXPECT_EQ(Get("/context/missing/history/widget:0").status, 400);
  // All digits but past int64: must answer 400, not throw out of stoll
  // and take the daemon down.
  EXPECT_EQ(
      Get("/context/missing/history/table:99999999999999999999999").status,
      400);
  ClientResponse bad = Post("/context/x/revision", "not xml at all");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("error"), std::string::npos);
}

TEST_F(ServerTest, MalformedHttpGets400NotAbort) {
  OpenStore(/*create=*/true);
  StartServer(8);

  // Raw malformed requests over a bare socket; the server must answer
  // 400 (not crash, not hang) and keep serving healthy connections.
  for (const char* wire :
       {"GARBAGE\r\n\r\n",
        "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
        "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"}) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_GT(::send(fd, wire, std::strlen(wire), MSG_NOSIGNAL), 0);
    char buf[512];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    ASSERT_GT(n, 0) << "no response for: " << wire;
    buf[n] = '\0';
    EXPECT_NE(std::string(buf).find("400 Bad Request"), std::string::npos)
        << "request: " << wire << " response: " << buf;
    ::close(fd);
  }

  // The healthy client still works afterwards.
  EXPECT_EQ(Get("/healthz").status, 200);
}

// The tentpole acceptance gate: ingestion through the HTTP daemon —
// including forced LRU evictions mid-context (cache_capacity=1 with 3+
// pages interleaved), an /admin/checkpoint, and a full server restart —
// must produce identity graphs byte-identical to the batch pipeline.
TEST_F(ServerTest, ServeIngestMatchesBatchByteForByte) {
  xmldump::Dump dump = TestDump();
  ASSERT_GE(dump.pages.size(), 3u);

  // Batch reference.
  core::Pipeline pipeline;
  StatusOr<std::vector<core::PageResult>> batch =
      pipeline.ProcessDumpXml(xmldump::WriteDump(dump));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  OpenStore(/*create=*/true);
  // capacity 1 per shard: every interleaved POST below evicts the
  // previous context, spilling and faulting constantly.
  StartServer(1);

  // Phase 1: first half of every page, interleaved.
  for (const xmldump::PageHistory& page : dump.pages) {
    xmldump::PageHistory half = page;
    half.revisions.resize(half.revisions.size() / 2);
    ClientResponse response =
        Post("/context/" + PercentEncode(page.title) + "/revision",
             PageXml(half), /*chunked=*/true);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"page_skipped\": false"),
              std::string::npos);
    EXPECT_NE(response.body.find("\"decisions\": ["), std::string::npos);
  }
  EXPECT_EQ(Post("/admin/checkpoint", "").status, 200);

  // Restart: the second phase must resume from checkpoints alone.
  OpenStore(/*create=*/false);
  StartServer(1);

  // Phase 2: full histories restated; the server skips the seen half.
  for (const xmldump::PageHistory& page : dump.pages) {
    ClientResponse response = Post(
        "/context/" + PercentEncode(page.title) + "/revision", PageXml(page));
    ASSERT_EQ(response.status, 200) << response.body;
    // The first-half revisions were ingested before the restart; the
    // restated history must surface them as skipped (nonzero count).
    EXPECT_EQ(response.body.find("\"skipped_revisions\": 0,"),
              std::string::npos)
        << "expected skips to be surfaced: " << response.body;
  }

  // Restating a page yet again skips everything: surfaced per response.
  ClientResponse skipped = Post(
      "/context/" + PercentEncode(dump.pages[0].title) + "/revision",
      PageXml(dump.pages[0]));
  ASSERT_EQ(skipped.status, 200);
  EXPECT_NE(skipped.body.find("\"page_skipped\": true"), std::string::npos);
  EXPECT_NE(skipped.body.find("\"new_revisions\": 0"), std::string::npos);

  // The gate: per-page graphs over HTTP == batch graphs, byte for byte.
  for (size_t i = 0; i < dump.pages.size(); ++i) {
    ClientResponse graph =
        Get("/context/" + PercentEncode(dump.pages[i].title) + "/graph");
    ASSERT_EQ(graph.status, 200);
    EXPECT_EQ(graph.body, BatchGraphs((*batch)[i]))
        << "graph mismatch for page " << dump.pages[i].title;
  }

  // History and provenance answer for a context that went through
  // eviction, faulting and restart.
  ClientResponse history =
      Get("/context/" + PercentEncode(dump.pages[0].title) +
          "/history/table:0");
  ASSERT_EQ(history.status, 200);
  EXPECT_NE(history.body.find("\"versions\": ["), std::string::npos);

  ClientResponse provenance =
      Get("/context/" + PercentEncode(dump.pages[0].title) +
          "/provenance?limit=5");
  ASSERT_EQ(provenance.status, 200);
}

// Sends one raw HTTP/1.1 request (the HttpClient has no custom-header
// support) and returns the full response text; `Connection: close` in
// the request bounds the read at EOF.
std::string RawRoundTrip(uint16_t port, const std::string& wire) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// The tracing acceptance gate: a caller-supplied x-somr-trace-id must be
// adopted for the whole request — echoed in the response header, stamped
// on every match decision (response body and provenance ring), and
// carried by the spans recorded on the connection, shard, and pipeline
// layers.
TEST_F(ServerTest, CallerTraceIdReachesSpansDecisionsAndProvenance) {
  xmldump::Dump dump = TestDump();
  OpenStore(/*create=*/true);
  StartServer(8);

  const std::string kHex = "deadbeef12345678";
  const std::string body = PageXml(dump.pages[0]);
  const std::string target =
      "/context/" + PercentEncode(dump.pages[0].title) + "/revision";
  std::string wire = "POST " + target +
                     " HTTP/1.1\r\n"
                     "Host: test\r\n"
                     "x-somr-trace-id: " +
                     kHex +
                     "\r\n"
                     "Content-Length: " +
                     std::to_string(body.size()) +
                     "\r\n"
                     "Connection: close\r\n\r\n" +
                     body;
  std::string response = RawRoundTrip(server_->port(), wire);
  ASSERT_NE(response.find("200 OK"), std::string::npos) << response;
  // Echoed back on the wire.
  EXPECT_NE(response.find("x-somr-trace-id: " + kHex), std::string::npos);
  // Stamped on every decision in the ingest response body.
  EXPECT_NE(response.find("\"trace_id\": \"" + kHex + "\""),
            std::string::npos);

  // The provenance ring remembers the id.
  ClientResponse provenance =
      Get("/context/" + PercentEncode(dump.pages[0].title) +
          "/provenance?limit=5");
  ASSERT_EQ(provenance.status, 200);
  EXPECT_NE(provenance.body.find("\"trace_id\": \"" + kHex + "\""),
            std::string::npos)
      << provenance.body;

  // The spans recorded while serving the request carry the id across
  // every layer: connection handling, the shard hop, and the state
  // pipeline that ran the matcher.
  const uint64_t id = obs::ParseTraceIdHex(kHex);
  std::vector<std::string> spans;
  for (const obs::TraceEvent& event :
       obs::TraceRecorder::Global().Events()) {
    if (event.trace_id == id) spans.emplace_back(event.name);
  }
  for (const char* expected :
       {"serve/request", "serve/shard_job", "state/apply_page"}) {
    EXPECT_NE(std::find(spans.begin(), spans.end(), expected), spans.end())
        << "no span named " << expected << " carries the caller trace id";
  }
}

TEST_F(ServerTest, MetricsWindowReportsIngestLatency) {
  xmldump::Dump dump = TestDump();
  OpenStore(/*create=*/true);
  StartServer(8);
  ASSERT_EQ(Post("/context/" + PercentEncode(dump.pages[0].title) +
                     "/revision",
                 PageXml(dump.pages[0]))
                .status,
            200);

  ClientResponse window = Get("/metrics/window");
  ASSERT_EQ(window.status, 200);
  EXPECT_TRUE(JsonChecker(window.body).Valid()) << window.body;
  // The ingest endpoint has a rolling-window entry with percentiles,
  // and both horizons saw at least the POST above.
  const size_t at = window.body.find("\"revision\"");
  ASSERT_NE(at, std::string::npos) << window.body;
  const size_t end = window.body.find("}}", at);
  ASSERT_NE(end, std::string::npos);
  const std::string entry = window.body.substr(at, end - at);
  EXPECT_NE(entry.find("\"1m\""), std::string::npos);
  EXPECT_NE(entry.find("\"5m\""), std::string::npos);
  EXPECT_NE(entry.find("\"p95\": "), std::string::npos);
  EXPECT_EQ(entry.find("\"count\": 0,"), std::string::npos) << entry;
}

TEST_F(ServerTest, DrainCheckpointsEveryDirtyContext) {
  xmldump::Dump dump = TestDump();
  OpenStore(/*create=*/true);
  // Capacity high enough that nothing spills by pressure: only the
  // drain checkpoint can have persisted the contexts.
  StartServer(64);
  for (const xmldump::PageHistory& page : dump.pages) {
    ASSERT_EQ(Post("/context/" + PercentEncode(page.title) + "/revision",
                   PageXml(page))
                  .status,
              200);
  }
  ClientResponse drain = Post("/admin/drain", "");
  EXPECT_EQ(drain.status, 200);
  if (serve_thread_.joinable()) serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  server_.reset();
  client_.Close();

  OpenStore(/*create=*/false);
  for (const xmldump::PageHistory& page : dump.pages) {
    auto info = store_->Lookup(page.title);
    ASSERT_TRUE(info.has_value()) << page.title;
    EXPECT_EQ(info->revisions_ingested, page.revisions.size());
  }
}

// Drain must shut the server down however the target is spelled, as
// long as it routes: a query string (or an extra slash, or a percent-
// escaped byte) must not leave the server stuck permanently draining.
TEST_F(ServerTest, DrainWithQueryStringStillStopsServer) {
  OpenStore(/*create=*/true);
  StartServer(8);
  ClientResponse drain = Post("/admin/drain?source=test", "");
  EXPECT_EQ(drain.status, 200);
  EXPECT_NE(drain.body.find("\"draining\": true"), std::string::npos);
  // Pre-fix this join hung: the raw-target comparison missed the query
  // string, so Stop() was never called.
  if (serve_thread_.joinable()) serve_thread_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  server_.reset();
  client_.Close();
}

TEST_F(ServerTest, IngestRejectsMismatchedTitleAndMultiPageBodies) {
  OpenStore(/*create=*/true);
  StartServer(8);

  xmldump::Dump dump = TestDump();
  // Title mismatch between URL and body.
  ClientResponse mismatch =
      Post("/context/SomethingElse/revision", PageXml(dump.pages[0]));
  EXPECT_EQ(mismatch.status, 400);
  // Two pages in one body.
  xmldump::Dump two;
  two.pages.push_back(dump.pages[0]);
  two.pages.push_back(dump.pages[1]);
  ClientResponse multi =
      Post("/context/" + PercentEncode(dump.pages[0].title) + "/revision",
           xmldump::WriteDump(two));
  EXPECT_EQ(multi.status, 400);
}

}  // namespace
}  // namespace somr::serve
