#include "serve/http.h"

#include <gtest/gtest.h>

#include <string>

namespace somr::serve {
namespace {

// Feeds `raw` to a parser one `stride` bytes at a time, as a socket
// with torn reads would. Returns total bytes consumed.
size_t FeedAll(HttpRequestParser& parser, const std::string& raw,
               size_t stride) {
  size_t consumed = 0;
  for (size_t at = 0; at < raw.size() && !parser.done() && !parser.error();
       at += stride) {
    const size_t len = std::min(stride, raw.size() - at);
    size_t offered = 0;
    while (offered < len && !parser.done() && !parser.error()) {
      size_t used = parser.Feed(raw.data() + at + offered, len - offered);
      if (used == 0) break;
      offered += used;
    }
    consumed += offered;
  }
  return consumed;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  const std::string raw =
      "GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), raw.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().Header("host"), "x");
  EXPECT_EQ(parser.request().Header("accept"), "*/*");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, ParsesContentLengthBody) {
  HttpRequestParser parser;
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), raw.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "hello");
}

// A socket read can tear the stream anywhere: mid request line, mid
// header name, between \r and \n, mid chunk-size line, mid chunk data.
// Every stride must produce the identical parse.
TEST(HttpParserTest, TornReadsAtEveryStrideParseIdentically) {
  const std::string raw =
      "POST /context/a%20b/revision HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "6\r\nhello \r\n"
      "7;ext=1\r\nchunked\r\n"
      "6\r\n world\r\n"
      "0\r\n"
      "X-Trailer: ignored\r\n"
      "\r\n";
  for (size_t stride = 1; stride <= raw.size(); ++stride) {
    HttpRequestParser parser;
    FeedAll(parser, raw, stride);
    ASSERT_TRUE(parser.done()) << "stride " << stride;
    EXPECT_EQ(parser.request().body, "hello chunked world")
        << "stride " << stride;
    EXPECT_EQ(parser.request().target, "/context/a%20b/revision");
  }
}

TEST(HttpParserTest, KeepAliveLeavesTrailingBytesUnconsumed) {
  HttpRequestParser parser;
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  const std::string both = first + second;
  // The parser must stop at the first request's end.
  size_t used = parser.Feed(both.data(), both.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(used, first.size());
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  EXPECT_EQ(parser.Feed(both.data() + used, both.size() - used),
            second.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, OversizedHeadersError) {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string raw = "GET /x HTTP/1.1\r\nX-Big: ";
  raw.append(500, 'a');
  raw += "\r\n\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
  EXPECT_NE(parser.error_message().find("header"), std::string::npos);
}

TEST(HttpParserTest, BodyOverLimitErrors) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 10;
  HttpRequestParser parser(limits);
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
}

TEST(HttpParserTest, ChunkedBodyOverLimitErrors) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  const std::string raw =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "9\r\nwaytoobig\r\n0\r\n\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
}

// A 16-hex-digit chunk size is close to SIZE_MAX; with a non-empty body
// the additive limit check `body + chunk > max` would wrap and pass,
// letting the parser buffer attacker-streamed data without bound.
TEST(HttpParserTest, ChunkSizeNearSizeMaxCannotBypassBodyLimit) {
  HttpRequestParser parser;
  const std::string raw =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "1\r\na\r\n"
      "ffffffffffffffff\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
  EXPECT_NE(parser.error_message().find("body"), std::string::npos);
}

TEST(HttpParserTest, MalformedChunkSizeErrorsNotAborts) {
  for (const char* bad : {"zz\r\n", "\r\n", "123456789abcdef01\r\n"}) {
    HttpRequestParser parser;
    const std::string raw =
        std::string("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") +
        bad;
    parser.Feed(raw.data(), raw.size());
    EXPECT_TRUE(parser.error()) << "chunk line: " << bad;
    EXPECT_FALSE(parser.error_message().empty());
  }
}

TEST(HttpParserTest, UnsupportedTransferEncodingErrors) {
  HttpRequestParser parser;
  const std::string raw =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
}

TEST(HttpParserTest, MalformedRequestLineErrors) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "GET  /x HTTP/1.1 extra\r\n\r\n",
        "GET /x FTP/1.1\r\n\r\n"}) {
    HttpRequestParser parser;
    const std::string raw = bad;
    parser.Feed(raw.data(), raw.size());
    EXPECT_TRUE(parser.error()) << "request: " << bad;
  }
}

TEST(HttpParserTest, InvalidContentLengthErrors) {
  for (const char* bad : {"abc", "-1", "99999999999999999999999999"}) {
    HttpRequestParser parser;
    const std::string raw = std::string("POST /x HTTP/1.1\r\nContent-Length: ") +
                            bad + "\r\n\r\n";
    parser.Feed(raw.data(), raw.size());
    EXPECT_TRUE(parser.error()) << "content-length: " << bad;
  }
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpRequestParser parser;
  const std::string raw = "GET /x HTTP/1.1\nHost: y\n\n";
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), raw.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().Header("host"), "y");
}

TEST(HttpParserTest, SerializeThenParseRoundTrips) {
  HttpResponse response;
  response.status = 404;
  response.content_type = "application/json";
  response.body = "{\"error\": \"nope\"}\n";
  const std::string wire = SerializeResponse(response);

  HttpResponseParser parser;
  for (size_t stride = 1; stride <= wire.size(); ++stride) {
    parser.Reset();
    for (size_t at = 0; at < wire.size() && !parser.done();) {
      at += parser.Feed(wire.data() + at,
                        std::min(stride, wire.size() - at));
    }
    ASSERT_TRUE(parser.done()) << "stride " << stride;
    EXPECT_EQ(parser.status(), 404);
    EXPECT_EQ(parser.body(), response.body);
  }
}

// The response parser buffers under the same limits as the request
// parser: a misbehaving server must not be able to grow client memory
// without bound via endless headers, huge content-length, or a chunk
// size near SIZE_MAX.
TEST(HttpResponseParserTest, OversizedHeadersError) {
  HttpResponseParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpResponseParser parser(limits);
  std::string raw = "HTTP/1.1 200 OK\r\nX-Big: ";
  raw.append(500, 'a');
  raw += "\r\n\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
  EXPECT_NE(parser.error_message().find("header"), std::string::npos);
}

TEST(HttpResponseParserTest, BodyOverLimitErrors) {
  HttpResponseParser::Limits limits;
  limits.max_body_bytes = 10;
  HttpResponseParser parser(limits);
  const std::string raw =
      "HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\nhello world";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
}

TEST(HttpResponseParserTest, ChunkSizeNearSizeMaxCannotBypassBodyLimit) {
  HttpResponseParser parser;
  const std::string raw =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "1\r\na\r\n"
      "ffffffffffffffff\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
  EXPECT_NE(parser.error_message().find("body"), std::string::npos);
}

TEST(HttpResponseParserTest, OversizedChunkSizeLineErrors) {
  HttpResponseParser parser;
  std::string raw = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  raw.append(200, ' ');  // a framing line that never ends
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.error());
}

TEST(HttpUrlTest, PercentRoundTrip) {
  const std::string raw = "1990 Rock/Dunmore \xc3\xa9 +&?";
  EXPECT_EQ(PercentDecode(PercentEncode(raw)), raw);
  // Unreserved bytes pass through untouched.
  EXPECT_EQ(PercentEncode("AZaz09-_.~"), "AZaz09-_.~");
}

TEST(HttpUrlTest, SplitTargetDecodesSegments) {
  std::vector<std::string> segments;
  std::string query;
  SplitTarget("/context/a%20b/graph?limit=5&x=%2F", &segments, &query);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], "context");
  EXPECT_EQ(segments[1], "a b");
  EXPECT_EQ(segments[2], "graph");
  EXPECT_EQ(QueryParam(query, "limit"), "5");
  EXPECT_EQ(QueryParam(query, "x"), "/");
  EXPECT_EQ(QueryParam(query, "absent"), "");
}

}  // namespace
}  // namespace somr::serve
