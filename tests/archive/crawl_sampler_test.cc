#include "archive/crawl_sampler.h"

#include <gtest/gtest.h>

#include <set>

namespace somr::archive {
namespace {

wikigen::GeneratedPage SamplePage() {
  wikigen::EvolverConfig config;
  config.focal_type = extract::ObjectType::kTable;
  config.max_focal_objects = 4;
  config.num_revisions = 50;
  config.theme = wikigen::PageTheme::kGeneric;
  config.seed = 21;
  return wikigen::PageEvolver(config).Generate();
}

TEST(RestrictTruthTest, RenumbersRevisions) {
  matching::IdentityGraph truth(extract::ObjectType::kTable);
  int64_t a = truth.AddObject({0, 0});
  truth.AppendVersion(a, {2, 0});
  truth.AppendVersion(a, {4, 1});
  matching::IdentityGraph restricted = RestrictTruth(truth, {0, 4});
  ASSERT_EQ(restricted.ObjectCount(), 1u);
  const auto& versions = restricted.objects()[0].versions;
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0], (matching::VersionRef{0, 0}));
  EXPECT_EQ(versions[1], (matching::VersionRef{1, 1}));
}

TEST(RestrictTruthTest, DropsObjectsWithoutSampledVersions) {
  matching::IdentityGraph truth(extract::ObjectType::kTable);
  truth.AddObject({1, 0});  // only exists in revision 1
  int64_t b = truth.AddObject({0, 1});
  truth.AppendVersion(b, {2, 0});
  matching::IdentityGraph restricted = RestrictTruth(truth, {0, 2});
  EXPECT_EQ(restricted.ObjectCount(), 1u);
  EXPECT_EQ(restricted.Edges().size(), 1u);
}

TEST(RestrictTruthTest, GapEdgesCollapse) {
  // Deleted-and-restored becomes a direct edge at lower resolution.
  matching::IdentityGraph truth(extract::ObjectType::kTable);
  int64_t a = truth.AddObject({0, 0});
  truth.AppendVersion(a, {1, 0});
  truth.AppendVersion(a, {5, 0});
  matching::IdentityGraph restricted = RestrictTruth(truth, {0, 5});
  ASSERT_EQ(restricted.Edges().size(), 1u);
  EXPECT_EQ(restricted.Edges()[0].second.revision, 1);
}

TEST(SampleCrawlsTest, ProducesHtmlRevisions) {
  wikigen::GeneratedPage page = SamplePage();
  Rng rng(5);
  SampledHistory sampled = SampleCrawls(page, 30.0, rng);
  ASSERT_FALSE(sampled.page.revisions.empty());
  EXPECT_LE(sampled.page.revisions.size(), page.revisions.size());
  for (const auto& rev : sampled.page.revisions) {
    EXPECT_EQ(rev.model, "html");
    EXPECT_NE(rev.text.find("<body>"), std::string::npos);
  }
}

TEST(SampleCrawlsTest, KeptRevisionsStrictlyIncrease) {
  wikigen::GeneratedPage page = SamplePage();
  Rng rng(6);
  SampledHistory sampled = SampleCrawls(page, 20.0, rng);
  for (size_t i = 1; i < sampled.kept_revisions.size(); ++i) {
    EXPECT_LT(sampled.kept_revisions[i - 1], sampled.kept_revisions[i]);
  }
}

TEST(SampleCrawlsTest, LongerIntervalKeepsFewer) {
  wikigen::GeneratedPage page = SamplePage();
  Rng rng1(7), rng2(7);
  SampledHistory dense = SampleCrawls(page, 5.0, rng1);
  SampledHistory sparse = SampleCrawls(page, 90.0, rng2);
  EXPECT_GT(dense.page.revisions.size(), sparse.page.revisions.size());
}

TEST(ReduceTimeResolutionTest, ZeroKeepsEverything) {
  wikigen::GeneratedPage page = SamplePage();
  SampledHistory sampled = ReduceTimeResolution(page, 0);
  EXPECT_EQ(sampled.page.revisions.size(), page.revisions.size());
  EXPECT_EQ(sampled.truth_tables.VersionCount(),
            page.truth_tables.VersionCount());
}

TEST(ReduceTimeResolutionTest, CoarserResolutionKeepsFewer) {
  wikigen::GeneratedPage page = SamplePage();
  SampledHistory day = ReduceTimeResolution(page, kSecondsPerDay);
  SampledHistory year = ReduceTimeResolution(page, kSecondsPerYear);
  EXPECT_GE(day.page.revisions.size(), year.page.revisions.size());
  EXPECT_GE(page.revisions.size(), day.page.revisions.size());
  EXPECT_FALSE(year.page.revisions.empty());
}

TEST(ReduceTimeResolutionTest, KeepsLastRevisionPerBucket) {
  wikigen::GeneratedPage page = SamplePage();
  SampledHistory sampled = ReduceTimeResolution(page, kSecondsPerDay);
  // Every kept revision must be the last one within its day bucket.
  std::set<int> kept(sampled.kept_revisions.begin(),
                     sampled.kept_revisions.end());
  for (size_t r = 0; r + 1 < page.revisions.size(); ++r) {
    UnixSeconds bucket = page.revisions[r].timestamp / kSecondsPerDay;
    UnixSeconds next_bucket =
        page.revisions[r + 1].timestamp / kSecondsPerDay;
    if (bucket == next_bucket) {
      EXPECT_EQ(kept.count(static_cast<int>(r)), 0u);
    }
  }
  // The final revision is always kept.
  EXPECT_EQ(kept.count(static_cast<int>(page.revisions.size()) - 1), 1u);
}

}  // namespace
}  // namespace somr::archive
