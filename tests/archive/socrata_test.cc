#include "archive/socrata.h"

#include <gtest/gtest.h>

#include <set>

namespace somr::archive {
namespace {

SocrataConfig TinyConfig() {
  SocrataConfig config;
  config.subdomains = {"chicago", "utah"};
  config.datasets_per_subdomain = 8;
  config.num_snapshots = 5;
  config.seed = 31;
  return config;
}

TEST(SocrataTest, OneContextPerSubdomain) {
  auto contexts = GenerateSocrata(TinyConfig());
  ASSERT_EQ(contexts.size(), 2u);
  EXPECT_EQ(contexts[0].subdomain, "chicago");
  EXPECT_EQ(contexts[1].subdomain, "utah");
}

TEST(SocrataTest, SnapshotCountMatches) {
  auto contexts = GenerateSocrata(TinyConfig());
  for (const SocrataContext& context : contexts) {
    EXPECT_EQ(context.snapshots.size(), 5u);
  }
}

TEST(SocrataTest, DatasetsAreLargeTables) {
  auto contexts = GenerateSocrata(TinyConfig());
  for (const auto& snapshot : contexts[0].snapshots) {
    for (const auto& dataset : snapshot) {
      EXPECT_EQ(dataset.type, extract::ObjectType::kTable);
      EXPECT_GE(dataset.rows.size(), 20u);
      EXPECT_FALSE(dataset.schema.empty());
    }
  }
}

TEST(SocrataTest, PositionsAreDense) {
  auto contexts = GenerateSocrata(TinyConfig());
  for (const auto& snapshot : contexts[0].snapshots) {
    for (size_t i = 0; i < snapshot.size(); ++i) {
      EXPECT_EQ(snapshot[i].position, static_cast<int>(i));
    }
  }
}

TEST(SocrataTest, TruthCoversEveryInstance) {
  auto contexts = GenerateSocrata(TinyConfig());
  for (const SocrataContext& context : contexts) {
    size_t truth_instances = context.truth.VersionCount();
    size_t snapshot_instances = 0;
    for (const auto& snapshot : context.snapshots) {
      snapshot_instances += snapshot.size();
    }
    EXPECT_EQ(truth_instances, snapshot_instances);
  }
}

TEST(SocrataTest, TruthChainsChronological) {
  auto contexts = GenerateSocrata(TinyConfig());
  for (const auto& obj : contexts[0].truth.objects()) {
    for (size_t i = 1; i < obj.versions.size(); ++i) {
      EXPECT_LT(obj.versions[i - 1].revision, obj.versions[i].revision);
    }
  }
}

TEST(SocrataTest, Deterministic) {
  auto a = GenerateSocrata(TinyConfig());
  auto b = GenerateSocrata(TinyConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].snapshots.size(), b[c].snapshots.size());
    for (size_t s = 0; s < a[c].snapshots.size(); ++s) {
      EXPECT_EQ(a[c].snapshots[s].size(), b[c].snapshots[s].size());
    }
  }
}

TEST(SocrataTest, SubdomainsEvolveIndependently) {
  auto contexts = GenerateSocrata(TinyConfig());
  // Different content in the two subdomains.
  ASSERT_FALSE(contexts[0].snapshots[0].empty());
  ASSERT_FALSE(contexts[1].snapshots[0].empty());
  EXPECT_NE(contexts[0].snapshots[0][0].rows,
            contexts[1].snapshots[0][0].rows);
}

}  // namespace
}  // namespace somr::archive
