// Tests for the incremental inverted index (src/retrieval/): bound
// soundness against a brute-force overlap oracle under randomized window
// churn, lazy invalidation on eviction, compaction invisibility, WAND
// early-termination accounting, the window validator, and bit-equality
// of the SIMD galloping intersection backends.

#include "retrieval/candidate_index.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/validate.h"
#include "sim/simd_intersect.h"
#include "sim/similarity.h"
#include "text/flat_bag.h"

namespace somr::retrieval {
namespace {

FlatBag MakeBag(std::vector<uint32_t> ids) {
  return FlatBag::FromTokenIds(std::move(ids));
}

// Exact weighted overlap sum_t w_t * min(count_a, count_b).
double Overlap(const FlatBag& a, const FlatBag& b,
               const sim::DenseTokenWeights& weights) {
  return sim::WeightedSumMin(a, b, weights);
}

TEST(CandidateIndexTest, RetrievesSharedTokenObjects) {
  CandidateIndex index(/*window=*/3);
  sim::DenseTokenWeights weights;
  weights.BuildUniform();
  index.AppendBag(0, MakeBag({1, 2, 3}));
  index.AppendBag(1, MakeBag({7, 8}));
  index.AppendBag(2, MakeBag({3, 4}));

  FlatBag query = MakeBag({2, 3, 9});
  RetrievalResult result;
  index.RetrieveOverlaps(query, weights, query.TotalCount(), /*theta=*/0.1,
                         /*allow_early_exit=*/false, &result);
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_EQ(result.slack, 0.0);
  EXPECT_EQ(result.candidates[0].object, 0u);
  EXPECT_EQ(result.candidates[1].object, 2u);
  // Object 0 shares {2, 3}, object 2 shares {3}.
  EXPECT_DOUBLE_EQ(result.candidates[0].overlap_bound, 2.0);
  EXPECT_DOUBLE_EQ(result.candidates[1].overlap_bound, 1.0);
}

TEST(CandidateIndexTest, EvictedVersionsStopMatching) {
  CandidateIndex index(/*window=*/1);
  sim::DenseTokenWeights weights;
  weights.BuildUniform();
  index.AppendBag(0, MakeBag({1, 2}));
  index.AppendBag(0, MakeBag({5, 6}));  // evicts {1, 2} (window 1)
  index.NoteEviction(MakeBag({1, 2}));

  FlatBag query = MakeBag({1, 2});
  RetrievalResult result;
  index.RetrieveOverlaps(query, weights, query.TotalCount(), 0.1,
                         /*allow_early_exit=*/false, &result);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(CandidateIndexTest, ValidEmptyObjectsTracksLiveEmptyVersions) {
  CandidateIndex index(/*window=*/2);
  index.AppendBag(0, MakeBag({1}));
  index.AppendBag(1, MakeBag({}));  // empty version
  index.AppendBag(2, MakeBag({2}));
  index.AppendBag(2, MakeBag({}));

  std::vector<uint32_t> empties;
  index.ValidEmptyObjects(&empties);
  EXPECT_EQ(empties, (std::vector<uint32_t>{1, 2}));

  // Roll object 1's window until the empty version dies.
  index.AppendBag(1, MakeBag({3}));
  index.AppendBag(1, MakeBag({4}));
  index.ValidEmptyObjects(&empties);
  EXPECT_EQ(empties, (std::vector<uint32_t>{2}));
}

// Reference: per-object max overlap against every live window version,
// computed from the windows directly.
std::map<uint32_t, double> BruteOverlaps(
    const std::vector<std::deque<FlatBag>>& windows, const FlatBag& query,
    const sim::DenseTokenWeights& weights) {
  std::map<uint32_t, double> best;
  for (size_t o = 0; o < windows.size(); ++o) {
    for (const FlatBag& bag : windows[o]) {
      double ov = Overlap(bag, query, weights);
      if (ov > 0.0) {
        auto [it, inserted] =
            best.emplace(static_cast<uint32_t>(o), ov);
        if (!inserted) it->second = std::max(it->second, ov);
      }
    }
  }
  return best;
}

TEST(CandidateIndexTest, RandomizedBoundsAreSoundUnderChurn) {
  Rng rng(20260809);
  const size_t kWindow = 3;
  const size_t kObjects = 24;
  CandidateIndex index(kWindow);
  std::vector<std::deque<FlatBag>> windows(kObjects);
  sim::DenseTokenWeights weights;
  weights.BuildUniform();

  auto random_bag = [&rng]() {
    std::vector<uint32_t> ids;
    const int len = static_cast<int>(rng.UniformInt(0, 18));
    for (int i = 0; i < len; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 60)));
    }
    return MakeBag(std::move(ids));
  };

  // Seed one version per object, then churn for a few hundred appends.
  for (size_t o = 0; o < kObjects; ++o) {
    FlatBag bag = random_bag();
    index.AppendBag(static_cast<uint32_t>(o), bag);
    windows[o].push_back(bag);
  }
  for (int step = 0; step < 300; ++step) {
    const size_t o = rng.Index(kObjects);
    FlatBag bag = random_bag();
    index.AppendBag(static_cast<uint32_t>(o), bag);
    windows[o].push_back(bag);
    while (windows[o].size() > kWindow) {
      index.NoteEviction(windows[o].front());
      windows[o].pop_front();
    }

    if (step % 10 != 0) continue;
    FlatBag query = random_bag();
    if (query.empty()) continue;
    RetrievalResult result;
    index.RetrieveOverlaps(query, weights, query.TotalCount(), 0.0,
                           /*allow_early_exit=*/false, &result);
    EXPECT_EQ(result.slack, 0.0);
    std::map<uint32_t, double> brute = BruteOverlaps(windows, query, weights);
    // Every overlapping object is retrieved with a bound at or above its
    // true max overlap, and nothing else is.
    ASSERT_EQ(result.candidates.size(), brute.size());
    for (const Candidate& c : result.candidates) {
      auto it = brute.find(c.object);
      ASSERT_NE(it, brute.end()) << "phantom candidate " << c.object;
      EXPECT_GE(c.overlap_bound, it->second - 1e-12)
          << "bound below true overlap for object " << c.object;
    }
  }

  // The index still agrees with the windows after all the churn.
  ValidationReport report;
  std::vector<const std::deque<FlatBag>*> window_ptrs;
  for (const std::deque<FlatBag>& w : windows) window_ptrs.push_back(&w);
  ValidateCandidateIndex(index, window_ptrs, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CandidateIndexTest, CompactionIsInvisibleToQueries) {
  // Churn one index hard enough to trigger compaction, then compare its
  // retrieval output against a fresh index holding only the live bags.
  const size_t kWindow = 2;
  CandidateIndex churned(kWindow);
  Rng rng(7);
  std::vector<std::deque<FlatBag>> windows(4);
  for (int step = 0; step < 4000; ++step) {
    const size_t o = rng.Index(windows.size());
    std::vector<uint32_t> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 9)));
    }
    FlatBag bag = MakeBag(std::move(ids));
    churned.AppendBag(static_cast<uint32_t>(o), bag);
    windows[o].push_back(bag);
    while (windows[o].size() > kWindow) {
      churned.NoteEviction(windows[o].front());
      windows[o].pop_front();
    }
  }
  EXPECT_GT(churned.stats().compactions, 0u);

  CandidateIndex fresh(kWindow);
  for (size_t o = 0; o < windows.size(); ++o) {
    for (const FlatBag& bag : windows[o]) {
      fresh.AppendBag(static_cast<uint32_t>(o), bag);
    }
  }

  sim::DenseTokenWeights weights;
  weights.BuildUniform();
  for (uint32_t t = 0; t < 10; ++t) {
    FlatBag query = MakeBag({t, t, 9 - t});
    RetrievalResult a, b;
    churned.RetrieveOverlaps(query, weights, query.TotalCount(), 0.0,
                             /*allow_early_exit=*/false, &a);
    fresh.RetrieveOverlaps(query, weights, query.TotalCount(), 0.0,
                           /*allow_early_exit=*/false, &b);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (size_t i = 0; i < a.candidates.size(); ++i) {
      EXPECT_EQ(a.candidates[i].object, b.candidates[i].object);
      // Bit-identical: both walks see the same live postings in the same
      // term order.
      EXPECT_EQ(a.candidates[i].overlap_bound, b.candidates[i].overlap_bound);
    }
  }
}

TEST(CandidateIndexTest, WandEarlyExitSkipsTailAndReportsSlack) {
  // One object overlaps the query only through a low-cap tail term; with
  // a high theta the walk may stop early, but then the skipped mass is
  // surfaced as slack, keeping the bound sound.
  CandidateIndex index(/*window=*/2);
  sim::DenseTokenWeights weights;
  weights.BuildUniform();
  index.AppendBag(0, MakeBag({1, 1, 1, 2}));
  index.AppendBag(1, MakeBag({3}));

  FlatBag query = MakeBag({1, 1, 1, 3});
  RetrievalResult eager;
  index.RetrieveOverlaps(query, weights, query.TotalCount(), /*theta=*/0.9,
                         /*allow_early_exit=*/true, &eager);
  RetrievalResult full;
  index.RetrieveOverlaps(query, weights, query.TotalCount(), 0.9,
                         /*allow_early_exit=*/false, &full);
  EXPECT_EQ(full.slack, 0.0);
  // Soundness regardless of whether the exit fired: bound + slack covers
  // the exact overlap of every object the full walk found.
  for (const Candidate& f : full.candidates) {
    double covered = eager.slack;
    for (const Candidate& e : eager.candidates) {
      if (e.object == f.object) covered += e.overlap_bound;
    }
    EXPECT_GE(covered, f.overlap_bound - 1e-12);
  }
  EXPECT_GE(index.stats().wand_skips, 0u);
}

TEST(CandidateIndexTest, ValidatorCatchesWindowDisagreement) {
  CandidateIndex index(/*window=*/2);
  index.AppendBag(0, MakeBag({1, 2}));

  // Matching window: clean.
  std::deque<FlatBag> good;
  good.push_back(MakeBag({1, 2}));
  {
    ValidationReport report;
    std::vector<const std::deque<FlatBag>*> windows{&good};
    ValidateCandidateIndex(index, windows, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  // Window bag with a different count: flagged.
  std::deque<FlatBag> bad;
  bad.push_back(MakeBag({1, 2, 2}));
  {
    ValidationReport report;
    std::vector<const std::deque<FlatBag>*> windows{&bad};
    ValidateCandidateIndex(index, windows, &report);
    EXPECT_FALSE(report.ok());
  }
  // Missing window entry entirely: flagged.
  std::deque<FlatBag> empty_window;
  {
    ValidationReport report;
    std::vector<const std::deque<FlatBag>*> windows{&empty_window};
    ValidateCandidateIndex(index, windows, &report);
    EXPECT_FALSE(report.ok());
  }
}

TEST(CandidateIndexTest, ValidatorIsRegistered) {
  bool found = false;
  for (const ValidatorInfo& info : RegisteredValidators()) {
    if (std::string_view(info.name) == "retrieval_index") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SimdIntersectTest, LowerBoundMatchesStdLowerBound) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> ids;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    uint32_t v = 0;
    for (int i = 0; i < len; ++i) {
      v += static_cast<uint32_t>(rng.UniformInt(1, 5));
      ids.push_back(v);
    }
    const uint32_t needle = static_cast<uint32_t>(rng.UniformInt(0, 80));
    const size_t from = ids.empty() ? 0 : rng.Index(ids.size() + 1);
    const size_t expected = static_cast<size_t>(
        std::lower_bound(ids.begin() + static_cast<ptrdiff_t>(from),
                         ids.end(), needle) -
        ids.begin());
    EXPECT_EQ(sim::SimdLowerBound(ids.data(), from, ids.size(), needle),
              expected)
        << "len=" << len << " from=" << from << " needle=" << needle;
  }
}

TEST(SimdIntersectTest, BackendsAreBitIdentical) {
  const sim::SimdBackend active = sim::ActiveSimdBackend();
  Rng rng(4242);
  sim::DenseTokenWeights weights;
  weights.BuildUniform();
  for (int trial = 0; trial < 50; ++trial) {
    // Small vs large bag so the galloping path engages.
    std::vector<uint32_t> small_ids, large_ids;
    for (int i = 0; i < 5; ++i) {
      small_ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 400)));
    }
    for (int i = 0; i < 200; ++i) {
      large_ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 400)));
    }
    FlatBag small_bag = MakeBag(std::move(small_ids));
    FlatBag large_bag = MakeBag(std::move(large_ids));

    ASSERT_TRUE(sim::ForceSimdBackend(sim::SimdBackend::kScalar));
    const double scalar_sum = sim::SumMin(small_bag, large_bag);
    const double scalar_wsum =
        sim::WeightedSumMin(small_bag, large_bag, weights);
    ASSERT_TRUE(sim::ForceSimdBackend(active));
    EXPECT_EQ(sim::SumMin(small_bag, large_bag), scalar_sum);
    EXPECT_EQ(sim::WeightedSumMin(small_bag, large_bag, weights),
              scalar_wsum);
  }
}

TEST(SimdIntersectTest, GallopMatchesMergeJoin) {
  // The galloping path (asymmetric sizes) and the plain merge (similar
  // sizes) must agree bit for bit: compare SumMin of a pair against the
  // same multiset overlap computed through Ruzicka's identity.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> a_ids, b_ids;
    for (int i = 0; i < 4; ++i) {
      a_ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 100)));
    }
    for (int i = 0; i < 120; ++i) {
      b_ids.push_back(static_cast<uint32_t>(rng.UniformInt(0, 100)));
    }
    FlatBag a = MakeBag(a_ids);
    FlatBag b = MakeBag(b_ids);
    // Brute-force overlap over the union of ids.
    double expected = 0.0;
    for (const FlatEntry& e : a.entries()) {
      expected += std::min(e.count, b.Count(e.id));
    }
    EXPECT_DOUBLE_EQ(sim::SumMin(a, b), expected);
    EXPECT_EQ(sim::SumMin(a, b), sim::SumMin(b, a));  // symmetric
  }
}

}  // namespace
}  // namespace somr::retrieval
