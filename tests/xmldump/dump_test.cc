#include "xmldump/dump.h"

#include <gtest/gtest.h>

#include <sstream>

namespace somr::xmldump {
namespace {

Dump MakeSampleDump() {
  Dump dump;
  dump.site_name = "testwiki";
  PageHistory page;
  page.title = "Test & Page";
  page.page_id = 12;
  Revision r1;
  r1.id = 100;
  r1.timestamp = 1567296000;  // 2019-09-01
  r1.contributor = "Alice";
  r1.comment = "created <page>";
  r1.text = "== Heading ==\n{|\n|-\n| cell & co\n|}\n";
  page.revisions.push_back(r1);
  Revision r2;
  r2.id = 101;
  r2.timestamp = 1567382400;
  r2.contributor = "Bob";
  r2.text = "updated text";
  page.revisions.push_back(r2);
  dump.pages.push_back(page);
  return dump;
}

TEST(DumpTest, WriteReadRoundTrip) {
  Dump original = MakeSampleDump();
  std::string xml = WriteDump(original);
  auto parsed = ReadDump(xml);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->pages.size(), 1u);
  const PageHistory& page = parsed->pages[0];
  EXPECT_EQ(parsed->site_name, "testwiki");
  EXPECT_EQ(page.title, "Test & Page");
  EXPECT_EQ(page.page_id, 12);
  ASSERT_EQ(page.revisions.size(), 2u);
  EXPECT_EQ(page.revisions[0].id, 100);
  EXPECT_EQ(page.revisions[0].timestamp, 1567296000);
  EXPECT_EQ(page.revisions[0].contributor, "Alice");
  EXPECT_EQ(page.revisions[0].comment, "created <page>");
  EXPECT_EQ(page.revisions[0].text, MakeSampleDump().pages[0].revisions[0].text);
  EXPECT_EQ(page.revisions[1].contributor, "Bob");
}

TEST(DumpTest, PageIdNotConfusedWithRevisionId) {
  std::string xml = WriteDump(MakeSampleDump());
  auto parsed = ReadDump(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->pages[0].page_id, 12);
  EXPECT_EQ(parsed->pages[0].revisions[0].id, 100);
}

TEST(DumpTest, RealisticMediawikiSnippet) {
  // Structure as exported by MediaWiki Special:Export.
  const char* xml = R"(<mediawiki xmlns="http://www.mediawiki.org/xml/export-0.10/">
  <siteinfo><sitename>Wikipedia</sitename><dbname>enwiki</dbname></siteinfo>
  <page>
    <title>Example</title>
    <ns>0</ns>
    <id>42</id>
    <revision>
      <id>1001</id>
      <parentid>1000</parentid>
      <timestamp>2019-09-01T00:00:00Z</timestamp>
      <contributor><username>X</username><id>7</id></contributor>
      <minor />
      <comment>fix</comment>
      <model>wikitext</model>
      <format>text/x-wiki</format>
      <text bytes="5" xml:space="preserve">hello</text>
      <sha1>abc</sha1>
    </revision>
  </page>
</mediawiki>)";
  auto parsed = ReadDump(xml);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->pages.size(), 1u);
  EXPECT_EQ(parsed->pages[0].title, "Example");
  EXPECT_EQ(parsed->pages[0].page_id, 42);
  ASSERT_EQ(parsed->pages[0].revisions.size(), 1u);
  const Revision& rev = parsed->pages[0].revisions[0];
  EXPECT_EQ(rev.id, 1001);
  EXPECT_EQ(rev.contributor, "X");
  EXPECT_EQ(rev.comment, "fix");
  EXPECT_EQ(rev.text, "hello");
  EXPECT_EQ(FormatIso8601(rev.timestamp), "2019-09-01T00:00:00Z");
}

TEST(DumpTest, MissingRootIsError) {
  auto parsed = ReadDump("<notawiki></notawiki>");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(DumpTest, EmptyDump) {
  auto parsed = ReadDump("<mediawiki></mediawiki>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->pages.empty());
}

TEST(DumpTest, MultiplePages) {
  Dump dump;
  for (int i = 0; i < 3; ++i) {
    PageHistory page;
    page.title = "P" + std::to_string(i);
    page.page_id = i + 1;
    dump.pages.push_back(page);
  }
  auto parsed = ReadDump(WriteDump(dump));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->pages.size(), 3u);
  EXPECT_EQ(parsed->pages[2].title, "P2");
}

TEST(DumpTest, WikitextSpecialCharactersSurvive) {
  Dump dump;
  PageHistory page;
  page.title = "T";
  Revision rev;
  rev.text = "{| class=\"x\"\n|-\n| a < b & c > d || \"quoted\"\n|}";
  page.revisions.push_back(rev);
  dump.pages.push_back(page);
  auto parsed = ReadDump(WriteDump(dump));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->pages[0].revisions[0].text,
            dump.pages[0].revisions[0].text);
}


TEST(DumpTest, StreamingWriterMatchesWriteDump) {
  Dump dump = MakeSampleDump();
  std::ostringstream streamed;
  WriteDumpHeader(dump, streamed);
  for (const PageHistory& page : dump.pages) WritePage(page, streamed);
  WriteDumpFooter(streamed);
  EXPECT_EQ(streamed.str(), WriteDump(dump));
}

}  // namespace
}  // namespace somr::xmldump
