#include "xmldump/xml_reader.h"

#include <gtest/gtest.h>

namespace somr::xmldump {
namespace {

std::vector<XmlEvent> Drain(std::string_view xml) {
  XmlReader reader(xml);
  std::vector<XmlEvent> events;
  while (true) {
    XmlEvent e = reader.Next();
    if (e.type == XmlEventType::kEndDocument) break;
    events.push_back(std::move(e));
  }
  return events;
}

TEST(XmlReaderTest, SimpleElement) {
  auto events = Drain("<a>text</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, XmlEventType::kStartElement);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].type, XmlEventType::kText);
  EXPECT_EQ(events[1].text, "text");
  EXPECT_EQ(events[2].type, XmlEventType::kEndElement);
}

TEST(XmlReaderTest, Attributes) {
  auto events = Drain("<rev id=\"5\" flag='x'/>");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Attribute("id"), "5");
  EXPECT_EQ(events[0].Attribute("flag"), "x");
  EXPECT_EQ(events[1].type, XmlEventType::kEndElement);
  EXPECT_EQ(events[1].name, "rev");
}

TEST(XmlReaderTest, AttributeEntityDecoding) {
  auto events = Drain("<a title=\"x &amp; y\"/>");
  EXPECT_EQ(events[0].Attribute("title"), "x & y");
}

TEST(XmlReaderTest, WhitespaceBetweenElementsSuppressed) {
  auto events = Drain("<a>\n  <b/>\n</a>");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].name, "b");
}

TEST(XmlReaderTest, TextEntityDecoding) {
  auto events = Drain("<t>a &lt; b &amp; c</t>");
  EXPECT_EQ(events[1].text, "a < b & c");
}

TEST(XmlReaderTest, Cdata) {
  auto events = Drain("<t><![CDATA[raw <markup> & stuff]]></t>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "raw <markup> & stuff");
}

TEST(XmlReaderTest, CommentsAndPiSkipped) {
  auto events = Drain(
      "<?xml version=\"1.0\"?><!-- c --><root><!-- inner --></root>");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "root");
}

TEST(XmlReaderTest, SkipElement) {
  XmlReader reader("<a><skip><deep>x</deep></skip><keep/></a>");
  XmlEvent a = reader.Next();
  ASSERT_EQ(a.name, "a");
  XmlEvent skip = reader.Next();
  ASSERT_EQ(skip.name, "skip");
  reader.SkipElement();
  XmlEvent keep = reader.Next();
  EXPECT_EQ(keep.name, "keep");
}

TEST(XmlReaderTest, ReadElementText) {
  XmlReader reader("<t>one <b>two</b> three</t>");
  reader.Next();  // <t>
  EXPECT_EQ(reader.ReadElementText(), "one two three");
}

TEST(XmlReaderTest, MultilineTextPreserved) {
  XmlReader reader("<text>line1\nline2</text>");
  reader.Next();
  EXPECT_EQ(reader.ReadElementText(), "line1\nline2");
}

TEST(XmlReaderTest, EndDocumentSticky) {
  XmlReader reader("<a/>");
  reader.Next();
  reader.Next();
  EXPECT_EQ(reader.Next().type, XmlEventType::kEndDocument);
  EXPECT_EQ(reader.Next().type, XmlEventType::kEndDocument);
}

TEST(XmlReaderTest, EmptyInput) {
  XmlReader reader("");
  EXPECT_EQ(reader.Next().type, XmlEventType::kEndDocument);
}

}  // namespace
}  // namespace somr::xmldump
