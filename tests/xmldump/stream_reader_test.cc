#include "xmldump/stream_reader.h"

#include <gtest/gtest.h>

#include <sstream>

namespace somr::xmldump {
namespace {

Dump ThreePageDump() {
  Dump dump;
  for (int p = 0; p < 3; ++p) {
    PageHistory page;
    page.title = "Page " + std::to_string(p);
    page.page_id = p + 1;
    for (int r = 0; r < 2; ++r) {
      Revision rev;
      rev.id = p * 10 + r;
      rev.text = "text of page " + std::to_string(p) + " revision " +
                 std::to_string(r);
      page.revisions.push_back(rev);
    }
    dump.pages.push_back(page);
  }
  return dump;
}

TEST(PageStreamReaderTest, ReadsAllPagesInOrder) {
  std::istringstream input(WriteDump(ThreePageDump()));
  PageStreamReader reader(input);
  int count = 0;
  while (auto page = reader.NextPage()) {
    EXPECT_EQ(page->title, "Page " + std::to_string(count));
    EXPECT_EQ(page->revisions.size(), 2u);
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(reader.pages_read(), 3u);
  EXPECT_TRUE(reader.status().ok());
}

TEST(PageStreamReaderTest, AgreesWithInMemoryReader) {
  std::string xml = WriteDump(ThreePageDump());
  auto in_memory = ReadDump(xml);
  ASSERT_TRUE(in_memory.ok());
  std::istringstream input(xml);
  PageStreamReader reader(input);
  size_t index = 0;
  while (auto page = reader.NextPage()) {
    ASSERT_LT(index, in_memory->pages.size());
    EXPECT_EQ(page->title, in_memory->pages[index].title);
    EXPECT_EQ(page->revisions.size(),
              in_memory->pages[index].revisions.size());
    for (size_t r = 0; r < page->revisions.size(); ++r) {
      EXPECT_EQ(page->revisions[r].text,
                in_memory->pages[index].revisions[r].text);
    }
    ++index;
  }
  EXPECT_EQ(index, in_memory->pages.size());
}

TEST(PageStreamReaderTest, EmptyInput) {
  std::istringstream input("");
  PageStreamReader reader(input);
  EXPECT_FALSE(reader.NextPage().has_value());
  EXPECT_TRUE(reader.status().ok());
  // Sticky after EOF.
  EXPECT_FALSE(reader.NextPage().has_value());
}

TEST(PageStreamReaderTest, NoPagesIsCleanEof) {
  std::istringstream input("<mediawiki><siteinfo/></mediawiki>");
  PageStreamReader reader(input);
  EXPECT_FALSE(reader.NextPage().has_value());
  EXPECT_TRUE(reader.status().ok());
}

TEST(PageStreamReaderTest, UnterminatedPageIsError) {
  std::istringstream input("<mediawiki><page><title>X</title>");
  PageStreamReader reader(input);
  EXPECT_FALSE(reader.NextPage().has_value());
  EXPECT_FALSE(reader.status().ok());
}

TEST(PageStreamReaderTest, MarkerAcrossChunkBoundary) {
  // Pad so that "</page>" straddles the 64 KiB chunk boundary.
  Dump dump;
  PageHistory page;
  page.title = "Big";
  Revision rev;
  rev.text = std::string((1 << 16) - 40, 'x');
  page.revisions.push_back(rev);
  dump.pages.push_back(page);
  PageHistory second;
  second.title = "After";
  dump.pages.push_back(second);

  std::istringstream input(WriteDump(dump));
  PageStreamReader reader(input);
  auto first = reader.NextPage();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->title, "Big");
  EXPECT_EQ(first->revisions[0].text.size(), (1u << 16) - 40);
  auto next = reader.NextPage();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->title, "After");
}

}  // namespace
}  // namespace somr::xmldump
