# Empty dependencies file for somr_process.
# This may be replaced when dependencies are built.
