file(REMOVE_RECURSE
  "CMakeFiles/somr_process.dir/somr_process.cc.o"
  "CMakeFiles/somr_process.dir/somr_process.cc.o.d"
  "somr_process"
  "somr_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
