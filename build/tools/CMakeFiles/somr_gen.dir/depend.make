# Empty dependencies file for somr_gen.
# This may be replaced when dependencies are built.
