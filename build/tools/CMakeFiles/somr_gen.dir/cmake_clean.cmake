file(REMOVE_RECURSE
  "CMakeFiles/somr_gen.dir/somr_gen.cc.o"
  "CMakeFiles/somr_gen.dir/somr_gen.cc.o.d"
  "somr_gen"
  "somr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
