file(REMOVE_RECURSE
  "CMakeFiles/open_data_lake.dir/open_data_lake.cpp.o"
  "CMakeFiles/open_data_lake.dir/open_data_lake.cpp.o.d"
  "open_data_lake"
  "open_data_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_data_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
