# Empty compiler generated dependencies file for open_data_lake.
# This may be replaced when dependencies are built.
