file(REMOVE_RECURSE
  "CMakeFiles/award_history.dir/award_history.cpp.o"
  "CMakeFiles/award_history.dir/award_history.cpp.o.d"
  "award_history"
  "award_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/award_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
