# Empty compiler generated dependencies file for award_history.
# This may be replaced when dependencies are built.
