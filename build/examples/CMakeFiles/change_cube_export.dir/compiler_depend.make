# Empty compiler generated dependencies file for change_cube_export.
# This may be replaced when dependencies are built.
