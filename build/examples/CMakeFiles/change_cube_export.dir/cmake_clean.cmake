file(REMOVE_RECURSE
  "CMakeFiles/change_cube_export.dir/change_cube_export.cpp.o"
  "CMakeFiles/change_cube_export.dir/change_cube_export.cpp.o.d"
  "change_cube_export"
  "change_cube_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_cube_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
