file(REMOVE_RECURSE
  "CMakeFiles/dump_tool.dir/dump_tool.cpp.o"
  "CMakeFiles/dump_tool.dir/dump_tool.cpp.o.d"
  "dump_tool"
  "dump_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
