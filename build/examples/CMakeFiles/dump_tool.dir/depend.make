# Empty dependencies file for dump_tool.
# This may be replaced when dependencies are built.
