file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_idf_weighting.dir/bench_fig10_idf_weighting.cc.o"
  "CMakeFiles/bench_fig10_idf_weighting.dir/bench_fig10_idf_weighting.cc.o.d"
  "bench_fig10_idf_weighting"
  "bench_fig10_idf_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_idf_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
