# Empty compiler generated dependencies file for bench_fig10_idf_weighting.
# This may be replaced when dependencies are built.
