# Empty compiler generated dependencies file for bench_stats_basic.
# This may be replaced when dependencies are built.
