file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_basic.dir/bench_stats_basic.cc.o"
  "CMakeFiles/bench_stats_basic.dir/bench_stats_basic.cc.o.d"
  "bench_stats_basic"
  "bench_stats_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
