file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_accuracy_overview.dir/bench_fig6a_accuracy_overview.cc.o"
  "CMakeFiles/bench_fig6a_accuracy_overview.dir/bench_fig6a_accuracy_overview.cc.o.d"
  "bench_fig6a_accuracy_overview"
  "bench_fig6a_accuracy_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_accuracy_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
