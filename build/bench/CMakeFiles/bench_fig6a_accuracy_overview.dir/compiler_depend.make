# Empty compiler generated dependencies file for bench_fig6a_accuracy_overview.
# This may be replaced when dependencies are built.
