file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_accuracy_by_versions.dir/bench_fig6c_accuracy_by_versions.cc.o"
  "CMakeFiles/bench_fig6c_accuracy_by_versions.dir/bench_fig6c_accuracy_by_versions.cc.o.d"
  "bench_fig6c_accuracy_by_versions"
  "bench_fig6c_accuracy_by_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_accuracy_by_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
