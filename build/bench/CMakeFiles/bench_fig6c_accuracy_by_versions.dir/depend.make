# Empty dependencies file for bench_fig6c_accuracy_by_versions.
# This may be replaced when dependencies are built.
