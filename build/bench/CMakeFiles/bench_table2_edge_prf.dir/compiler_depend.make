# Empty compiler generated dependencies file for bench_table2_edge_prf.
# This may be replaced when dependencies are built.
