file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_edge_prf.dir/bench_table2_edge_prf.cc.o"
  "CMakeFiles/bench_table2_edge_prf.dir/bench_table2_edge_prf.cc.o.d"
  "bench_table2_edge_prf"
  "bench_table2_edge_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_edge_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
