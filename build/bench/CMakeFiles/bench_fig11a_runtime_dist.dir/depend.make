# Empty dependencies file for bench_fig11a_runtime_dist.
# This may be replaced when dependencies are built.
