file(REMOVE_RECURSE
  "CMakeFiles/bench_casestudy_keydisc.dir/bench_casestudy_keydisc.cc.o"
  "CMakeFiles/bench_casestudy_keydisc.dir/bench_casestudy_keydisc.cc.o.d"
  "bench_casestudy_keydisc"
  "bench_casestudy_keydisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casestudy_keydisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
