# Empty compiler generated dependencies file for bench_casestudy_keydisc.
# This may be replaced when dependencies are built.
