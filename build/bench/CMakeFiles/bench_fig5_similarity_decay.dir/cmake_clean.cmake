file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_similarity_decay.dir/bench_fig5_similarity_decay.cc.o"
  "CMakeFiles/bench_fig5_similarity_decay.dir/bench_fig5_similarity_decay.cc.o.d"
  "bench_fig5_similarity_decay"
  "bench_fig5_similarity_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_similarity_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
