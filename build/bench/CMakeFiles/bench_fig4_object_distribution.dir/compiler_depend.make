# Empty compiler generated dependencies file for bench_fig4_object_distribution.
# This may be replaced when dependencies are built.
