# Empty compiler generated dependencies file for bench_fig11b_runtime_scaling.
# This may be replaced when dependencies are built.
