# Empty dependencies file for bench_fig7_threshold_sweep.
# This may be replaced when dependencies are built.
