# Empty dependencies file for bench_fig9_rearview_window.
# This may be replaced when dependencies are built.
