# Empty dependencies file for bench_fig6b_accuracy_by_strata.
# This may be replaced when dependencies are built.
