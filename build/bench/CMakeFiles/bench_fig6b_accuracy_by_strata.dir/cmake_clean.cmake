file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_accuracy_by_strata.dir/bench_fig6b_accuracy_by_strata.cc.o"
  "CMakeFiles/bench_fig6b_accuracy_by_strata.dir/bench_fig6b_accuracy_by_strata.cc.o.d"
  "bench_fig6b_accuracy_by_strata"
  "bench_fig6b_accuracy_by_strata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_accuracy_by_strata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
