file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blocking.dir/bench_ablation_blocking.cc.o"
  "CMakeFiles/bench_ablation_blocking.dir/bench_ablation_blocking.cc.o.d"
  "bench_ablation_blocking"
  "bench_ablation_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
