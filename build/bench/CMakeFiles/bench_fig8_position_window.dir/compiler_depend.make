# Empty compiler generated dependencies file for bench_fig8_position_window.
# This may be replaced when dependencies are built.
