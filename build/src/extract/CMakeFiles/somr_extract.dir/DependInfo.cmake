
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/features.cc" "src/extract/CMakeFiles/somr_extract.dir/features.cc.o" "gcc" "src/extract/CMakeFiles/somr_extract.dir/features.cc.o.d"
  "/root/repo/src/extract/html_extractor.cc" "src/extract/CMakeFiles/somr_extract.dir/html_extractor.cc.o" "gcc" "src/extract/CMakeFiles/somr_extract.dir/html_extractor.cc.o.d"
  "/root/repo/src/extract/object.cc" "src/extract/CMakeFiles/somr_extract.dir/object.cc.o" "gcc" "src/extract/CMakeFiles/somr_extract.dir/object.cc.o.d"
  "/root/repo/src/extract/span_grid.cc" "src/extract/CMakeFiles/somr_extract.dir/span_grid.cc.o" "gcc" "src/extract/CMakeFiles/somr_extract.dir/span_grid.cc.o.d"
  "/root/repo/src/extract/wikitext_extractor.cc" "src/extract/CMakeFiles/somr_extract.dir/wikitext_extractor.cc.o" "gcc" "src/extract/CMakeFiles/somr_extract.dir/wikitext_extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/somr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  "/root/repo/build/src/wikitext/CMakeFiles/somr_wikitext.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
