file(REMOVE_RECURSE
  "libsomr_extract.a"
)
