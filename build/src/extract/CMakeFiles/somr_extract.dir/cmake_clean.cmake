file(REMOVE_RECURSE
  "CMakeFiles/somr_extract.dir/features.cc.o"
  "CMakeFiles/somr_extract.dir/features.cc.o.d"
  "CMakeFiles/somr_extract.dir/html_extractor.cc.o"
  "CMakeFiles/somr_extract.dir/html_extractor.cc.o.d"
  "CMakeFiles/somr_extract.dir/object.cc.o"
  "CMakeFiles/somr_extract.dir/object.cc.o.d"
  "CMakeFiles/somr_extract.dir/span_grid.cc.o"
  "CMakeFiles/somr_extract.dir/span_grid.cc.o.d"
  "CMakeFiles/somr_extract.dir/wikitext_extractor.cc.o"
  "CMakeFiles/somr_extract.dir/wikitext_extractor.cc.o.d"
  "libsomr_extract.a"
  "libsomr_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
