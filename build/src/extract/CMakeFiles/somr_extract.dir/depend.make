# Empty dependencies file for somr_extract.
# This may be replaced when dependencies are built.
