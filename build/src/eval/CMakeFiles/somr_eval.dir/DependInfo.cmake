
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/bootstrap.cc" "src/eval/CMakeFiles/somr_eval.dir/bootstrap.cc.o" "gcc" "src/eval/CMakeFiles/somr_eval.dir/bootstrap.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/eval/CMakeFiles/somr_eval.dir/harness.cc.o" "gcc" "src/eval/CMakeFiles/somr_eval.dir/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/somr_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/somr_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/trivial.cc" "src/eval/CMakeFiles/somr_eval.dir/trivial.cc.o" "gcc" "src/eval/CMakeFiles/somr_eval.dir/trivial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/somr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/somr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldump/CMakeFiles/somr_xmldump.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/somr_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/wikitext/CMakeFiles/somr_wikitext.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/somr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/somr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
