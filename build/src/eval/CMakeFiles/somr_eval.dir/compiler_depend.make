# Empty compiler generated dependencies file for somr_eval.
# This may be replaced when dependencies are built.
