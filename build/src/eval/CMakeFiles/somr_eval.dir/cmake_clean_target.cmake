file(REMOVE_RECURSE
  "libsomr_eval.a"
)
