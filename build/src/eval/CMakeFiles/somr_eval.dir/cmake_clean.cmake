file(REMOVE_RECURSE
  "CMakeFiles/somr_eval.dir/bootstrap.cc.o"
  "CMakeFiles/somr_eval.dir/bootstrap.cc.o.d"
  "CMakeFiles/somr_eval.dir/harness.cc.o"
  "CMakeFiles/somr_eval.dir/harness.cc.o.d"
  "CMakeFiles/somr_eval.dir/metrics.cc.o"
  "CMakeFiles/somr_eval.dir/metrics.cc.o.d"
  "CMakeFiles/somr_eval.dir/trivial.cc.o"
  "CMakeFiles/somr_eval.dir/trivial.cc.o.d"
  "libsomr_eval.a"
  "libsomr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
