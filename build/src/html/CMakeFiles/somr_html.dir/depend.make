# Empty dependencies file for somr_html.
# This may be replaced when dependencies are built.
