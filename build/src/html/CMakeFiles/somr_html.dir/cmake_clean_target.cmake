file(REMOVE_RECURSE
  "libsomr_html.a"
)
