file(REMOVE_RECURSE
  "CMakeFiles/somr_html.dir/dom.cc.o"
  "CMakeFiles/somr_html.dir/dom.cc.o.d"
  "CMakeFiles/somr_html.dir/entities.cc.o"
  "CMakeFiles/somr_html.dir/entities.cc.o.d"
  "CMakeFiles/somr_html.dir/parser.cc.o"
  "CMakeFiles/somr_html.dir/parser.cc.o.d"
  "CMakeFiles/somr_html.dir/tokenizer.cc.o"
  "CMakeFiles/somr_html.dir/tokenizer.cc.o.d"
  "libsomr_html.a"
  "libsomr_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
