file(REMOVE_RECURSE
  "libsomr_keydisc.a"
)
