# Empty compiler generated dependencies file for somr_keydisc.
# This may be replaced when dependencies are built.
