file(REMOVE_RECURSE
  "CMakeFiles/somr_keydisc.dir/key_discovery.cc.o"
  "CMakeFiles/somr_keydisc.dir/key_discovery.cc.o.d"
  "CMakeFiles/somr_keydisc.dir/workload.cc.o"
  "CMakeFiles/somr_keydisc.dir/workload.cc.o.d"
  "libsomr_keydisc.a"
  "libsomr_keydisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_keydisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
