file(REMOVE_RECURSE
  "CMakeFiles/somr_xmldump.dir/dump.cc.o"
  "CMakeFiles/somr_xmldump.dir/dump.cc.o.d"
  "CMakeFiles/somr_xmldump.dir/stream_reader.cc.o"
  "CMakeFiles/somr_xmldump.dir/stream_reader.cc.o.d"
  "CMakeFiles/somr_xmldump.dir/xml_reader.cc.o"
  "CMakeFiles/somr_xmldump.dir/xml_reader.cc.o.d"
  "libsomr_xmldump.a"
  "libsomr_xmldump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_xmldump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
