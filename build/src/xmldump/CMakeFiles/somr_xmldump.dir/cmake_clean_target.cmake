file(REMOVE_RECURSE
  "libsomr_xmldump.a"
)
