# Empty compiler generated dependencies file for somr_xmldump.
# This may be replaced when dependencies are built.
