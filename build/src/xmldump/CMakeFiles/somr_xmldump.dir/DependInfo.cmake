
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmldump/dump.cc" "src/xmldump/CMakeFiles/somr_xmldump.dir/dump.cc.o" "gcc" "src/xmldump/CMakeFiles/somr_xmldump.dir/dump.cc.o.d"
  "/root/repo/src/xmldump/stream_reader.cc" "src/xmldump/CMakeFiles/somr_xmldump.dir/stream_reader.cc.o" "gcc" "src/xmldump/CMakeFiles/somr_xmldump.dir/stream_reader.cc.o.d"
  "/root/repo/src/xmldump/xml_reader.cc" "src/xmldump/CMakeFiles/somr_xmldump.dir/xml_reader.cc.o" "gcc" "src/xmldump/CMakeFiles/somr_xmldump.dir/xml_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
