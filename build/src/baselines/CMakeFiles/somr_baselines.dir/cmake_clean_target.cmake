file(REMOVE_RECURSE
  "libsomr_baselines.a"
)
