# Empty dependencies file for somr_baselines.
# This may be replaced when dependencies are built.
