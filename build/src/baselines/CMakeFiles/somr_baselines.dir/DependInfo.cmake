
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/korn_matcher.cc" "src/baselines/CMakeFiles/somr_baselines.dir/korn_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/somr_baselines.dir/korn_matcher.cc.o.d"
  "/root/repo/src/baselines/position_baseline.cc" "src/baselines/CMakeFiles/somr_baselines.dir/position_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/somr_baselines.dir/position_baseline.cc.o.d"
  "/root/repo/src/baselines/schema_baseline.cc" "src/baselines/CMakeFiles/somr_baselines.dir/schema_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/somr_baselines.dir/schema_baseline.cc.o.d"
  "/root/repo/src/baselines/subject_column.cc" "src/baselines/CMakeFiles/somr_baselines.dir/subject_column.cc.o" "gcc" "src/baselines/CMakeFiles/somr_baselines.dir/subject_column.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/somr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/somr_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/wikitext/CMakeFiles/somr_wikitext.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/somr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/somr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
