file(REMOVE_RECURSE
  "CMakeFiles/somr_baselines.dir/korn_matcher.cc.o"
  "CMakeFiles/somr_baselines.dir/korn_matcher.cc.o.d"
  "CMakeFiles/somr_baselines.dir/position_baseline.cc.o"
  "CMakeFiles/somr_baselines.dir/position_baseline.cc.o.d"
  "CMakeFiles/somr_baselines.dir/schema_baseline.cc.o"
  "CMakeFiles/somr_baselines.dir/schema_baseline.cc.o.d"
  "CMakeFiles/somr_baselines.dir/subject_column.cc.o"
  "CMakeFiles/somr_baselines.dir/subject_column.cc.o.d"
  "libsomr_baselines.a"
  "libsomr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
