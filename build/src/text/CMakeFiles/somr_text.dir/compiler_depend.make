# Empty compiler generated dependencies file for somr_text.
# This may be replaced when dependencies are built.
