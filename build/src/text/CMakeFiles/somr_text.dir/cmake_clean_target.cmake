file(REMOVE_RECURSE
  "libsomr_text.a"
)
