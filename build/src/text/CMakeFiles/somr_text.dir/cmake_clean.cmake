file(REMOVE_RECURSE
  "CMakeFiles/somr_text.dir/bag_of_words.cc.o"
  "CMakeFiles/somr_text.dir/bag_of_words.cc.o.d"
  "CMakeFiles/somr_text.dir/tokenizer.cc.o"
  "CMakeFiles/somr_text.dir/tokenizer.cc.o.d"
  "libsomr_text.a"
  "libsomr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
