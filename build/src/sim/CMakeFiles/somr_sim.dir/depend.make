# Empty dependencies file for somr_sim.
# This may be replaced when dependencies are built.
