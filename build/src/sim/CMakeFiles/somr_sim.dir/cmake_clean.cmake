file(REMOVE_RECURSE
  "CMakeFiles/somr_sim.dir/minhash.cc.o"
  "CMakeFiles/somr_sim.dir/minhash.cc.o.d"
  "CMakeFiles/somr_sim.dir/similarity.cc.o"
  "CMakeFiles/somr_sim.dir/similarity.cc.o.d"
  "libsomr_sim.a"
  "libsomr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
