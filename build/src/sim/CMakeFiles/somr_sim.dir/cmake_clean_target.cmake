file(REMOVE_RECURSE
  "libsomr_sim.a"
)
