
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/minhash.cc" "src/sim/CMakeFiles/somr_sim.dir/minhash.cc.o" "gcc" "src/sim/CMakeFiles/somr_sim.dir/minhash.cc.o.d"
  "/root/repo/src/sim/similarity.cc" "src/sim/CMakeFiles/somr_sim.dir/similarity.cc.o" "gcc" "src/sim/CMakeFiles/somr_sim.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/somr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
