# Empty compiler generated dependencies file for somr_matching.
# This may be replaced when dependencies are built.
