file(REMOVE_RECURSE
  "libsomr_matching.a"
)
