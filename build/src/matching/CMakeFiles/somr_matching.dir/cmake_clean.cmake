file(REMOVE_RECURSE
  "CMakeFiles/somr_matching.dir/graph_io.cc.o"
  "CMakeFiles/somr_matching.dir/graph_io.cc.o.d"
  "CMakeFiles/somr_matching.dir/hungarian.cc.o"
  "CMakeFiles/somr_matching.dir/hungarian.cc.o.d"
  "CMakeFiles/somr_matching.dir/identity_graph.cc.o"
  "CMakeFiles/somr_matching.dir/identity_graph.cc.o.d"
  "CMakeFiles/somr_matching.dir/matcher.cc.o"
  "CMakeFiles/somr_matching.dir/matcher.cc.o.d"
  "libsomr_matching.a"
  "libsomr_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
