file(REMOVE_RECURSE
  "libsomr_archive.a"
)
