file(REMOVE_RECURSE
  "CMakeFiles/somr_archive.dir/crawl_sampler.cc.o"
  "CMakeFiles/somr_archive.dir/crawl_sampler.cc.o.d"
  "CMakeFiles/somr_archive.dir/socrata.cc.o"
  "CMakeFiles/somr_archive.dir/socrata.cc.o.d"
  "libsomr_archive.a"
  "libsomr_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
