# Empty dependencies file for somr_archive.
# This may be replaced when dependencies are built.
