# Empty compiler generated dependencies file for somr_common.
# This may be replaced when dependencies are built.
