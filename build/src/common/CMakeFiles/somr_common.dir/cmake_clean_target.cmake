file(REMOVE_RECURSE
  "libsomr_common.a"
)
