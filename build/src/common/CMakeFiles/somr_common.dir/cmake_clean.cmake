file(REMOVE_RECURSE
  "CMakeFiles/somr_common.dir/flags.cc.o"
  "CMakeFiles/somr_common.dir/flags.cc.o.d"
  "CMakeFiles/somr_common.dir/rng.cc.o"
  "CMakeFiles/somr_common.dir/rng.cc.o.d"
  "CMakeFiles/somr_common.dir/status.cc.o"
  "CMakeFiles/somr_common.dir/status.cc.o.d"
  "CMakeFiles/somr_common.dir/string_util.cc.o"
  "CMakeFiles/somr_common.dir/string_util.cc.o.d"
  "CMakeFiles/somr_common.dir/time_util.cc.o"
  "CMakeFiles/somr_common.dir/time_util.cc.o.d"
  "libsomr_common.a"
  "libsomr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
