# Empty dependencies file for somr_core.
# This may be replaced when dependencies are built.
