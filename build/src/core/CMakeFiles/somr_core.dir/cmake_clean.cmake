file(REMOVE_RECURSE
  "CMakeFiles/somr_core.dir/change_classifier.cc.o"
  "CMakeFiles/somr_core.dir/change_classifier.cc.o.d"
  "CMakeFiles/somr_core.dir/change_cube.cc.o"
  "CMakeFiles/somr_core.dir/change_cube.cc.o.d"
  "CMakeFiles/somr_core.dir/changes.cc.o"
  "CMakeFiles/somr_core.dir/changes.cc.o.d"
  "CMakeFiles/somr_core.dir/diff.cc.o"
  "CMakeFiles/somr_core.dir/diff.cc.o.d"
  "CMakeFiles/somr_core.dir/history_report.cc.o"
  "CMakeFiles/somr_core.dir/history_report.cc.o.d"
  "CMakeFiles/somr_core.dir/pipeline.cc.o"
  "CMakeFiles/somr_core.dir/pipeline.cc.o.d"
  "libsomr_core.a"
  "libsomr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
