file(REMOVE_RECURSE
  "libsomr_core.a"
)
