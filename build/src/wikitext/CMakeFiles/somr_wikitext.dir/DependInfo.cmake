
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wikitext/inline_markup.cc" "src/wikitext/CMakeFiles/somr_wikitext.dir/inline_markup.cc.o" "gcc" "src/wikitext/CMakeFiles/somr_wikitext.dir/inline_markup.cc.o.d"
  "/root/repo/src/wikitext/parser.cc" "src/wikitext/CMakeFiles/somr_wikitext.dir/parser.cc.o" "gcc" "src/wikitext/CMakeFiles/somr_wikitext.dir/parser.cc.o.d"
  "/root/repo/src/wikitext/serializer.cc" "src/wikitext/CMakeFiles/somr_wikitext.dir/serializer.cc.o" "gcc" "src/wikitext/CMakeFiles/somr_wikitext.dir/serializer.cc.o.d"
  "/root/repo/src/wikitext/to_html.cc" "src/wikitext/CMakeFiles/somr_wikitext.dir/to_html.cc.o" "gcc" "src/wikitext/CMakeFiles/somr_wikitext.dir/to_html.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
