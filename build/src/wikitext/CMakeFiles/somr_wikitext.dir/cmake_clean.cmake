file(REMOVE_RECURSE
  "CMakeFiles/somr_wikitext.dir/inline_markup.cc.o"
  "CMakeFiles/somr_wikitext.dir/inline_markup.cc.o.d"
  "CMakeFiles/somr_wikitext.dir/parser.cc.o"
  "CMakeFiles/somr_wikitext.dir/parser.cc.o.d"
  "CMakeFiles/somr_wikitext.dir/serializer.cc.o"
  "CMakeFiles/somr_wikitext.dir/serializer.cc.o.d"
  "CMakeFiles/somr_wikitext.dir/to_html.cc.o"
  "CMakeFiles/somr_wikitext.dir/to_html.cc.o.d"
  "libsomr_wikitext.a"
  "libsomr_wikitext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_wikitext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
