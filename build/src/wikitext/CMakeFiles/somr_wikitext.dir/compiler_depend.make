# Empty compiler generated dependencies file for somr_wikitext.
# This may be replaced when dependencies are built.
