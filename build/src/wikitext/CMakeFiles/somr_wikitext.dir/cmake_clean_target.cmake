file(REMOVE_RECURSE
  "libsomr_wikitext.a"
)
