
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wikigen/content_gen.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/content_gen.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/content_gen.cc.o.d"
  "/root/repo/src/wikigen/corpus.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/corpus.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/corpus.cc.o.d"
  "/root/repo/src/wikigen/evolver.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/evolver.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/evolver.cc.o.d"
  "/root/repo/src/wikigen/logical_page.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/logical_page.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/logical_page.cc.o.d"
  "/root/repo/src/wikigen/render.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/render.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/render.cc.o.d"
  "/root/repo/src/wikigen/vocab.cc" "src/wikigen/CMakeFiles/somr_wikigen.dir/vocab.cc.o" "gcc" "src/wikigen/CMakeFiles/somr_wikigen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/somr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/somr_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/somr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldump/CMakeFiles/somr_xmldump.dir/DependInfo.cmake"
  "/root/repo/build/src/wikitext/CMakeFiles/somr_wikitext.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/somr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/somr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/somr_html.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
