# Empty compiler generated dependencies file for somr_wikigen.
# This may be replaced when dependencies are built.
