file(REMOVE_RECURSE
  "libsomr_wikigen.a"
)
