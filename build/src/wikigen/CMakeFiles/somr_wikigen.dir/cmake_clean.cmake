file(REMOVE_RECURSE
  "CMakeFiles/somr_wikigen.dir/content_gen.cc.o"
  "CMakeFiles/somr_wikigen.dir/content_gen.cc.o.d"
  "CMakeFiles/somr_wikigen.dir/corpus.cc.o"
  "CMakeFiles/somr_wikigen.dir/corpus.cc.o.d"
  "CMakeFiles/somr_wikigen.dir/evolver.cc.o"
  "CMakeFiles/somr_wikigen.dir/evolver.cc.o.d"
  "CMakeFiles/somr_wikigen.dir/logical_page.cc.o"
  "CMakeFiles/somr_wikigen.dir/logical_page.cc.o.d"
  "CMakeFiles/somr_wikigen.dir/render.cc.o"
  "CMakeFiles/somr_wikigen.dir/render.cc.o.d"
  "CMakeFiles/somr_wikigen.dir/vocab.cc.o"
  "CMakeFiles/somr_wikigen.dir/vocab.cc.o.d"
  "libsomr_wikigen.a"
  "libsomr_wikigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somr_wikigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
