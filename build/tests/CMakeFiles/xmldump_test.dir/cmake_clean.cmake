file(REMOVE_RECURSE
  "CMakeFiles/xmldump_test.dir/xmldump/dump_test.cc.o"
  "CMakeFiles/xmldump_test.dir/xmldump/dump_test.cc.o.d"
  "CMakeFiles/xmldump_test.dir/xmldump/stream_reader_test.cc.o"
  "CMakeFiles/xmldump_test.dir/xmldump/stream_reader_test.cc.o.d"
  "CMakeFiles/xmldump_test.dir/xmldump/xml_reader_test.cc.o"
  "CMakeFiles/xmldump_test.dir/xmldump/xml_reader_test.cc.o.d"
  "xmldump_test"
  "xmldump_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmldump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
