# Empty compiler generated dependencies file for xmldump_test.
# This may be replaced when dependencies are built.
