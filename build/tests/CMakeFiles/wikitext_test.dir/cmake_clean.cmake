file(REMOVE_RECURSE
  "CMakeFiles/wikitext_test.dir/wikitext/inline_markup_test.cc.o"
  "CMakeFiles/wikitext_test.dir/wikitext/inline_markup_test.cc.o.d"
  "CMakeFiles/wikitext_test.dir/wikitext/parser_test.cc.o"
  "CMakeFiles/wikitext_test.dir/wikitext/parser_test.cc.o.d"
  "CMakeFiles/wikitext_test.dir/wikitext/serializer_test.cc.o"
  "CMakeFiles/wikitext_test.dir/wikitext/serializer_test.cc.o.d"
  "CMakeFiles/wikitext_test.dir/wikitext/to_html_test.cc.o"
  "CMakeFiles/wikitext_test.dir/wikitext/to_html_test.cc.o.d"
  "wikitext_test"
  "wikitext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikitext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
