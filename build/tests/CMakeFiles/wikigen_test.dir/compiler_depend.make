# Empty compiler generated dependencies file for wikigen_test.
# This may be replaced when dependencies are built.
