file(REMOVE_RECURSE
  "CMakeFiles/wikigen_test.dir/wikigen/content_gen_test.cc.o"
  "CMakeFiles/wikigen_test.dir/wikigen/content_gen_test.cc.o.d"
  "CMakeFiles/wikigen_test.dir/wikigen/corpus_test.cc.o"
  "CMakeFiles/wikigen_test.dir/wikigen/corpus_test.cc.o.d"
  "CMakeFiles/wikigen_test.dir/wikigen/evolver_test.cc.o"
  "CMakeFiles/wikigen_test.dir/wikigen/evolver_test.cc.o.d"
  "CMakeFiles/wikigen_test.dir/wikigen/logical_page_test.cc.o"
  "CMakeFiles/wikigen_test.dir/wikigen/logical_page_test.cc.o.d"
  "CMakeFiles/wikigen_test.dir/wikigen/render_test.cc.o"
  "CMakeFiles/wikigen_test.dir/wikigen/render_test.cc.o.d"
  "wikigen_test"
  "wikigen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
