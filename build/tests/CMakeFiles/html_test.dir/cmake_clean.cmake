file(REMOVE_RECURSE
  "CMakeFiles/html_test.dir/html/dom_test.cc.o"
  "CMakeFiles/html_test.dir/html/dom_test.cc.o.d"
  "CMakeFiles/html_test.dir/html/entities_test.cc.o"
  "CMakeFiles/html_test.dir/html/entities_test.cc.o.d"
  "CMakeFiles/html_test.dir/html/parser_test.cc.o"
  "CMakeFiles/html_test.dir/html/parser_test.cc.o.d"
  "CMakeFiles/html_test.dir/html/tokenizer_test.cc.o"
  "CMakeFiles/html_test.dir/html/tokenizer_test.cc.o.d"
  "html_test"
  "html_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
