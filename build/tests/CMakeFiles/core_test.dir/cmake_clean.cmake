file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/change_classifier_test.cc.o"
  "CMakeFiles/core_test.dir/core/change_classifier_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/change_cube_test.cc.o"
  "CMakeFiles/core_test.dir/core/change_cube_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/changes_test.cc.o"
  "CMakeFiles/core_test.dir/core/changes_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/diff_test.cc.o"
  "CMakeFiles/core_test.dir/core/diff_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/history_report_test.cc.o"
  "CMakeFiles/core_test.dir/core/history_report_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
