file(REMOVE_RECURSE
  "CMakeFiles/matching_test.dir/matching/graph_io_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/graph_io_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/hungarian_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/hungarian_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/identity_graph_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/identity_graph_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/matcher_property_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/matcher_property_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/matcher_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/matcher_test.cc.o.d"
  "matching_test"
  "matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
