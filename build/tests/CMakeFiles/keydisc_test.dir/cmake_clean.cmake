file(REMOVE_RECURSE
  "CMakeFiles/keydisc_test.dir/keydisc/key_discovery_test.cc.o"
  "CMakeFiles/keydisc_test.dir/keydisc/key_discovery_test.cc.o.d"
  "CMakeFiles/keydisc_test.dir/keydisc/workload_test.cc.o"
  "CMakeFiles/keydisc_test.dir/keydisc/workload_test.cc.o.d"
  "keydisc_test"
  "keydisc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keydisc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
