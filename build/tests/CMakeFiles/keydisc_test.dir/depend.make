# Empty dependencies file for keydisc_test.
# This may be replaced when dependencies are built.
