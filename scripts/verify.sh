#!/bin/sh
# Tier-1 verification in one invocation: configure + build + ctest for the
# release preset, then again under AddressSanitizer/UBSan. Any failure
# (configure, compile, or test) fails the script.
#
#   scripts/verify.sh            # release + asan
#   scripts/verify.sh release    # just one preset's workflow
#   JOBS=8 scripts/verify.sh     # override build parallelism
set -eu

cd "$(dirname "$0")/.."
: "${JOBS:=$(nproc 2>/dev/null || echo 2)}"
export CMAKE_BUILD_PARALLEL_LEVEL="$JOBS"

presets="${1:-release asan}"
for preset in $presets; do
  echo "==> workflow verify-$preset"
  cmake --workflow --preset "verify-$preset"
done
echo "==> verify OK ($presets)"
