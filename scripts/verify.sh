#!/bin/sh
# Tier-1 verification in one invocation: static analysis first (the
# project linter, header self-sufficiency TUs, clang-tidy,
# clang-format and clang thread-safety analysis when installed), then
# configure + build + ctest for the
# release preset, again under AddressSanitizer/UBSan, once more with
# tracing compiled in plus the end-to-end observability and serving
# smoke tests (`somr_process --demo` with trace/metrics/provenance
# outputs validated; the somr_serve daemon fed the demo corpus and
# byte-compared against the batch pipeline), the concurrent subsystems
# (executor, matcher, pipelines, ingestion, serving) under
# ThreadSanitizer, and finally strict UBSan
# (-fno-sanitize-recover, includes float-divide-by-zero). Any failure
# (configure, compile, lint, or test) fails the script.
#
#   scripts/verify.sh            # lint + release + asan + obs + tsan + ubsan
#   scripts/verify.sh release    # just one preset's workflow
#   JOBS=8 scripts/verify.sh     # override build parallelism
set -eu

cd "$(dirname "$0")/.."
: "${JOBS:=$(nproc 2>/dev/null || echo 2)}"
export CMAKE_BUILD_PARALLEL_LEVEL="$JOBS"

presets="${1:-lint release asan obs tsan ubsan}"
for preset in $presets; do
  echo "==> workflow verify-$preset"
  cmake --workflow --preset "verify-$preset"
  if [ "$preset" = lint ]; then
    # Optional-tooling passes ride on the lint stage; each skips with a
    # message when its binary is not installed.
    scripts/format.sh --check
    scripts/tidy.sh build/lint
    scripts/clang_tsa.sh
  fi
done
echo "==> verify OK ($presets)"
