#!/bin/sh
# Tier-1 verification in one invocation: configure + build + ctest for the
# release preset, again under AddressSanitizer/UBSan, once more with
# tracing compiled in plus the end-to-end observability smoke test
# (`somr_process --demo` with trace/metrics/provenance outputs validated),
# and finally the concurrent subsystems (executor, matcher, pipelines,
# ingestion) under ThreadSanitizer. Any failure (configure, compile, or
# test) fails the script.
#
#   scripts/verify.sh            # release + asan + obs + tsan
#   scripts/verify.sh release    # just one preset's workflow
#   JOBS=8 scripts/verify.sh     # override build parallelism
set -eu

cd "$(dirname "$0")/.."
: "${JOBS:=$(nproc 2>/dev/null || echo 2)}"
export CMAKE_BUILD_PARALLEL_LEVEL="$JOBS"

presets="${1:-release asan obs tsan}"
for preset in $presets; do
  echo "==> workflow verify-$preset"
  cmake --workflow --preset "verify-$preset"
done
echo "==> verify OK ($presets)"
