#!/bin/sh
# Matching-kernel benchmark: builds the release preset and runs the micro
# benchmarks in --json mode, writing BENCH_matching.json at the repo root
# (ns/op for the similarity kernels and a full matching step, legacy vs
# flat engine), then appends the executor thread-scaling sweep (per-page
# and intra-step wall times at 1/2/4/8 workers, with the machine's
# hardware_concurrency recorded alongside) and the candidate-generation
# sweep (swept vs retrieval-index matching step at 10..10000 tracked
# objects, merged under ns_per_op.candidate_gen), and the somr_lint
# analysis-pass full-tree runtime (ns_per_op.lint_analysis). Compare the
# file across commits to catch hot-path regressions — the observability
# layer must stay within 2% when disabled.
#
#   scripts/bench.sh             # build + run, writes ./BENCH_matching.json
#   JOBS=8 scripts/bench.sh      # override build parallelism
set -eu

cd "$(dirname "$0")/.."
: "${JOBS:=$(nproc 2>/dev/null || echo 2)}"
export CMAKE_BUILD_PARALLEL_LEVEL="$JOBS"

cmake --preset release
cmake --build --preset release --target bench_micro_kernels \
  bench_parallel_scaling bench_retrieval_index bench_lint_analysis
# Order matters: bench_micro_kernels writes the file fresh, the others
# merge their sections ("parallel_scaling" at the top level, then
# "candidate_gen" and "lint_analysis" inside "ns_per_op") into the
# existing report.
build/release/bench/bench_micro_kernels --json BENCH_matching.json
build/release/bench/bench_parallel_scaling --json BENCH_matching.json
build/release/bench/bench_retrieval_index --json BENCH_matching.json
build/release/bench/bench_lint_analysis --json BENCH_matching.json
echo "==> wrote BENCH_matching.json"
