#!/bin/sh
# Formatting gate driven by the repo .clang-format.
#
#   scripts/format.sh            # rewrite files in place
#   scripts/format.sh --check    # exit 1 when anything needs formatting
#
# clang-format is optional tooling: when the binary is missing the
# script reports SKIPPED and exits 0 so verify.sh stays green on
# build-only machines (the somr_lint stage still runs everywhere).
set -eu

cd "$(dirname "$0")/.."

mode="${1:-fix}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not installed — SKIPPED"
  exit 0
fi

files=$(find src tools bench tests examples \
  \( -name build -o -name fixtures \) -prune -o \
  \( -name '*.h' -o -name '*.hpp' -o -name '*.cc' -o -name '*.cpp' \) \
  -print)

if [ "$mode" = "--check" ]; then
  # --dry-run -Werror makes clang-format exit non-zero on any diff.
  # shellcheck disable=SC2086
  clang-format --dry-run -Werror $files
  echo "format.sh: check OK"
else
  # shellcheck disable=SC2086
  clang-format -i $files
  echo "format.sh: formatted"
fi
