#!/bin/sh
# clang-tidy over the compilation database exported by the `lint`
# preset (build/lint/compile_commands.json), using the checks curated
# in .clang-tidy.
#
#   scripts/tidy.sh [build-dir]    # default build/lint
#
# clang-tidy is optional tooling: when the binary is missing the script
# reports SKIPPED and exits 0 so verify.sh stays green on build-only
# machines (somr_lint and the header self-sufficiency TUs still run).
set -eu

cd "$(dirname "$0")/.."
build_dir="${1:-build/lint}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not installed — SKIPPED"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "tidy.sh: $build_dir/compile_commands.json missing;" \
    "run: cmake --preset lint" >&2
  exit 1
fi

# Library and tool sources only; tests and fixtures are covered by the
# build's own warnings and by somr_lint.
files=$(find src tools -name fixtures -prune -o \
  \( -name '*.cc' -o -name '*.cpp' \) -print)

# shellcheck disable=SC2086
clang-tidy -p "$build_dir" --quiet $files
echo "tidy.sh: OK"
