#!/bin/sh
# Clang thread-safety analysis over the annotated concurrent subsystems
# (src/serve, src/state, src/obs, src/parallel). The SOMR_* macros in
# common/thread_annotations.h expand to clang's TSA attributes only
# under clang with SOMR_THREAD_SAFETY_ANALYSIS defined, so this is the
# one place the annotations are compiled as real attributes — it proves
# every annotation is syntactically valid and attached to a
# declaration clang accepts. (std::mutex is not declared a capability
# by libstdc++, so -Wthread-safety-attributes stays off; the deeper
# semantic checking is done by `somr_lint`'s lock-discipline /
# lock-order / annotation-coverage passes, which run everywhere.)
#
#   scripts/clang_tsa.sh
#
# clang is optional tooling: when the binary is missing the script
# reports SKIPPED and exits 0 so verify.sh stays green on gcc-only
# machines (somr_lint still runs the project-wide analysis).
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang++ >/dev/null 2>&1; then
  echo "clang_tsa.sh: clang++ not installed — SKIPPED"
  exit 0
fi

files=$(find src/serve src/state src/obs src/parallel \
  \( -name '*.cc' -o -name '*.cpp' \) -print)

status=0
for f in $files; do
  if ! clang++ -fsyntax-only -std=c++20 -Isrc \
      -DSOMR_THREAD_SAFETY_ANALYSIS \
      -Wthread-safety -Wno-thread-safety-attributes -Werror \
      "$f"; then
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "clang_tsa.sh: FAILED" >&2
  exit 1
fi
echo "clang_tsa.sh: OK"
